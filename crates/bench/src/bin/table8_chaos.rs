//! **Table 8 (extension, not in the paper): federated training under
//! seeded fault injection.** Sweeps a fault-rate axis (the chaos
//! palette scaled up from benign to hostile) against a retry-policy
//! axis (attempt budgets and quorum floors) and reports what the
//! resilient round loop paid to finish: completed rounds, re-deploy
//! retries, missed client slots, quorum aborts, and measured wire
//! traffic.
//!
//! Every cell runs over real channel transports wrapped in
//! [`rte_net::ChaosTransport`], so the frame codec, the CRCs that catch
//! injected corruption, and the [`rte_fed::LocalLink`] byte counters
//! are all on the path. The whole table replays bit-for-bit — every
//! drop, duplicate and corrupted byte comes from the chaos seed's
//! streams (determinism rule 9), never from the scheduler:
//!
//! ```text
//! cargo run --release -p rte-bench --bin table8_chaos -- --quick
//! ```

use rte_bench::BenchArgs;
use rte_core::{build_experiment_clients, model_factory};
use rte_fed::{local_links, run_rounds_resilient, FaultPolicy, FedError, LocalLink, RoundEvent};
use rte_net::{ChaosConfig, ChaosTransport, RetryPolicy};
use rte_nn::models::ModelKind;

fn human_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

/// The palette at strength `rate`: every fault class armed
/// proportionally (drops lead, corruption trails), latency always on.
fn palette(seed: u64, rate: f64) -> ChaosConfig {
    ChaosConfig {
        seed,
        drop_p: rate,
        dup_p: rate * 0.5,
        reorder_p: rate * 0.6,
        reorder_window: 3,
        corrupt_p: rate * 0.4,
        latency_min: 1,
        latency_max: 6,
    }
}

struct Cell {
    fault_rate: f64,
    policy_label: String,
    completed_rounds: usize,
    average_auc: f64,
    retries: u64,
    missed: usize,
    aborted_at: Option<usize>,
    wire_bytes: u64,
    frames_dropped: u64,
    frames_corrupted: u64,
}

struct JsonEntry {
    fields: Vec<(String, String)>,
}

fn render_json(cells: &[Cell]) -> String {
    let entries: Vec<JsonEntry> = cells
        .iter()
        .map(|c| JsonEntry {
            fields: vec![
                ("metric".into(), "\"chaos_cell\"".into()),
                ("fault_rate".into(), format!("{:.2}", c.fault_rate)),
                ("policy".into(), format!("\"{}\"", c.policy_label)),
                ("completed_rounds".into(), c.completed_rounds.to_string()),
                (
                    "average_auc".into(),
                    if c.average_auc.is_nan() {
                        "null".into()
                    } else {
                        format!("{:.4}", c.average_auc)
                    },
                ),
                ("retries".into(), c.retries.to_string()),
                ("missed_slots".into(), c.missed.to_string()),
                (
                    "quorum_abort_round".into(),
                    c.aborted_at.map_or("null".into(), |r| r.to_string()),
                ),
                ("wire_bytes".into(), c.wire_bytes.to_string()),
                ("frames_dropped".into(), c.frames_dropped.to_string()),
                ("frames_corrupted".into(), c.frames_corrupted.to_string()),
            ],
        })
        .collect();
    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str("  {");
        for (j, (k, v)) in e.fields.iter().enumerate() {
            if j > 0 {
                json.push_str(", ");
            }
            json.push_str(&format!("\"{k}\": {v}"));
        }
        json.push_str(if i + 1 == entries.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    json.push_str("]\n");
    json
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    let config = args.experiment_config();
    let clients = build_experiment_clients(&config)?;
    let factory = model_factory(ModelKind::FlNet, config.model_scale);
    let k = clients.len();
    let rounds = config.fed.rounds;
    println!(
        "Table 8 (extension): FedProx under seeded chaos, {k} clients, \
         {rounds} rounds, chaos seed {}",
        config.fed.seed
    );

    // Policy axis: a thin budget, a generous budget, and the generous
    // budget with a strict quorum floor that turns sustained faults
    // into a typed abort instead of a degraded table.
    let policies: Vec<(String, FaultPolicy)> = vec![
        (
            "retries=2".into(),
            FaultPolicy {
                retry: RetryPolicy::immediate(2),
                min_quorum: 1,
                ..FaultPolicy::default()
            },
        ),
        (
            "retries=4".into(),
            FaultPolicy {
                retry: RetryPolicy::immediate(4),
                min_quorum: 1,
                ..FaultPolicy::default()
            },
        ),
        (
            format!("retries=4,quorum={k}"),
            FaultPolicy {
                retry: RetryPolicy::immediate(4),
                min_quorum: k,
                ..FaultPolicy::default()
            },
        ),
    ];

    let mut cells = Vec::new();
    for &rate in &[0.0, 0.1, 0.25, 0.4] {
        for (label, policy) in &policies {
            let chaos = palette(config.fed.seed, rate);
            let mut links: Vec<ChaosTransport<LocalLink>> =
                local_links(&clients, &factory, &config.fed, None)?
                    .into_iter()
                    .enumerate()
                    .map(|(lane, link)| ChaosTransport::new(link, chaos.clone(), lane as u64))
                    .collect::<Result<_, _>>()?;
            let result = run_rounds_resilient(
                &clients,
                &factory,
                &config.fed,
                &mut links,
                policy,
                None,
                None,
            );
            let (completed, auc, retries, missed, aborted_at) = match result {
                Ok(run) => {
                    let missed = run
                        .events
                        .iter()
                        .filter(|e| matches!(e, RoundEvent::Missed { .. }))
                        .count();
                    (
                        run.completed_rounds,
                        run.outcome.average_auc,
                        run.retries,
                        missed,
                        None,
                    )
                }
                Err(FedError::QuorumLost { round, .. }) => (round - 1, f64::NAN, 0, 0, Some(round)),
                Err(e) => return Err(e.into()),
            };
            let mut wire_bytes = 0u64;
            let mut dropped = 0u64;
            let mut corrupted = 0u64;
            for link in links {
                let stats = link.stats().clone();
                dropped += stats.drops;
                corrupted += stats.corruptions;
                let inner = link.into_inner();
                wire_bytes += inner.stats.bytes_sent + inner.stats.bytes_received;
            }
            cells.push(Cell {
                fault_rate: rate,
                policy_label: label.clone(),
                completed_rounds: completed,
                average_auc: auc,
                retries,
                missed,
                aborted_at,
                wire_bytes,
                frames_dropped: dropped,
                frames_corrupted: corrupted,
            });
        }
    }

    println!(
        "\n{:<8} {:<20} {:>7} {:>9} {:>8} {:>7} {:>8} {:>10}",
        "faults", "policy", "rounds", "avg AUC", "retries", "missed", "aborted", "wire"
    );
    println!("{}", "-".repeat(84));
    for c in &cells {
        println!(
            "{:<8} {:<20} {:>7} {:>9} {:>8} {:>7} {:>8} {:>10}",
            format!("{:.0}%", c.fault_rate * 100.0),
            c.policy_label,
            format!("{}/{rounds}", c.completed_rounds),
            if c.average_auc.is_nan() {
                "—".to_string()
            } else {
                format!("{:.4}", c.average_auc)
            },
            c.retries,
            c.missed,
            c.aborted_at.map_or("—".to_string(), |r| format!("r{r}")),
            human_bytes(c.wire_bytes)
        );
    }
    println!(
        "\nShape to note: retries convert drops and CRC-caught corruption into\n\
         extra deploy traffic (the wire column grows with the fault rate); the\n\
         thin budget starts missing slots the generous one saves; and the\n\
         strict-quorum column turns sustained faults into a typed QuorumLost\n\
         abort instead of a silently degraded table. Rerunning prints these\n\
         exact bytes — every fault is drawn from the chaos seed (rule 9)."
    );

    let json = render_json(&cells);
    // Same convention as the corpus dump: workspace root by default,
    // `RTE_BENCH_CHAOS_JSON` overrides.
    let path = rte_tensor::knobs::raw("RTE_BENCH_CHAOS_JSON").unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("bench: wrote chaos grid to {path}"),
        Err(e) => eprintln!("bench: could not write {path}: {e}"),
    }
    Ok(())
}
