//! **Figure 1 counterpart**: the paper's Fig. 1 is a schematic of the
//! decentralized round structure; its measurable content is the behaviour
//! of the round loop itself. This binary runs that loop with per-round
//! evaluation and prints the convergence series of the global model's
//! average ROC AUC — for FedProx (μ = 1e-4) and FedAvg (μ = 0) — showing
//! the proximal term's stabilizing effect on heterogeneous clients.

use rte_bench::BenchArgs;
use rte_core::{build_clients, model_factory};
use rte_eda::corpus::generate_corpus;
use rte_fed::methods::fedprox_rounds;
use rte_fed::MethodOutcome;
use rte_nn::models::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    let mut config = args.experiment_config();
    config.fed.eval_every = 1;

    eprintln!("generating corpus …");
    let corpus = generate_corpus(&config.corpus)?;
    let clients = build_clients(&corpus)?;
    let factory = model_factory(ModelKind::FlNet, config.model_scale);

    println!("Figure 1 counterpart: per-round average ROC AUC of the aggregated model (FLNet)");
    println!(
        "rounds R = {}, local steps S = {}, K = {} clients\n",
        config.fed.rounds,
        config.fed.local_steps,
        clients.len()
    );

    for (name, mu) in [
        ("FedProx (mu=1e-4)", config.fed.mu),
        ("FedAvg  (mu=0)", 0.0),
    ] {
        let mut fed = config.fed.clone();
        fed.mu = mu;
        let (_, history) = fedprox_rounds(&clients, &factory, &fed)?;
        let outcome = MethodOutcome::new(
            rte_fed::Method::FedProx,
            history
                .last()
                .map(|r| r.per_client.clone())
                .unwrap_or_default(),
            history,
        );
        println!("{}", rte_core::report::render_history(name, &outcome));
    }
    println!(
        "Expected shape: both curves rise over rounds; FedProx's curve is at least as\n\
         stable as FedAvg's under the heterogeneous Table 2 clients (§4.1)."
    );
    Ok(())
}
