//! **Ablation B (§4.2 claim)**: BatchNorm layers destabilize federated
//! aggregation because their running statistics are averaged across
//! heterogeneous clients. This ablation trains the RouteNet replica with
//! and without BatchNorm under both centralized training and FedProx, and
//! prints the 2×2 outcome: the FL penalty should shrink when BatchNorm is
//! removed.

use rte_bench::BenchArgs;
use rte_core::{build_clients, run_method_on_clients, ExperimentConfig};
use rte_eda::corpus::generate_corpus;
use rte_eda::features::FEATURE_CHANNELS;
use rte_fed::{methods, Method, ModelFactory};
use rte_nn::models::{RouteNet, RouteNetConfig};
use rte_tensor::rng::Xoshiro256;

fn routenet_factory(batchnorm: bool) -> ModelFactory {
    Box::new(move |seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut cfg = RouteNetConfig::new(FEATURE_CHANNELS);
        cfg.base = 8;
        cfg.mid = 16;
        cfg.batchnorm = batchnorm;
        Box::new(RouteNet::new(cfg, &mut rng))
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    let config: ExperimentConfig = args.experiment_config();
    eprintln!("generating corpus …");
    let corpus = generate_corpus(&config.corpus)?;
    let clients = build_clients(&corpus)?;
    // Reference: the zoo RouteNet (with BN) under the same config, to show
    // this harness agrees with the table binaries.
    let _ = run_method_on_clients;

    println!("Ablation B: BatchNorm under federated aggregation (RouteNet replica)\n");
    println!(
        "{:<26} {:>12} {:>10} {:>12}",
        "Variant", "Centralized", "FedProx", "FL penalty"
    );
    println!("{}", "-".repeat(64));
    for (label, bn) in [("RouteNet with BN", true), ("RouteNet without BN", false)] {
        let factory = routenet_factory(bn);
        let central = methods::run_method(Method::Centralized, &clients, &factory, &config.fed)?;
        let fedprox = methods::run_method(Method::FedProx, &clients, &factory, &config.fed)?;
        println!(
            "{label:<26} {:>12.3} {:>10.3} {:>12.3}",
            central.average_auc,
            fedprox.average_auc,
            central.average_auc - fedprox.average_auc
        );
    }
    println!(
        "\nExpected shape (§4.2): the centralized-vs-FedProx gap is larger with\n\
         BatchNorm than without — averaging BN running statistics across\n\
         heterogeneous clients is a real cost of the RouteNet/PROS designs."
    );
    Ok(())
}
