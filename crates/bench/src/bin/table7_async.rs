//! **Table 7 (extension, not in the paper): sync vs buffered-async
//! federated rounds.** The paper's protocol is a synchronous barrier —
//! every round waits for the slowest client. This binary quantifies what
//! the FedAsync/FedBuff-style buffered schedule (determinism rule 8's
//! seeded virtual clock) trades for dropping that barrier: final AUC,
//! client trainings, staleness exposure, and measured wire traffic.
//!
//! Every row runs over real channel transports, so the frame codec and
//! [`rte_fed::WireStats`] byte counters are on the path; the comm-cost
//! column is measured, not analytic. Usage mirrors the other tables:
//!
//! ```text
//! cargo run --release -p rte-bench --bin table7_async -- --quick
//! ```

use rte_bench::BenchArgs;
use rte_core::{build_experiment_clients, model_factory};
use rte_fed::{
    local_links, render_async_history, run_fedasync, run_rounds_over, AsyncConfig,
    AsyncRoundRecord, LinkExecutor, LocalLink, Method, MethodOutcome,
};
use rte_nn::models::ModelKind;

fn human_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

struct Row {
    label: String,
    average_auc: f64,
    trainings: usize,
    mean_staleness: f64,
    wire_bytes: u64,
}

fn wire_bytes(links: &[LocalLink]) -> u64 {
    links
        .iter()
        .map(|l| l.stats.bytes_sent + l.stats.bytes_received)
        .sum()
}

fn staleness_stats(records: &[AsyncRoundRecord]) -> (usize, f64) {
    let arrivals: Vec<u64> = records
        .iter()
        .flat_map(|r| r.arrivals.iter().map(|&(_, s)| s))
        .collect();
    let mean = if arrivals.is_empty() {
        0.0
    } else {
        arrivals.iter().sum::<u64>() as f64 / arrivals.len() as f64
    };
    (arrivals.len(), mean)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    let config = args.experiment_config();
    let clients = build_experiment_clients(&config)?;
    let factory = model_factory(ModelKind::FlNet, config.model_scale);
    let k = clients.len();
    let rounds = config.fed.rounds;
    println!(
        "Table 7 (extension): sync barrier vs buffered async, {k} clients, \
         FedProx, {rounds} sync rounds' worth of training"
    );

    let mut rows = Vec::new();

    // Sync baseline: the barrier protocol, K trainings per round.
    let mut links = local_links(&clients, &factory, &config.fed, None)?;
    let outcome: MethodOutcome = run_rounds_over(
        Method::FedProx,
        &clients,
        &factory,
        &config.fed,
        &mut links,
        None,
    )?;
    rows.push(Row {
        label: format!("sync FedProx (barrier, B={k})"),
        average_auc: outcome.average_auc,
        trainings: rounds * k,
        mean_staleness: 0.0,
        wire_bytes: wire_bytes(&links),
    });

    // Async sweep: same total training budget (≈ rounds·K arrivals),
    // spent through buffers of shrinking size — B=1 is fully async.
    let budget = rounds * k;
    let mut shown_schedule = None;
    for (buffer, dropout) in [(k.div_ceil(2), 0.0), (1, 0.0), (k.div_ceil(2), 0.2)] {
        let mut async_cfg = AsyncConfig::new(budget.div_ceil(buffer), buffer);
        async_cfg.dropout = dropout;
        let mut links = local_links(&clients, &factory, &config.fed, None)?;
        let records = {
            let mut exec = LinkExecutor::new(&mut links);
            let (outcome, records) =
                run_fedasync(&clients, &factory, &config.fed, &async_cfg, &mut exec)?;
            let (arrived, mean_staleness) = staleness_stats(&records);
            rows.push(Row {
                label: if dropout > 0.0 {
                    format!("fedasync B={buffer}, {:.0}% dropout", dropout * 100.0)
                } else {
                    format!("fedasync B={buffer}")
                },
                average_auc: outcome.average_auc,
                trainings: arrived,
                mean_staleness,
                wire_bytes: 0, // filled in below, after links are released
            });
            records
        };
        rows.last_mut().expect("row just pushed").wire_bytes = wire_bytes(&links);
        if dropout == 0.0 && buffer > 1 {
            shown_schedule = Some(records);
        }
    }

    println!(
        "\n{:<32} {:>9} {:>11} {:>11} {:>11}",
        "Schedule", "avg AUC", "trainings", "staleness", "wire"
    );
    println!("{}", "-".repeat(78));
    for row in &rows {
        println!(
            "{:<32} {:>9.4} {:>11} {:>11.2} {:>11}",
            row.label,
            row.average_auc,
            row.trainings,
            row.mean_staleness,
            human_bytes(row.wire_bytes)
        );
    }

    if let Some(records) = shown_schedule {
        println!();
        println!(
            "{}",
            render_async_history("Buffered schedule (seeded virtual clock)", &records)
        );
    }
    println!(
        "Shape to note: the buffered schedules spend the same training budget\n\
         without the per-round barrier; smaller buffers aggregate more often and\n\
         tolerate stragglers, paying with staleness-discounted updates. The whole\n\
         table replays bit-for-bit — arrival order comes from the seeded virtual\n\
         clock (rule 8), not the scheduler."
    );
    Ok(())
}
