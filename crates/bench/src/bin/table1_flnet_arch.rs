//! Regenerates **Table 1**: the FLNet model architecture configuration.
//!
//! Prints the layer table exactly as the paper formats it, derived from
//! the actual constructed model (kernel sizes, filter counts, activations
//! and the parameter count), so the printed table cannot drift from the
//! implementation.

use rte_eda::features::FEATURE_CHANNELS;
use rte_nn::models::{FlNet, FlNetConfig};
use rte_nn::Layer;
use rte_tensor::rng::Xoshiro256;

fn main() {
    let config = FlNetConfig::new(FEATURE_CHANNELS);
    let mut rng = Xoshiro256::seed_from(0);
    let mut model = FlNet::new(config, &mut rng);

    println!("Table 1: FLNet Model Architecture Configuration");
    println!(
        "{:<14} {:>11} {:>9} {:>11}",
        "Layer", "Kernel size", "#Filters", "Activation"
    );
    println!("{}", "-".repeat(48));
    println!(
        "{:<14} {:>11} {:>9} {:>11}",
        "input_conv",
        format!("{0}x{0}", config.kernel),
        config.hidden,
        "ReLU"
    );
    println!(
        "{:<14} {:>11} {:>9} {:>11}",
        "output_conv",
        format!("{0}x{0}", config.kernel),
        1,
        "None"
    );
    println!();

    // Verify the printed table against the real model.
    let mut names = Vec::new();
    model.visit_params("", &mut |n, p| {
        names.push((n, p.value.shape().dims().to_vec()))
    });
    println!(
        "Constructed model parameters ({} scalars total):",
        model.param_count()
    );
    for (name, dims) in &names {
        println!("  {:<22} {:?}", name, dims);
    }
    let expected = [
        (
            "input_conv/weight",
            vec![config.hidden, FEATURE_CHANNELS, 9, 9],
        ),
        ("input_conv/bias", vec![config.hidden]),
        ("output_conv/weight", vec![1, config.hidden, 9, 9]),
        ("output_conv/bias", vec![1]),
    ];
    for (name, dims) in expected {
        assert!(
            names.iter().any(|(n, d)| n == name && *d == dims),
            "model drifted from Table 1: missing {name} {dims:?}"
        );
    }
    println!("\nTable 1 verified against the constructed model.");
}
