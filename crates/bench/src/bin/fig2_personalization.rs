//! **Figure 2 counterpart**: the paper's Fig. 2(a-d) are schematics of the
//! four personalization variants (FedProx-LG, IFCA, assigned clustering,
//! α-portion sync). This binary runs each with per-round evaluation and
//! prints the personalized-accuracy series, so the algorithms drawn in the
//! figure can be watched doing their job.

use rte_bench::BenchArgs;
use rte_core::{build_clients, model_factory, run_method_on_clients};
use rte_eda::corpus::generate_corpus;
use rte_fed::Method;
use rte_nn::models::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    let mut config = args.experiment_config();
    config.fed.eval_every = 1;

    eprintln!("generating corpus …");
    let corpus = generate_corpus(&config.corpus)?;
    let clients = build_clients(&corpus)?;
    // Keep `model_factory` linked for users extending this bin to other
    // estimators.
    let _ = model_factory(ModelKind::FlNet, config.model_scale);

    println!("Figure 2 counterpart: per-round average personalized ROC AUC (FLNet)\n");
    let variants = [
        ("(a) FedProx-LG", Method::FedProxLg),
        ("(b) IFCA", Method::Ifca),
        ("(c) Assigned clustering", Method::AssignedClustering),
        ("(d) FedProx + α-portion sync", Method::AlphaSync),
    ];
    let mut finals = Vec::new();
    for (label, method) in variants {
        let outcome = run_method_on_clients(method, &clients, ModelKind::FlNet, &config)?;
        println!("{}", rte_core::report::render_history(label, &outcome));
        finals.push((label, outcome.average_auc));
    }
    println!("Final averages:");
    for (label, auc) in finals {
        println!("  {label:<32} {auc:.3}");
    }
    println!(
        "\nExpected shape (paper Table 3 row ordering for FLNet): IFCA and assigned\n\
         clustering land near FedProx; FedProx-LG trails the others."
    );
    Ok(())
}
