//! Regenerates **Table 2**: the per-client experiment data setup — which
//! benchmark family each client draws from, design counts and placement
//! counts — by actually generating the corpus and counting what came out.

use std::collections::HashSet;

use rte_bench::BenchArgs;
use rte_eda::corpus::{generate_corpus, PAPER_CLIENTS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    let config = args.experiment_config().corpus;
    eprintln!(
        "generating corpus (seed {:#x}, scale {:.3}) …",
        config.seed, config.placement_scale
    );
    let corpus = generate_corpus(&config)?;

    println!("Table 2: Experiment Data Setup for Each Client");
    println!(
        "{:<9} {:<34} {:<34}",
        "Client", "Training Designs (Num Placements)", "Testing Designs (Num Placements)"
    );
    println!("{}", "-".repeat(78));
    for client in &corpus.clients {
        let train_designs: HashSet<&str> = client
            .train
            .samples()
            .iter()
            .map(|s| s.design.as_str())
            .collect();
        let test_designs: HashSet<&str> = client
            .test
            .samples()
            .iter()
            .map(|s| s.design.as_str())
            .collect();
        println!(
            "Client {:<2} {:<34} {:<34}",
            client.spec.index,
            format!(
                "{} designs in {} ({})",
                train_designs.len(),
                client.spec.family,
                client.train.len()
            ),
            format!(
                "{} designs in {} ({})",
                test_designs.len(),
                client.spec.family,
                client.test.len()
            ),
        );
    }
    println!("{}", "-".repeat(78));
    println!(
        "Totals: {} training + {} testing placements (paper: 7,131 across 74 designs)",
        corpus.total_train(),
        corpus.total_test()
    );
    let paper_total: usize = PAPER_CLIENTS
        .iter()
        .map(|c| c.train_placements + c.test_placements)
        .sum();
    println!("Paper-scale totals this config would target at scale 1.0: {paper_total} placements");
    println!(
        "Per-client hotspot rates (label balance): {}",
        corpus
            .clients
            .iter()
            .map(|c| format!("C{} {:.1}%", c.spec.index, 100.0 * c.train.hotspot_rate()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}
