//! **Ablation C (§4.1)**: sweep of the FedProx proximal strength μ.
//! μ = 0 recovers FedAvg; very large μ freezes clients at the global
//! model. The paper picks μ = 1e-4; the sweep shows the usable basin
//! around that value and both failure modes outside it.

use rte_bench::BenchArgs;
use rte_core::{build_clients, model_factory};
use rte_eda::corpus::generate_corpus;
use rte_fed::methods;
use rte_fed::Method;
use rte_nn::models::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    let config = args.experiment_config();
    eprintln!("generating corpus …");
    let corpus = generate_corpus(&config.corpus)?;
    let clients = build_clients(&corpus)?;
    let factory = model_factory(ModelKind::FlNet, config.model_scale);

    println!("Ablation C: FedProx proximal strength sweep (FLNet, average ROC AUC)\n");
    println!("{:>10} {:>10}", "mu", "avg AUC");
    println!("{}", "-".repeat(22));
    let mut results = Vec::new();
    for mu in [0.0f32, 1e-4, 1e-2, 1.0] {
        let mut fed = config.fed.clone();
        fed.mu = mu;
        let outcome = methods::run_method(Method::FedProx, &clients, &factory, &fed)?;
        println!("{mu:>10.0e} {:>10.3}", outcome.average_auc);
        results.push((mu, outcome.average_auc));
    }
    let best = results.iter().cloned().fold(
        (0.0f32, f64::MIN),
        |acc, r| if r.1 > acc.1 { r } else { acc },
    );
    println!("\nBest mu: {:.0e} (AUC {:.3}).", best.0, best.1);
    println!(
        "Expected shape: small positive mu performs at least as well as mu = 0,\n\
         and mu = 1 over-constrains local training, costing accuracy."
    );
    Ok(())
}
