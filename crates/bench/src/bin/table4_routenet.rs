//! Regenerates **Table 4**: RouteNet accuracy under all eight training
//! methods.
//!
//! The shape to reproduce: RouteNet is competitive (even slightly better
//! than FLNet) under local and centralized training, but *collapses* under
//! decentralized training — FedProx lands below the local baselines, and
//! only local fine-tuning (which escapes the decentralized setting)
//! recovers the accuracy.

use rte_bench::reference::TABLE4_ROUTENET;
use rte_nn::models::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    rte_bench::table_main(
        ModelKind::RouteNet,
        &TABLE4_ROUTENET,
        &[
            (
                "Training Centrally on All Data",
                "Local Average (b1 to b9)",
                "central pooling is the upper bound",
            ),
            (
                "Local Average (b1 to b9)",
                "FedProx",
                "RouteNet degrades under decentralized training",
            ),
            (
                "FedProx + Fine-tuning",
                "FedProx",
                "fine-tuning escapes the decentralized penalty",
            ),
        ],
    )
}
