//! **Ablation A (§4.2 claim)**: FLNet's design choices — few layers, big
//! kernels — are what make it robust to parameter averaging. This
//! ablation sweeps kernel size and depth under FedProx and prints the
//! resulting average AUC grid: the paper's 2-layer / 9×9 corner should be
//! at or near the top, and deeper variants should lose more under FL.

use rte_bench::BenchArgs;
use rte_core::build_clients;
use rte_eda::corpus::generate_corpus;
use rte_eda::features::FEATURE_CHANNELS;
use rte_fed::{methods, Method, ModelFactory};
use rte_nn::models::{FlNet, FlNetConfig};
use rte_tensor::rng::Xoshiro256;

fn flnet_factory(kernel: usize, depth: usize) -> ModelFactory {
    Box::new(move |seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        let cfg = FlNetConfig {
            in_channels: FEATURE_CHANNELS,
            hidden: 16,
            kernel,
            depth,
        };
        Box::new(FlNet::new(cfg, &mut rng))
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    let config = args.experiment_config();
    eprintln!("generating corpus …");
    let corpus = generate_corpus(&config.corpus)?;
    let clients = build_clients(&corpus)?;

    println!("Ablation A: FLNet architecture sweep under FedProx (average ROC AUC)\n");
    println!("{:<10} {:>8} {:>8}", "kernel", "depth 2", "depth 4");
    println!("{}", "-".repeat(28));
    let mut results = Vec::new();
    for kernel in [3usize, 5, 9] {
        let mut row = format!("{kernel:<10}");
        for depth in [2usize, 4] {
            let factory = flnet_factory(kernel, depth);
            let outcome = methods::run_method(Method::FedProx, &clients, &factory, &config.fed)?;
            row.push_str(&format!(" {:>8.3}", outcome.average_auc));
            results.push((kernel, depth, outcome.average_auc));
        }
        println!("{row}");
    }
    let best = results
        .iter()
        .cloned()
        .fold((0usize, 0usize, f64::MIN), |acc, r| {
            if r.2 > acc.2 {
                r
            } else {
                acc
            }
        });
    println!(
        "\nBest cell: kernel {} / depth {} (AUC {:.3}).",
        best.0, best.1, best.2
    );
    println!(
        "Expected shape (§4.2): large kernels preserve the receptive field that\n\
         routability needs, while extra depth buys little or hurts under FL —\n\
         the paper's 9×9 / depth-2 choice should sit at or near the best cell."
    );
    Ok(())
}
