//! **Feature ablation (§4.4)**: the paper selects cell-density and
//! wire-density features following RouteNet/PROS practice. This ablation
//! measures each channel's contribution: FLNet is trained centrally with
//! one channel zeroed at a time, and the AUC drop relative to the full
//! feature set is reported.

use rte_bench::BenchArgs;
use rte_core::build_clients;
use rte_eda::corpus::generate_corpus;
use rte_eda::features::FEATURE_CHANNELS;
use rte_fed::{methods, Method, ModelFactory};
use rte_nn::models::{FlNet, FlNetConfig};
use rte_nn::{Layer, NnError, Param};
use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

const CHANNEL_NAMES: [&str; FEATURE_CHANNELS] = [
    "cell density",
    "pin density",
    "macro blockage",
    "RUDY",
    "H fly-lines (dir. RUDY)",
    "V fly-lines (dir. RUDY)",
];

/// Wraps a model, zeroing one input channel before every forward pass —
/// equivalent to removing that feature at train *and* test time.
struct ChannelMask<M: Layer> {
    inner: M,
    masked: Option<usize>,
}

impl<M: Layer> Layer for ChannelMask<M> {
    fn forward(&mut self, x: &Tensor, training: bool) -> Result<Tensor, NnError> {
        match self.masked {
            None => self.inner.forward(x, training),
            Some(ch) => {
                let mut masked = x.clone();
                let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
                let hw = h * w;
                for ni in 0..n {
                    let base = (ni * c + ch) * hw;
                    masked.data_mut()[base..base + hw].fill(0.0);
                }
                self.inner.forward(&masked, training)
            }
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
        self.inner.backward(dy)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Param)) {
        self.inner.visit_params(prefix, f);
    }

    fn visit_buffers(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Tensor)) {
        self.inner.visit_buffers(prefix, f);
    }
}

fn masked_factory(masked: Option<usize>) -> ModelFactory {
    Box::new(move |seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        let cfg = FlNetConfig {
            in_channels: FEATURE_CHANNELS,
            hidden: 16,
            kernel: 9,
            depth: 2,
        };
        Box::new(ChannelMask {
            inner: FlNet::new(cfg, &mut rng),
            masked,
        })
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    let config = args.experiment_config();
    eprintln!("generating corpus …");
    let corpus = generate_corpus(&config.corpus)?;
    let clients = build_clients(&corpus)?;

    println!("Feature ablation: centralized FLNet, one channel removed at a time\n");
    let full = methods::run_method(
        Method::Centralized,
        &clients,
        &masked_factory(None),
        &config.fed,
    )?;
    println!("{:<18} {:>9} {:>9}", "removed channel", "avg AUC", "drop");
    println!("{}", "-".repeat(40));
    println!("{:<18} {:>9.3} {:>9}", "(none)", full.average_auc, "-");
    let mut drops = Vec::new();
    for (ch, name) in CHANNEL_NAMES.iter().enumerate() {
        let outcome = methods::run_method(
            Method::Centralized,
            &clients,
            &masked_factory(Some(ch)),
            &config.fed,
        )?;
        let drop = full.average_auc - outcome.average_auc;
        println!("{name:<18} {:>9.3} {:>+9.3}", outcome.average_auc, -drop);
        drops.push((name, drop));
    }
    drops.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!(
        "\nMost important channel: {} (drop {:.3}).",
        drops[0].0, drops[0].1
    );
    println!(
        "Shape to note (§4.4): the wire-density features (RUDY, fly-lines)\n\
         should matter most — they are the direct precursors of congestion."
    );
    Ok(())
}
