//! **Cost analysis (§4.3 trade-off)**: the paper motivates its
//! personalization menu by cost — fine-tuning buys accuracy with extra
//! local training, α-portion sync with extra server aggregations only,
//! FedProx-LG actually *saves* bandwidth. This binary prints the analytic
//! communication/computation budget of every method for all three models
//! at the paper's hyper-parameters.

use rte_bench::BenchArgs;
use rte_eda::features::FEATURE_CHANNELS;
use rte_fed::cost::{method_cost, model_params, MethodCost};
use rte_fed::Method;
use rte_nn::models::{build_model, ModelKind, ModelScale};
use rte_tensor::rng::Xoshiro256;

fn human_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.1} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

fn main() {
    let args = BenchArgs::parse();
    let config = args.experiment_config();
    let scale = if args.paper_scale {
        ModelScale::Paper
    } else {
        ModelScale::Scaled
    };
    let k = 9u64;

    for kind in ModelKind::ALL {
        let mut rng = Xoshiro256::seed_from(0);
        let mut model = build_model(kind, FEATURE_CHANNELS, scale, &mut rng);
        let params = model_params(model.as_mut());
        // FedProx-LG keeps the output layer local.
        let mut local_part = 0u64;
        model.visit_params("", &mut |name, p| {
            if name.starts_with("output_conv") {
                local_part += p.value.numel() as u64;
            }
        });
        println!(
            "\n{kind}: {params} communicated scalars ({} per model copy), output layer {local_part}",
            human_bytes(params * 4)
        );
        println!(
            "{:<28} {:>12} {:>12} {:>12} {:>8}",
            "Method", "upload", "download", "local steps", "aggs"
        );
        println!("{}", "-".repeat(78));
        for method in Method::ALL {
            let cost: MethodCost = method_cost(method, params, local_part, k, &config.fed);
            println!(
                "{:<28} {:>12} {:>12} {:>12} {:>8}",
                method.label(),
                human_bytes(cost.upload_params * 4),
                human_bytes(cost.download_params * 4),
                cost.local_steps,
                cost.aggregations
            );
        }
    }
    println!(
        "\nShape to note (§4.3): fine-tuning pays only in local steps; α-portion\n\
         sync pays only in server aggregations; FedProx-LG communicates less than\n\
         FedProx; IFCA's downloads scale with the cluster count C."
    );
}
