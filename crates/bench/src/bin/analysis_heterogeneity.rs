//! **Heterogeneity analysis (§3 premise)**: the paper's problem setting
//! rests on clients holding statistically different data ("designs from
//! the same client tend to be more similar to each other"). This binary
//! quantifies that premise on the generated corpus: per-client feature
//! statistics, pairwise client distances, and the intra- vs inter-family
//! contrast that drives every federated result in Tables 3-5.

use rte_bench::BenchArgs;
use rte_eda::corpus::generate_corpus;
use rte_eda::features::FEATURE_CHANNELS;

const CHANNEL_NAMES: [&str; FEATURE_CHANNELS] = [
    "cell density",
    "pin density",
    "macro blockage",
    "RUDY",
    "H fly-lines (dir. RUDY)",
    "V fly-lines (dir. RUDY)",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    let config = args.experiment_config().corpus;
    eprintln!("generating corpus …");
    let corpus = generate_corpus(&config)?;

    // Per-client mean feature vector (over training tiles).
    let mut means: Vec<Vec<f64>> = Vec::new();
    println!("Per-client mean feature values (training split):");
    print!("{:<10}", "client");
    for name in CHANNEL_NAMES {
        print!(" {name:>14}");
    }
    println!(" {:>9}", "hotspot%");
    for client in &corpus.clients {
        let mut sums = [0.0f64; FEATURE_CHANNELS];
        let mut tiles = 0usize;
        for s in client.train.samples() {
            let hw = s.features.dim(1) * s.features.dim(2);
            for c in 0..FEATURE_CHANNELS {
                sums[c] += s.features.data()[c * hw..(c + 1) * hw]
                    .iter()
                    .map(|&v| v as f64)
                    .sum::<f64>();
            }
            tiles += hw;
        }
        let mean: Vec<f64> = sums.iter().map(|s| s / tiles as f64).collect();
        print!("C{:<9}", client.spec.index);
        for v in &mean {
            print!(" {v:>14.4}");
        }
        println!(" {:>8.1}%", 100.0 * client.train.hotspot_rate());
        means.push(mean);
    }

    // Pairwise distance matrix.
    let dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };
    println!("\nPairwise client distance (L2 over mean features, ×1000):");
    print!("{:<5}", "");
    for j in 1..=9 {
        print!(" {:>6}", format!("C{j}"));
    }
    println!();
    for i in 0..9 {
        print!("C{:<4}", i + 1);
        for j in 0..9 {
            print!(" {:>6.1}", 1000.0 * dist(&means[i], &means[j]));
        }
        println!();
    }

    // Intra-family vs inter-family contrast.
    let family_of = |i: usize| corpus.clients[i].spec.family;
    let mut intra = Vec::new();
    let mut inter = Vec::new();
    for i in 0..9 {
        for j in i + 1..9 {
            let d = dist(&means[i], &means[j]);
            if family_of(i) == family_of(j) {
                intra.push(d);
            } else {
                inter.push(d);
            }
        }
    }
    let mean_of = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let (mi, me) = (mean_of(&intra), mean_of(&inter));
    println!(
        "\nmean intra-family distance: {:.4}\nmean inter-family distance: {:.4}\nratio: {:.2}×",
        mi,
        me,
        me / mi.max(1e-12)
    );
    println!(
        "\nShape to note (§3): inter-family distance must exceed intra-family —\n\
         this is the client-level heterogeneity that breaks naive FedAvg and\n\
         motivates FedProx, clustering and personalization."
    );
    Ok(())
}
