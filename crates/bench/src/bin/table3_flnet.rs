//! Regenerates **Table 3**: FLNet accuracy under all eight training
//! methods across the nine Table 2 clients.
//!
//! The paper's headline claims this table carries:
//! - FedProx beats the local baselines on average (0.78 vs 0.72),
//! - FedProx + fine-tuning is the best personalization (0.80), close to
//!   the centralized upper bound (0.81),
//! - FedProx-LG underperforms plain FedProx for FLNet.

use rte_bench::reference::TABLE3_FLNET;
use rte_nn::models::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    rte_bench::table_main(
        ModelKind::FlNet,
        &TABLE3_FLNET,
        &[
            (
                "Training Centrally on All Data",
                "Local Average (b1 to b9)",
                "central pooling is the upper bound",
            ),
            (
                "FedProx",
                "Local Average (b1 to b9)",
                "collaboration helps FLNet",
            ),
            (
                "FedProx + Fine-tuning",
                "FedProx",
                "fine-tuning adds local accuracy",
            ),
            (
                "FedProx",
                "FedProx-LG",
                "keeping the output layer local hurts FLNet",
            ),
        ],
    )
}
