//! Generates **Table 6** (new to this reproduction): federation
//! robustness under hostile clients.
//!
//! The paper's threat model assumes honest clients; this bench measures
//! what happens when that fails. For every attack in a fixed palette
//! (clean baseline, label noise, feature drift, sign-flip and
//! scaled-noise Byzantine updates) it runs each method under each
//! aggregation defense (weighted mean, coordinate-wise median, trimmed
//! mean) and prints one attack × defense × method grid of per-client
//! AUCs. A client whose model diverged under attack renders as a `div`
//! cell — the run itself never aborts.
//!
//! The grid on stdout is a pure function of the configuration: timings
//! go to stderr, so `tests/scenario_determinism.rs`-style byte
//! comparisons across `RTE_THREADS` / `RTE_SIMD` settings hold for this
//! binary's output too.
//!
//! Run:
//!
//! ```text
//! cargo run -p rte-bench --release --bin table6_robustness
//! cargo run -p rte-bench --release --bin table6_robustness -- --quick
//! cargo run -p rte-bench --release --bin table6_robustness -- \
//!     --adversaries 3 --dropout 0.1 --scenario-seed 7
//! ```

use rte_bench::BenchArgs;
use rte_core::report::render_robustness_grid;
use rte_core::{build_experiment_clients, model_factory};
use rte_fed::{run_scenario, Aggregation, Attack, Method, ScenarioConfig};
use rte_nn::models::ModelKind;

/// Scenario-specific options layered on top of the shared [`BenchArgs`].
struct ScenarioArgs {
    /// Number of hostile clients (the highest-indexed ones).
    adversaries: usize,
    /// Per-round per-client dropout probability.
    dropout: f32,
    /// Seed of the scenario streams (independent of the training seed).
    scenario_seed: u64,
    /// Everything the other table binaries also accept.
    shared: BenchArgs,
}

impl ScenarioArgs {
    fn parse() -> Result<Self, String> {
        let mut adversaries = 2usize;
        let mut dropout = 0.0f32;
        let mut scenario_seed = 0x7AB6u64;
        let mut rest = Vec::new();
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--adversaries" => {
                    let v = it.next().ok_or("--adversaries needs a value")?;
                    adversaries = v.parse().map_err(|_| format!("bad adversary count {v}"))?;
                }
                "--dropout" => {
                    let v = it.next().ok_or("--dropout needs a value")?;
                    dropout = v.parse().map_err(|_| format!("bad dropout {v}"))?;
                    if !(0.0..1.0).contains(&dropout) {
                        return Err(format!("dropout {dropout} outside [0, 1)"));
                    }
                }
                "--scenario-seed" => {
                    let v = it.next().ok_or("--scenario-seed needs a value")?;
                    scenario_seed = v.parse().map_err(|_| format!("bad scenario seed {v}"))?;
                }
                other => rest.push(other.to_string()),
            }
        }
        Ok(ScenarioArgs {
            adversaries,
            dropout,
            scenario_seed,
            shared: BenchArgs::parse_from(rest)?,
        })
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = match ScenarioArgs::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: [--adversaries N] [--dropout F] [--scenario-seed N] [--paper-scale] \
                 [--quick] [--seed N] [--rounds N] [--data-scale F] [--threads N] \
                 [--corpus-dir PATH] [--stream-chunk N]"
            );
            std::process::exit(2);
        }
    };
    let config = args.shared.experiment_config();

    // The attack palette: one grid per attack. The amplified sign-flip
    // overflows the weighted mean's f32 coordinates within a round or
    // two (diverged clients render as `div` cells), while the robust
    // rules shed it — the contrast the table exists to show. A merely
    // large scale would only saturate the sigmoid to a flat 0.5.
    let attacks: &[Attack] = if args.shared.quick {
        &[Attack::None, Attack::SignFlip { scale: 1e38 }]
    } else {
        &[
            Attack::None,
            Attack::LabelNoise { rate: 0.3 },
            Attack::FeatureDrift { sigma: 1.5 },
            Attack::SignFlip { scale: 1e38 },
            Attack::ScaledNoise { sigma: 2.0 },
        ]
    };
    let defenses = [
        Aggregation::WeightedMean,
        Aggregation::Median,
        Aggregation::TrimmedMean { trim_ratio: 0.25 },
    ];
    let methods: &[Method] = if args.shared.quick {
        &[Method::FedProx]
    } else {
        &[Method::FedProx, Method::AlphaSync]
    };

    eprintln!(
        "running robustness matrix ({} attacks × {} defenses × {} methods, {} adversaries, \
         dropout {:.2}) …",
        attacks.len(),
        defenses.len(),
        methods.len(),
        args.adversaries,
        args.dropout
    );
    let start = std::time::Instant::now();
    let clients = build_experiment_clients(&config)?;
    let factory = model_factory(ModelKind::FlNet, config.model_scale);

    for attack in attacks {
        let scenario = ScenarioConfig::honest(args.scenario_seed, clients.len())
            .hostile_tail(args.adversaries, *attack)
            .with_dropout(args.dropout);
        let mut rows = Vec::new();
        for &method in methods {
            for defense in defenses {
                let mut fed = config.fed.clone();
                fed.aggregation = defense;
                let attack_start = std::time::Instant::now();
                let outcome = run_scenario(method, &clients, &factory, &fed, &scenario)?;
                eprintln!(
                    "  {} / {} / {}: {:.1?}",
                    attack.label(),
                    method.label(),
                    defense.label(),
                    attack_start.elapsed()
                );
                rows.push(outcome);
            }
        }
        let title = format!(
            "Robustness under {} ({} of {} clients hostile, dropout {:.2})",
            attack.label(),
            args.adversaries,
            clients.len(),
            args.dropout
        );
        println!("{}", render_robustness_grid(&title, clients.len(), &rows));
    }
    eprintln!("elapsed: {:.1?}", start.elapsed());
    Ok(())
}
