//! Regenerates **Table 5**: PROS accuracy under all eight training
//! methods.
//!
//! The shape to reproduce: PROS — the most complex model — has the lowest
//! accuracy overall, degrades under decentralized training like RouteNet,
//! and fine-tuning brings it back towards its (already modest)
//! centralized accuracy.

use rte_bench::reference::TABLE5_PROS;
use rte_nn::models::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    rte_bench::table_main(
        ModelKind::Pros,
        &TABLE5_PROS,
        &[
            (
                "Training Centrally on All Data",
                "Local Average (b1 to b9)",
                "central pooling is the upper bound",
            ),
            (
                "FedProx + Fine-tuning",
                "FedProx",
                "fine-tuning recovers accuracy",
            ),
        ],
    )
}
