//! **Corpus-scale I/O benchmark**: measures the three data-path knobs
//! added for out-of-core scaling and dumps a machine-readable
//! `BENCH_corpus.json` trajectory next to `BENCH_kernels.json`:
//!
//! - full-pass shard read throughput, `seek`+`read` backend vs the
//!   memory-mapped zero-copy backend (same bytes, different plumbing),
//! - shard compaction with the delta+bitpack chunk codec, raw vs
//!   compressed bytes on disk plus a bitwise round-trip check,
//! - an end-to-end FedProx round on a synthesized client universe
//!   (`--clients`, default 100) — the population-scale smoke the CI
//!   matrix runs with `--quick`.
//!
//! All three are pure wall-clock/disk knobs: the determinism suites pin
//! every one of them to bit-identical outcomes.

use std::path::Path;
use std::time::Instant;

use rte_bench::BenchArgs;
use rte_core::{build_experiment_clients, run_method_on_clients, ExperimentConfig};
use rte_eda::corpus::UniverseConfig;
use rte_eda::mmap::MmapShardReader;
use rte_eda::shard::{compact_dir, CorpusReader, CorpusWriter, DEFAULT_COMPRESS_CHUNK};
use rte_fed::Method;
use rte_nn::models::ModelKind;

/// One flat JSON record, kernels-dump style.
struct Entry {
    metric: &'static str,
    fields: Vec<(&'static str, String)>,
}

impl Entry {
    fn new(metric: &'static str) -> Self {
        Entry {
            metric,
            fields: Vec::new(),
        }
    }

    fn num(mut self, key: &'static str, value: f64) -> Self {
        self.fields.push((key, format!("{value:.3}")));
        self
    }

    fn int(mut self, key: &'static str, value: u64) -> Self {
        self.fields.push((key, value.to_string()));
        self
    }

    fn text(mut self, key: &'static str, value: &str) -> Self {
        self.fields.push((key, format!("\"{value}\"")));
        self
    }
}

fn render_json(entries: &[Entry]) -> String {
    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!("  {{\"metric\": \"{}\"", e.metric));
        for (k, v) in &e.fields {
            json.push_str(&format!(", \"{k}\": {v}"));
        }
        json.push_str(if i + 1 == entries.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    json.push_str("]\n");
    json
}

/// Full sequential pass over every shard via `seek`+`read`; returns
/// `(samples, seconds)`.
fn read_pass(dir: &Path) -> (u64, f64) {
    let reader = CorpusReader::open(dir).expect("corpus dir readable");
    let mut features = Vec::new();
    let mut labels = Vec::new();
    let mut samples = 0u64;
    let start = Instant::now();
    for client in reader.clients() {
        for shard in [&client.train, &client.test] {
            shard
                .read_batch_into(0..shard.len(), &mut features, &mut labels)
                .expect("shard pass");
            samples += shard.len() as u64;
        }
    }
    (samples, start.elapsed().as_secs_f64())
}

/// The same pass through the memory-mapped backend.
fn mmap_pass(dir: &Path) -> (u64, f64) {
    let reader = CorpusReader::open(dir).expect("corpus dir readable");
    let paths: Vec<_> = reader
        .clients()
        .iter()
        .flat_map(|c| [c.train.path().to_path_buf(), c.test.path().to_path_buf()])
        .collect();
    let mut features = Vec::new();
    let mut labels = Vec::new();
    let mut samples = 0u64;
    let start = Instant::now();
    for path in paths {
        let shard = MmapShardReader::open(&path).expect("mmap open");
        shard
            .read_batch_into(0..shard.len(), &mut features, &mut labels)
            .expect("mmap pass");
        samples += shard.len() as u64;
    }
    (samples, start.elapsed().as_secs_f64())
}

/// Copies every file of `src` into `dst` (fresh directory).
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read corpus dir") {
        let path = entry.expect("dir entry").path();
        if path.is_file() {
            std::fs::copy(&path, dst.join(path.file_name().expect("file name")))
                .expect("copy shard");
        }
    }
}

/// First training sample of every client, as raw bits (the round-trip
/// verification currency).
fn first_sample_bits(dir: &Path) -> Vec<Vec<u32>> {
    let reader = CorpusReader::open(dir).expect("corpus dir readable");
    reader
        .clients()
        .iter()
        .map(|c| {
            let s = c.train.read_sample(0).expect("sample 0");
            s.features.data().iter().map(|v| v.to_bits()).collect()
        })
        .collect()
}

fn main() {
    let args = BenchArgs::parse();
    let mut config: ExperimentConfig = args.experiment_config();
    if args.clients.is_none() {
        // The benchmark's reason to exist is population scale: default
        // to a 100-client universe rather than the 9-client Table 2.
        config = config.with_population(UniverseConfig::new(100, 400));
    }
    let specs = config.client_specs().expect("universe shape");
    let scratch = std::env::temp_dir().join(format!("rte-bench-corpus-{}", std::process::id()));
    let raw_dir = scratch.join("raw");
    let packed_dir = scratch.join("packed");
    let _ = std::fs::remove_dir_all(&scratch);

    eprintln!(
        "generating {} clients ({} shard files) …",
        specs.len(),
        2 * specs.len()
    );
    let gen_start = Instant::now();
    CorpusWriter::new(&raw_dir)
        .with_chunk(config.stream_chunk)
        .with_parallelism(config.corpus_parallelism)
        .write_specs(&specs, &config.corpus)
        .expect("shard generation");
    let gen_secs = gen_start.elapsed().as_secs_f64();

    let mut entries = Vec::new();
    entries.push(
        Entry::new("shard_generate")
            .int("clients", specs.len() as u64)
            .num("elapsed_ms", gen_secs * 1e3),
    );

    // Read-backend vs mmap-backend full pass (warm once to take file
    // creation out of the first-measured arm).
    let _ = read_pass(&raw_dir);
    let (read_samples, read_secs) = read_pass(&raw_dir);
    let (mmap_samples, mmap_secs) = mmap_pass(&raw_dir);
    assert_eq!(
        read_samples, mmap_samples,
        "backends must see equal corpora"
    );
    for (backend, samples, secs) in [
        ("read", read_samples, read_secs),
        ("mmap", mmap_samples, mmap_secs),
    ] {
        println!(
            "bench: full pass {backend:<5} {samples:>8} samples  {:>10.1} samples/s",
            samples as f64 / secs
        );
        entries.push(
            Entry::new("shard_pass")
                .text("backend", backend)
                .int("samples", samples)
                .num("elapsed_ms", secs * 1e3)
                .num("samples_per_sec", samples as f64 / secs),
        );
    }

    // Compression: compact a copy, compare bytes, verify bitwise.
    copy_dir(&raw_dir, &packed_dir);
    let pack_start = Instant::now();
    let summary = compact_dir(&packed_dir, DEFAULT_COMPRESS_CHUNK).expect("compaction");
    let pack_secs = pack_start.elapsed().as_secs_f64();
    assert_eq!(
        first_sample_bits(&raw_dir),
        first_sample_bits(&packed_dir),
        "codec must round-trip bitwise"
    );
    println!(
        "bench: compaction {} shards  {} -> {} bytes ({:.2}x)",
        summary.compressed,
        summary.raw_bytes,
        summary.compressed_bytes,
        summary.raw_bytes as f64 / summary.compressed_bytes as f64
    );
    entries.push(
        Entry::new("compression")
            .int("shards", summary.compressed as u64)
            .int("raw_bytes", summary.raw_bytes)
            .int("compressed_bytes", summary.compressed_bytes)
            .num(
                "ratio",
                summary.raw_bytes as f64 / summary.compressed_bytes as f64,
            )
            .num("elapsed_ms", pack_secs * 1e3),
    );

    // End-to-end: one FedProx run over the full universe on whichever
    // path the flags picked (in-memory by default; --corpus-dir,
    // --mmap, --compress-shards all apply).
    let e2e_start = Instant::now();
    let clients = build_experiment_clients(&config).expect("client build");
    let outcome = run_method_on_clients(Method::FedProx, &clients, ModelKind::FlNet, &config)
        .expect("fedprox run");
    let e2e_secs = e2e_start.elapsed().as_secs_f64();
    println!(
        "bench: fedprox {} clients {} rounds  avg AUC {:.4}  {:.1}s",
        clients.len(),
        config.fed.rounds,
        outcome.average_auc,
        e2e_secs
    );
    entries.push(
        Entry::new("fedprox_round")
            .int("clients", clients.len() as u64)
            .int("rounds", config.fed.rounds as u64)
            .num("average_auc", outcome.average_auc)
            .num("elapsed_ms", e2e_secs * 1e3),
    );

    let json = render_json(&entries);
    // Same convention as the kernels dump: workspace root by default,
    // `RTE_BENCH_CORPUS_JSON` overrides.
    let path = rte_tensor::knobs::raw("RTE_BENCH_CORPUS_JSON").unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_corpus.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("bench: wrote corpus trajectory to {path}"),
        Err(e) => eprintln!("bench: could not write {path}: {e}"),
    }
    let _ = std::fs::remove_dir_all(&scratch);
}
