//! Shared support for the benchmark harness binaries.
//!
//! Each paper table/figure has a dedicated binary under `src/bin/`; this
//! library provides their common pieces: a tiny CLI parser, the paper's
//! published numbers (so every run prints *paper vs measured* side by
//! side), and comparison rendering.
//!
//! Run e.g.:
//!
//! ```text
//! cargo run -p rte-bench --release --bin table3_flnet
//! cargo run -p rte-bench --release --bin table3_flnet -- --paper-scale
//! cargo run -p rte-bench --release --bin fig1_convergence -- --rounds 20
//! ```

// Pure safe Rust; all workspace `unsafe` lives in `rte_tensor::simd`
// (rte-lint rule L1 enforces this).
#![forbid(unsafe_code)]

pub mod reference;

use rte_core::ExperimentConfig;
use rte_eda::corpus::UniverseConfig;
use rte_fed::MethodOutcome;

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Use the paper's full hyper-parameters and data counts (hours of
    /// CPU) instead of the CPU-scaled defaults.
    pub paper_scale: bool,
    /// Override the experiment seed.
    pub seed: Option<u64>,
    /// Override the number of federated rounds.
    pub rounds: Option<usize>,
    /// Override the placement-count scale factor.
    pub data_scale: Option<f64>,
    /// Extra-fast smoke-test settings (used by integration tests).
    pub quick: bool,
    /// Worker-thread budget for parallel client training and batched
    /// kernels (`0` = all cores). `None` keeps the `RTE_THREADS`
    /// environment default. Results are bit-identical for any value.
    pub threads: Option<usize>,
    /// Run the experiment out-of-core: generate/reuse corpus shards in
    /// this directory and stream every client's data in bounded-memory
    /// chunks. `None` keeps the in-memory default. Results are
    /// bit-identical either way.
    pub corpus_dir: Option<std::path::PathBuf>,
    /// Samples per streamed chunk (only meaningful with `--corpus-dir`).
    pub stream_chunk: Option<usize>,
    /// Serve shards through the memory-mapped zero-copy backend (only
    /// meaningful with `--corpus-dir`). Results are bit-identical.
    pub mmap: bool,
    /// Compact shard files with the delta+bitpack chunk codec before
    /// training (only meaningful with `--corpus-dir`; incompatible with
    /// `--mmap`). Results are bit-identical.
    pub compress_shards: bool,
    /// Train a synthesized client universe of this size instead of the
    /// Table 2 fleet.
    pub clients: Option<usize>,
    /// Design pool size for `--clients` (default `4 × clients`).
    pub designs: Option<usize>,
}

impl BenchArgs {
    /// Parses from an explicit iterator (testable).
    ///
    /// # Errors
    ///
    /// Returns a message for unknown flags or malformed values, so a typo
    /// cannot silently run the wrong experiment.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = BenchArgs {
            paper_scale: false,
            seed: None,
            rounds: None,
            data_scale: None,
            quick: false,
            threads: None,
            corpus_dir: None,
            stream_chunk: None,
            mmap: false,
            compress_shards: false,
            clients: None,
            designs: None,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--paper-scale" => out.paper_scale = true,
                "--quick" => out.quick = true,
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    out.seed = Some(v.parse().map_err(|_| format!("bad seed {v}"))?);
                }
                "--rounds" => {
                    let v = it.next().ok_or("--rounds needs a value")?;
                    out.rounds = Some(v.parse().map_err(|_| format!("bad rounds {v}"))?);
                }
                "--data-scale" => {
                    let v = it.next().ok_or("--data-scale needs a value")?;
                    out.data_scale = Some(v.parse().map_err(|_| format!("bad data scale {v}"))?);
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    out.threads = Some(v.parse().map_err(|_| format!("bad thread count {v}"))?);
                }
                "--corpus-dir" => {
                    let v = it.next().ok_or("--corpus-dir needs a path")?;
                    out.corpus_dir = Some(std::path::PathBuf::from(v));
                }
                "--stream-chunk" => {
                    let v = it.next().ok_or("--stream-chunk needs a value")?;
                    let chunk: usize = v.parse().map_err(|_| format!("bad chunk size {v}"))?;
                    if chunk == 0 {
                        return Err("--stream-chunk must be positive".into());
                    }
                    out.stream_chunk = Some(chunk);
                }
                "--mmap" => out.mmap = true,
                "--compress-shards" => out.compress_shards = true,
                "--clients" => {
                    let v = it.next().ok_or("--clients needs a value")?;
                    let n: usize = v.parse().map_err(|_| format!("bad client count {v}"))?;
                    if n == 0 {
                        return Err("--clients must be positive".into());
                    }
                    out.clients = Some(n);
                }
                "--designs" => {
                    let v = it.next().ok_or("--designs needs a value")?;
                    out.designs = Some(v.parse().map_err(|_| format!("bad design count {v}"))?);
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if out.mmap && out.compress_shards {
            return Err("--mmap cannot read compressed shards; drop one of the flags".into());
        }
        if out.designs.is_some() && out.clients.is_none() {
            return Err("--designs only makes sense together with --clients".into());
        }
        if let (Some(c), Some(d)) = (out.clients, out.designs) {
            if d < 2 * c {
                return Err(format!("--designs {d} is too small: need at least 2 × {c}"));
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with usage on error.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [--paper-scale] [--quick] [--seed N] [--rounds N] [--data-scale F] \
                     [--threads N] [--corpus-dir PATH] [--stream-chunk N] [--mmap] \
                     [--compress-shards] [--clients N] [--designs D]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Builds the experiment configuration these options select.
    pub fn experiment_config(&self) -> ExperimentConfig {
        let mut config = if self.paper_scale {
            ExperimentConfig::paper()
        } else {
            ExperimentConfig::scaled()
        };
        if self.quick {
            config.corpus.placement_scale = 0.0; // one placement per design
            config.fed.rounds = 2;
            config.fed.local_steps = 4;
            config.fed.finetune_steps = 8;
        }
        if let Some(seed) = self.seed {
            config.corpus.seed = seed;
            config.fed.seed = seed ^ 0xFED5;
        }
        if let Some(rounds) = self.rounds {
            config.fed.rounds = rounds;
        }
        if let Some(scale) = self.data_scale {
            config.corpus.placement_scale = scale;
        }
        if let Some(threads) = self.threads {
            // Parallel client training + the kernel-level process default
            // (this is binary startup, the sanctioned place to retune the
            // global); outcomes are bit-identical either way.
            config = config.with_threads(threads);
            rte_tensor::parallel::set_global(rte_fed::Parallelism::new(threads));
        }
        if let Some(dir) = &self.corpus_dir {
            config = config.with_corpus_dir(dir);
        }
        if let Some(chunk) = self.stream_chunk {
            config = config.with_stream_chunk(chunk);
        }
        if self.mmap {
            config = config.with_shard_backend(rte_core::ShardBackend::Mmap);
        }
        if self.compress_shards {
            config = config.with_compressed_shards();
        }
        if let Some(clients) = self.clients {
            let designs = self.designs.unwrap_or(4 * clients);
            config = config.with_population(UniverseConfig::new(clients, designs));
        }
        config
    }
}

/// Renders a *paper vs measured* comparison for one table.
pub fn render_comparison(measured: &[MethodOutcome], paper: &reference::PaperTable) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}\n", paper.caption));
    out.push_str(&format!(
        "{:<34} {:>7} {:>9} {:>7}\n",
        "Method", "paper", "measured", "delta"
    ));
    out.push_str(&"-".repeat(62));
    out.push('\n');
    for row in measured {
        let label = row.method.label();
        match paper.row(label) {
            Some(p) => {
                let delta = row.average_auc - p.average;
                out.push_str(&format!(
                    "{label:<34} {:>7.2} {:>9.2} {:>+7.2}\n",
                    p.average, row.average_auc, delta
                ));
            }
            None => {
                out.push_str(&format!(
                    "{label:<34} {:>7} {:>9.2}\n",
                    "n/a", row.average_auc
                ));
            }
        }
    }
    out
}

/// Checks the qualitative orderings a table must reproduce; returns a list
/// of human-readable verdicts (`true` = the ordering holds in the
/// measured data). Each check is `(higher_label, lower_label, why)`.
pub fn ordering_checks(
    measured: &[MethodOutcome],
    checks: &[(&str, &str, &str)],
) -> Vec<(String, bool)> {
    use rte_fed::Method;
    let find = |label: &str| -> Option<f64> {
        Method::ALL
            .iter()
            .find(|m| m.label() == label)
            .and_then(|m| measured.iter().find(|r| r.method == *m))
            .map(|r| r.average_auc)
    };
    checks
        .iter()
        .filter_map(|(hi, lo, why)| {
            let a = find(hi)?;
            let b = find(lo)?;
            Some((format!("{why}: {hi} ({a:.2}) > {lo} ({b:.2})"), a > b))
        })
        .collect()
}

/// Full main body for a table binary: parse args, run the experiment
/// matrix for `kind`, print the measured table, the paper comparison and
/// the qualitative ordering checks.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn table_main(
    kind: rte_nn::models::ModelKind,
    paper: &reference::PaperTable,
    checks: &[(&str, &str, &str)],
) -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    let config = args.experiment_config();
    eprintln!(
        "running {} experiment matrix ({} methods, {} rounds, scale {:.3}) …",
        kind,
        config.methods.len(),
        config.fed.rounds,
        config.corpus.placement_scale
    );
    let start = std::time::Instant::now();
    let table = rte_core::run_table(kind, &config)?;
    println!("{}", rte_core::report::render_table(&table));
    // Companion metrics from the per-client EvalReports (not in the
    // paper's tables, but what a deployment would actually monitor).
    println!(
        "{}",
        rte_core::report::render_metric_table(&table, "Average precision per client", |r| r
            .average_precision)
    );
    println!(
        "{}",
        rte_core::report::render_metric_table(
            &table,
            "Accuracy at the 0.5 deployment threshold per client",
            |r| r.confusion.accuracy()
        )
    );
    println!("{}", render_comparison(&table.rows, paper));
    println!("Qualitative ordering checks (shape of the paper's result):");
    for (desc, holds) in ordering_checks(&table.rows, checks) {
        println!("  [{}] {desc}", if holds { "ok" } else { "MISS" });
    }
    eprintln!("elapsed: {:.1?}", start.elapsed());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<BenchArgs, String> {
        BenchArgs::parse_from(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parse_defaults() {
        let a = args(&[]).unwrap();
        assert!(!a.paper_scale);
        assert!(!a.quick);
        assert_eq!(a.seed, None);
    }

    #[test]
    fn parse_all_flags() {
        let a = args(&[
            "--paper-scale",
            "--quick",
            "--seed",
            "42",
            "--rounds",
            "7",
            "--data-scale",
            "0.25",
            "--threads",
            "4",
        ])
        .unwrap();
        assert!(a.paper_scale);
        assert!(a.quick);
        assert_eq!(a.seed, Some(42));
        assert_eq!(a.rounds, Some(7));
        assert_eq!(a.data_scale, Some(0.25));
        assert_eq!(a.threads, Some(4));
    }

    #[test]
    fn threads_flag_plumbs_into_fed_config() {
        let before = rte_tensor::parallel::global();
        let a = args(&["--quick", "--threads", "3"]).unwrap();
        let c = a.experiment_config();
        assert_eq!(c.fed.parallelism, rte_fed::Parallelism::new(3));
        assert_eq!(rte_tensor::parallel::global(), rte_fed::Parallelism::new(3));
        rte_tensor::parallel::set_global(before); // don't leak into other tests
        assert!(args(&["--threads", "x"]).is_err());
        assert!(args(&["--threads"]).is_err());
    }

    #[test]
    fn parse_rejects_unknown_and_malformed() {
        assert!(args(&["--frobnicate"]).is_err());
        assert!(args(&["--seed"]).is_err());
        assert!(args(&["--seed", "abc"]).is_err());
    }

    #[test]
    fn streaming_flags_plumb_into_config() {
        let a = args(&[
            "--quick",
            "--corpus-dir",
            "/tmp/corpus",
            "--stream-chunk",
            "16",
        ])
        .unwrap();
        assert_eq!(
            a.corpus_dir.as_deref(),
            Some(std::path::Path::new("/tmp/corpus"))
        );
        assert_eq!(a.stream_chunk, Some(16));
        let c = a.experiment_config();
        assert_eq!(
            c.corpus_dir.as_deref(),
            Some(std::path::Path::new("/tmp/corpus"))
        );
        assert_eq!(c.stream_chunk, 16);
        // Omitting the flags keeps the in-memory default.
        let c = args(&["--quick"]).unwrap().experiment_config();
        assert!(c.corpus_dir.is_none());
        // Malformed values are rejected loudly.
        assert!(args(&["--corpus-dir"]).is_err());
        assert!(args(&["--stream-chunk"]).is_err());
        assert!(args(&["--stream-chunk", "0"]).is_err());
        assert!(args(&["--stream-chunk", "x"]).is_err());
    }

    #[test]
    fn corpus_scale_flags_plumb_into_config() {
        let a = args(&["--quick", "--mmap", "--clients", "100", "--designs", "400"]).unwrap();
        assert!(a.mmap);
        assert_eq!(a.clients, Some(100));
        assert_eq!(a.designs, Some(400));
        let c = a.experiment_config();
        assert_eq!(c.shard_backend, rte_core::ShardBackend::Mmap);
        let universe = c.population.expect("population set");
        assert_eq!((universe.clients, universe.designs), (100, 400));
        // --designs defaults to 4 × clients.
        let c = args(&["--quick", "--clients", "10"])
            .unwrap()
            .experiment_config();
        assert_eq!(c.population.expect("population").designs, 40);
        // Compression plumbs through; default keeps raw shards.
        let c = args(&["--quick", "--compress-shards"])
            .unwrap()
            .experiment_config();
        assert!(c.compress_shards);
        assert!(
            !args(&["--quick"])
                .unwrap()
                .experiment_config()
                .compress_shards
        );
        // Contradictory or malformed combinations are rejected loudly.
        assert!(args(&["--mmap", "--compress-shards"]).is_err());
        assert!(args(&["--designs", "40"]).is_err());
        assert!(args(&["--clients", "0"]).is_err());
        assert!(args(&["--clients", "10", "--designs", "5"]).is_err());
        assert!(args(&["--clients"]).is_err());
        assert!(args(&["--clients", "x"]).is_err());
    }

    #[test]
    fn config_overrides_apply() {
        let a = args(&["--quick", "--rounds", "3", "--seed", "9"]).unwrap();
        let c = a.experiment_config();
        assert_eq!(c.fed.rounds, 3);
        assert_eq!(c.corpus.seed, 9);
        assert_eq!(c.corpus.placement_scale, 0.0);
    }

    #[test]
    fn paper_scale_selects_paper_config() {
        let a = args(&["--paper-scale"]).unwrap();
        let c = a.experiment_config();
        assert_eq!(c.fed.rounds, 50);
        assert_eq!(c.corpus.placement_scale, 1.0);
    }
}
