//! The paper's published numbers (Tables 3-5), transcribed verbatim so
//! every harness run prints *paper vs measured* side by side.

/// One published table row: per-client ROC AUC and the average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Row label exactly as the paper prints it.
    pub label: &'static str,
    /// ROC AUC on clients 1-9.
    pub per_client: [f64; 9],
    /// Average over the nine clients.
    pub average: f64,
}

/// One published table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTable {
    /// Table caption.
    pub caption: &'static str,
    /// Rows in the paper's order.
    pub rows: &'static [PaperRow],
}

impl PaperTable {
    /// Finds a row by its label.
    pub fn row(&self, label: &str) -> Option<&PaperRow> {
        self.rows.iter().find(|r| r.label == label)
    }
}

/// Table 3: FLNet accuracy per training method.
pub const TABLE3_FLNET: PaperTable = PaperTable {
    caption: "Table 3: Testing Accuracy (ROC AUC) on Routability Prediction with FLNet",
    rows: &[
        PaperRow {
            label: "Local Average (b1 to b9)",
            per_client: [0.76, 0.75, 0.71, 0.72, 0.67, 0.70, 0.76, 0.64, 0.82],
            average: 0.72,
        },
        PaperRow {
            label: "Training Centrally on All Data",
            per_client: [0.87, 0.87, 0.77, 0.80, 0.75, 0.77, 0.82, 0.70, 0.92],
            average: 0.81,
        },
        PaperRow {
            label: "FedProx",
            per_client: [0.82, 0.78, 0.73, 0.75, 0.72, 0.74, 0.82, 0.69, 0.96],
            average: 0.78,
        },
        PaperRow {
            label: "FedProx-LG",
            per_client: [0.77, 0.61, 0.65, 0.65, 0.60, 0.69, 0.77, 0.63, 0.93],
            average: 0.70,
        },
        PaperRow {
            label: "IFCA",
            per_client: [0.83, 0.79, 0.73, 0.76, 0.71, 0.75, 0.82, 0.69, 0.87],
            average: 0.77,
        },
        PaperRow {
            label: "FedProx + Fine-tuning",
            per_client: [0.84, 0.89, 0.79, 0.78, 0.72, 0.75, 0.82, 0.72, 0.90],
            average: 0.80,
        },
        PaperRow {
            label: "Assigned Clustering",
            per_client: [0.81, 0.86, 0.75, 0.76, 0.72, 0.75, 0.81, 0.70, 0.88],
            average: 0.78,
        },
        PaperRow {
            label: "FedProx + α-Portion Sync",
            per_client: [0.82, 0.79, 0.73, 0.76, 0.72, 0.75, 0.81, 0.69, 0.90],
            average: 0.78,
        },
    ],
};

/// Table 4: RouteNet accuracy per training method.
pub const TABLE4_ROUTENET: PaperTable = PaperTable {
    caption: "Table 4: Testing Accuracy (ROC AUC) on Routability Prediction with RouteNet",
    rows: &[
        PaperRow {
            label: "Local Average (b1 to b9)",
            per_client: [0.76, 0.76, 0.71, 0.73, 0.68, 0.71, 0.75, 0.64, 0.78],
            average: 0.73,
        },
        PaperRow {
            label: "Training Centrally on All Data",
            per_client: [0.86, 0.88, 0.79, 0.82, 0.81, 0.77, 0.82, 0.75, 0.94],
            average: 0.83,
        },
        PaperRow {
            label: "FedProx",
            per_client: [0.63, 0.83, 0.71, 0.72, 0.66, 0.67, 0.63, 0.57, 0.42],
            average: 0.65,
        },
        PaperRow {
            label: "FedProx-LG",
            per_client: [0.60, 0.55, 0.57, 0.50, 0.51, 0.49, 0.54, 0.52, 0.46],
            average: 0.53,
        },
        PaperRow {
            label: "IFCA",
            per_client: [0.46, 0.28, 0.35, 0.37, 0.39, 0.44, 0.43, 0.43, 0.71],
            average: 0.43,
        },
        PaperRow {
            label: "FedProx + Fine-tuning",
            per_client: [0.83, 0.86, 0.76, 0.75, 0.74, 0.75, 0.81, 0.72, 0.90],
            average: 0.79,
        },
        PaperRow {
            label: "Assigned Clustering",
            per_client: [0.70, 0.85, 0.74, 0.65, 0.64, 0.65, 0.49, 0.46, 0.89],
            average: 0.67,
        },
        PaperRow {
            label: "FedProx + α-Portion Sync",
            per_client: [0.66, 0.57, 0.61, 0.57, 0.54, 0.58, 0.68, 0.58, 0.72],
            average: 0.61,
        },
    ],
};

/// Table 5: PROS accuracy per training method.
pub const TABLE5_PROS: PaperTable = PaperTable {
    caption: "Table 5: Testing Accuracy (ROC AUC) on Routability Prediction with PROS",
    rows: &[
        PaperRow {
            label: "Local Average (b1 to b9)",
            per_client: [0.65, 0.63, 0.61, 0.61, 0.58, 0.62, 0.66, 0.59, 0.72],
            average: 0.63,
        },
        PaperRow {
            label: "Training Centrally on All Data",
            per_client: [0.75, 0.68, 0.65, 0.65, 0.62, 0.62, 0.73, 0.65, 0.73],
            average: 0.67,
        },
        PaperRow {
            label: "FedProx",
            per_client: [0.67, 0.60, 0.61, 0.64, 0.63, 0.64, 0.65, 0.59, 0.58],
            average: 0.62,
        },
        PaperRow {
            label: "FedProx-LG",
            per_client: [0.69, 0.62, 0.62, 0.63, 0.61, 0.65, 0.71, 0.60, 0.84],
            average: 0.66,
        },
        PaperRow {
            label: "IFCA",
            per_client: [0.50, 0.58, 0.52, 0.53, 0.51, 0.48, 0.51, 0.51, 0.35],
            average: 0.50,
        },
        PaperRow {
            label: "FedProx + Fine-tuning",
            per_client: [0.74, 0.65, 0.76, 0.72, 0.53, 0.67, 0.81, 0.69, 0.50],
            average: 0.67,
        },
        PaperRow {
            label: "Assigned Clustering",
            per_client: [0.47, 0.55, 0.51, 0.48, 0.49, 0.51, 0.70, 0.60, 0.36],
            average: 0.52,
        },
        PaperRow {
            label: "FedProx + α-Portion Sync",
            per_client: [0.64, 0.45, 0.56, 0.58, 0.55, 0.52, 0.64, 0.55, 0.59],
            average: 0.56,
        },
    ],
};

#[cfg(test)]
mod tests {
    use super::*;

    fn check_averages(table: &PaperTable) {
        for row in table.rows {
            let mean: f64 = row.per_client.iter().sum::<f64>() / 9.0;
            // Published averages are rounded to two decimals.
            assert!(
                (mean - row.average).abs() < 0.012,
                "{}: {} computed mean {mean} vs published {}",
                table.caption,
                row.label,
                row.average
            );
        }
    }

    #[test]
    fn transcription_is_internally_consistent() {
        check_averages(&TABLE3_FLNET);
        check_averages(&TABLE4_ROUTENET);
        check_averages(&TABLE5_PROS);
    }

    #[test]
    fn headline_claims_present_in_numbers() {
        // FLNet FedProx+FT (0.80) beats local (0.72) by 0.08 ≈ 11%.
        let ft = TABLE3_FLNET.row("FedProx + Fine-tuning").unwrap().average;
        let local = TABLE3_FLNET
            .row("Local Average (b1 to b9)")
            .unwrap()
            .average;
        assert!((ft - local - 0.08).abs() < 1e-9);
        assert!(((ft - local) / local - 0.111).abs() < 0.01);
        // RouteNet FedProx collapses below its local baseline.
        let rn_prox = TABLE4_ROUTENET.row("FedProx").unwrap().average;
        let rn_local = TABLE4_ROUTENET
            .row("Local Average (b1 to b9)")
            .unwrap()
            .average;
        assert!(rn_prox < rn_local);
        // PROS is the weakest model overall.
        assert!(
            TABLE5_PROS.row("FedProx").unwrap().average
                < TABLE3_FLNET.row("FedProx").unwrap().average
        );
    }

    #[test]
    fn row_lookup() {
        assert!(TABLE3_FLNET.row("FedProx").is_some());
        assert!(TABLE3_FLNET.row("Nonexistent").is_none());
    }

    #[test]
    fn all_tables_have_eight_rows() {
        assert_eq!(TABLE3_FLNET.rows.len(), 8);
        assert_eq!(TABLE4_ROUTENET.rows.len(), 8);
        assert_eq!(TABLE5_PROS.rows.len(), 8);
    }
}
