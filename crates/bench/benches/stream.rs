//! Criterion benchmarks for the streaming corpus pipeline: out-of-core
//! corpus generation (write-to-shards vs materialize-in-memory), and
//! evaluation fed from streamed chunks vs in-memory tensors — plus the
//! bounded-memory proof: after a full streamed pass, every client's
//! peak resident sample count is checked against `2 × chunk`, not the
//! corpus size.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;

use rte_core::{build_clients, shard_client_set, ExperimentConfig};
use rte_eda::corpus::{generate_corpus_with, CorpusConfig};
use rte_eda::shard::{CorpusReader, CorpusWriter};
use rte_fed::{Client, Evaluator, ModelFactory, Parallelism};
use rte_nn::models::{FlNet, FlNetConfig};
use rte_nn::state_dict;
use rte_tensor::rng::Xoshiro256;

/// A miniature of the Table 2 build (~190 placements at scale 1/38) —
/// the same workload the `eda` bench uses for the in-memory generator.
fn bench_config() -> CorpusConfig {
    let mut config = CorpusConfig::tiny();
    config.placement_scale = 1.0 / 38.0;
    config
}

fn scratch_dir(tag: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("stream-bench-{tag}"))
}

fn factory() -> ModelFactory {
    Box::new(|seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        Box::new(FlNet::new(
            FlNetConfig {
                in_channels: 6,
                hidden: 8,
                kernel: 3,
                depth: 2,
            },
            &mut rng,
        ))
    })
}

/// Corpus generation: materializing every tensor in memory vs streaming
/// straight to shard files (chunked, bounded memory). Same bytes, very
/// different peak footprint.
fn bench_corpus_write(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("corpus_generate_in_memory", |b| {
        b.iter(|| generate_corpus_with(black_box(&config), Parallelism::auto()).unwrap())
    });
    for chunk in [16usize, 64] {
        let dir = scratch_dir(&format!("write-{chunk}"));
        c.bench_function(&format!("corpus_write_shards_chunk{chunk}"), |b| {
            b.iter(|| {
                let _ = std::fs::remove_dir_all(&dir);
                CorpusWriter::new(&dir)
                    .with_chunk(chunk)
                    .with_parallelism(Parallelism::auto())
                    .write(black_box(&config))
                    .unwrap()
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Builds the nine Table 2 clients streaming from shards with the given
/// chunk size.
fn streaming_clients(dir: &PathBuf, config: &CorpusConfig, chunk: usize) -> Vec<Client> {
    if CorpusReader::open(dir).is_err() {
        let _ = std::fs::remove_dir_all(dir);
        CorpusWriter::new(dir).write(config).unwrap();
    }
    CorpusReader::open(dir)
        .unwrap()
        .into_clients()
        .into_iter()
        .map(|shards| {
            Client::new(
                shards.client_index,
                shard_client_set(shards.train, chunk).unwrap(),
                shard_client_set(shards.test, chunk).unwrap(),
            )
        })
        .collect()
}

/// Nine-client generalized evaluation: in-memory tensors vs streamed
/// chunks at two chunk sizes. Outcomes are bit-identical; the streamed
/// variants bound memory by the chunk, verified after the run.
fn bench_streamed_eval(c: &mut Criterion) {
    let config = bench_config();
    let corpus = generate_corpus_with(&config, Parallelism::auto()).unwrap();
    let in_memory = build_clients(&corpus).unwrap();
    let factory = factory();
    let global = state_dict(factory(7).as_mut());
    let evaluator = Evaluator::new(Parallelism::auto(), 16);
    c.bench_function("eval_9_clients_in_memory", |b| {
        b.iter(|| {
            evaluator
                .eval_global(&factory, 7, black_box(&in_memory), black_box(&global))
                .unwrap()
        })
    });
    let dir = scratch_dir("eval");
    let corpus_samples: usize = in_memory.iter().map(|c| c.train.len() + c.test.len()).sum();
    for chunk in [8usize, 32] {
        let clients = streaming_clients(&dir, &config, chunk);
        c.bench_function(&format!("eval_9_clients_streamed_chunk{chunk}"), |b| {
            b.iter(|| {
                evaluator
                    .eval_global(&factory, 7, black_box(&clients), black_box(&global))
                    .unwrap()
            })
        });
        // The bounded-memory proof: after full streamed passes over
        // every test split, peak residency per split is capped by the
        // double buffer (2 × chunk), not the corpus (or even the split).
        for client in &clients {
            let stream = client.test.as_streaming().expect("streamed client");
            let peak = stream.peak_resident_samples();
            assert!(
                peak <= 2 * chunk,
                "client {} peak residency {peak} exceeds double-buffer bound {}",
                client.id,
                2 * chunk
            );
        }
        let worst = clients
            .iter()
            .map(|cl| cl.test.as_streaming().unwrap().peak_resident_samples())
            .max()
            .unwrap_or(0);
        println!(
            "info:  streamed eval chunk {chunk:>3}: peak resident {worst} samples \
             (corpus holds {corpus_samples}) — memory bounded by chunk, not corpus"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end table cell out-of-core: FedProx on streamed clients via
/// the `ExperimentConfig` plumbing (`--corpus-dir` / `--stream-chunk`),
/// vs the same run in memory.
fn bench_streamed_table(c: &mut Criterion) {
    use rte_nn::models::ModelKind;
    let base = {
        let mut config = ExperimentConfig::tiny();
        config.corpus.placement_scale = 1.0 / 38.0;
        config.methods = vec![rte_fed::Method::FedProx];
        config
    };
    c.bench_function("fedprox_table_in_memory", |b| {
        b.iter(|| rte_core::run_table(ModelKind::FlNet, black_box(&base)).unwrap())
    });
    let dir = scratch_dir("table");
    let _ = std::fs::remove_dir_all(&dir);
    let streamed = base.clone().with_corpus_dir(&dir).with_stream_chunk(16);
    c.bench_function("fedprox_table_streamed_chunk16", |b| {
        b.iter(|| rte_core::run_table(ModelKind::FlNet, black_box(&streamed)).unwrap())
    });
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_corpus_write,
    bench_streamed_eval,
    bench_streamed_table
);
criterion_main!(benches);
