//! Criterion micro-benchmarks for the EDA data substrate: netlist
//! generation, placement, routing demand, RUDY, full sample generation,
//! and sharded corpus generation (1 thread vs all cores — byte-identical
//! output, only wall-clock differs).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rte_eda::congestion::{route_demand, rudy};
use rte_eda::corpus::{generate_corpus_with, CorpusConfig};
use rte_eda::dataset::generate_sample;
use rte_eda::netlist::generate_netlist;
use rte_eda::placement::{place, PlacementConfig};
use rte_eda::Family;
use rte_tensor::parallel::Parallelism;

fn bench_netlist(c: &mut Criterion) {
    c.bench_function("generate_netlist_itc99", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            generate_netlist(Family::Itc99, black_box(seed)).unwrap()
        })
    });
    c.bench_function("generate_netlist_ispd15", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            generate_netlist(Family::Ispd15, black_box(seed)).unwrap()
        })
    });
}

fn bench_placement(c: &mut Criterion) {
    let netlist = generate_netlist(Family::Itc99, 7).unwrap();
    c.bench_function("place_itc99_16x16", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            place(&netlist, &PlacementConfig::new(16, 16, black_box(seed))).unwrap()
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let netlist = generate_netlist(Family::Itc99, 7).unwrap();
    let placement = place(&netlist, &PlacementConfig::new(16, 16, 1)).unwrap();
    c.bench_function("route_demand_itc99", |b| {
        b.iter(|| route_demand(black_box(&netlist), black_box(&placement)))
    });
    c.bench_function("rudy_itc99", |b| {
        b.iter(|| rudy(black_box(&netlist), black_box(&placement)))
    });
}

fn bench_sample(c: &mut Criterion) {
    let netlist = generate_netlist(Family::Iwls05, 3).unwrap();
    c.bench_function("generate_sample_end_to_end", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            generate_sample(&netlist, &PlacementConfig::new(16, 16, black_box(seed))).unwrap()
        })
    });
}

fn bench_sharded_corpus(c: &mut Criterion) {
    // A miniature of the paper-scale Table 2 build (~190 placements at
    // scale 1/38): generation shards over designs and placements, so the
    // all-cores run shows the corpus-build speedup while producing
    // byte-identical tensors.
    let mut config = CorpusConfig::tiny();
    config.placement_scale = 1.0 / 38.0;
    for (name, par) in [
        ("generate_corpus_1thread", Parallelism::serial()),
        ("generate_corpus_all_cores", Parallelism::auto()),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| generate_corpus_with(black_box(&config), par).unwrap())
        });
    }
}

criterion_group!(
    benches,
    bench_netlist,
    bench_placement,
    bench_routing,
    bench_sample,
    bench_sharded_corpus
);
criterion_main!(benches);
