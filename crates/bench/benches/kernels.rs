//! Criterion micro-benchmarks for the tensor kernels that dominate
//! training time (conv2d forward/backward on FLNet-shaped workloads,
//! matmul across SIMD arms, elementwise sweeps, pixel shuffle), plus a
//! machine-readable `BENCH_kernels.json` perf-trajectory dump.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use rte_tensor::conv::{
    conv2d, conv2d_backward, conv2d_backward_with, conv2d_with, pixel_shuffle, Conv2dSpec,
};
use rte_tensor::linalg::{matmul, matmul_naive};
use rte_tensor::parallel::Parallelism;
use rte_tensor::rng::Xoshiro256;
use rte_tensor::simd::{self, SimdBackend};
use rte_tensor::Tensor;

fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = Xoshiro256::seed_from(seed);
    Tensor::from_fn(dims, |_| rng.normal())
}

/// The arms available on this machine, scalar first (the baseline).
fn arms() -> Vec<SimdBackend> {
    let mut arms = vec![SimdBackend::Scalar];
    if SimdBackend::detect() == SimdBackend::Avx2 {
        arms.push(SimdBackend::Avx2);
    }
    arms
}

fn bench_conv2d(c: &mut Criterion) {
    // FLNet's input conv at scaled capacity: 6→16 channels, 9×9, 16×16.
    let x = rand_tensor(&[4, 6, 16, 16], 1);
    let w = rand_tensor(&[16, 6, 9, 9], 2);
    let b = rand_tensor(&[16], 3);
    let spec = Conv2dSpec::same(9);
    c.bench_function("conv2d_forward_flnet_input", |bench| {
        bench.iter(|| conv2d(black_box(&x), black_box(&w), Some(&b), spec).unwrap())
    });
    let y = conv2d(&x, &w, Some(&b), spec).unwrap();
    c.bench_function("conv2d_backward_flnet_input", |bench| {
        bench.iter(|| conv2d_backward(black_box(&x), black_box(&w), black_box(&y), spec).unwrap())
    });
}

fn bench_matmul(c: &mut Criterion) {
    // im2col-shaped product: (16 × 486) · (486 × 256).
    let a = rand_tensor(&[16 * 486], 4);
    let b = rand_tensor(&[486 * 256], 5);
    let mut out = vec![0.0f32; 16 * 256];
    c.bench_function("matmul_16x486x256", |bench| {
        bench.iter(|| {
            matmul(
                black_box(a.data()),
                black_box(b.data()),
                16,
                486,
                256,
                &mut out,
            );
            black_box(out[0])
        })
    });
}

fn bench_matmul_arms(c: &mut Criterion) {
    // The acceptance workload: a 128×729×576 im2col-shaped product
    // (≈ 107 MFLOP). Naive scalar i-k-j baseline, then each SIMD arm of
    // the GEMM family — outputs are bit-identical, only wall-clock
    // differs.
    let (m, k, n) = (128, 729, 576);
    let a = rand_tensor(&[m * k], 7);
    let b = rand_tensor(&[k * n], 8);
    let mut out = vec![0.0f32; m * n];
    c.bench_function("matmul_naive_128x729x576", |bench| {
        bench.iter(|| {
            matmul_naive(black_box(a.data()), black_box(b.data()), m, k, n, &mut out);
            black_box(out[0])
        })
    });
    for arm in arms() {
        c.bench_function(&format!("matmul_{arm}_128x729x576"), |bench| {
            bench.iter(|| {
                simd::matmul_with(
                    arm,
                    black_box(a.data()),
                    black_box(b.data()),
                    m,
                    k,
                    n,
                    &mut out,
                );
                black_box(out[0])
            })
        });
        c.bench_function(&format!("matmul_tn_{arm}_128x729x576"), |bench| {
            bench.iter(|| {
                simd::matmul_tn_with(
                    arm,
                    black_box(&a.data()[..k * m]),
                    black_box(b.data()),
                    m,
                    k,
                    n,
                    &mut out,
                );
                black_box(out[0])
            })
        });
        c.bench_function(&format!("matmul_nt_acc_{arm}_128x729x576"), |bench| {
            bench.iter(|| {
                simd::matmul_nt_acc_with(
                    arm,
                    black_box(a.data()),
                    black_box(&b.data()[..n * k]),
                    m,
                    k,
                    n,
                    &mut out,
                );
                black_box(out[0])
            })
        });
    }
}

fn bench_elementwise_arms(c: &mut Criterion) {
    // The hot elementwise sweeps at a paper-round-sized 1M elements.
    let len = 1 << 20;
    let x = rand_tensor(&[len], 9);
    let g = rand_tensor(&[len], 10);
    for arm in arms() {
        let mut y = x.data().to_vec();
        c.bench_function(&format!("axpy_{arm}_1m"), |bench| {
            bench.iter(|| {
                simd::axpy_with(arm, 0.37, black_box(g.data()), &mut y);
                black_box(y[0])
            })
        });
        c.bench_function(&format!("sigmoid_{arm}_1m"), |bench| {
            let mut buf = x.data().to_vec();
            bench.iter(|| {
                buf.copy_from_slice(x.data());
                simd::sigmoid_with(arm, black_box(&mut buf));
                black_box(buf[0])
            })
        });
        c.bench_function(&format!("relu_{arm}_1m"), |bench| {
            let mut buf = x.data().to_vec();
            bench.iter(|| {
                buf.copy_from_slice(x.data());
                simd::relu_with(arm, black_box(&mut buf));
                black_box(buf[0])
            })
        });
        c.bench_function(&format!("sum_{arm}_1m"), |bench| {
            bench.iter(|| black_box(simd::sum_with(arm, black_box(x.data()))))
        });
        c.bench_function(&format!("sgd_step_{arm}_1m"), |bench| {
            let mut value = x.data().to_vec();
            bench.iter(|| {
                simd::sgd_step_with(arm, &mut value, black_box(g.data()), 2e-4, 1e-5);
                black_box(value[0])
            })
        });
    }
}

fn bench_conv2d_parallel(c: &mut Criterion) {
    // Batch-parallel conv: a paper-shaped FLNet stage at batch 8, run with
    // 1 worker vs all cores. Identical outputs, different wall-clock.
    let x = rand_tensor(&[8, 6, 32, 32], 9);
    let w = rand_tensor(&[16, 6, 9, 9], 10);
    let b = rand_tensor(&[16], 11);
    let spec = Conv2dSpec::same(9);
    c.bench_function("conv2d_batch8_1thread", |bench| {
        bench.iter(|| {
            conv2d_with(
                black_box(&x),
                black_box(&w),
                Some(&b),
                spec,
                Parallelism::serial(),
            )
            .unwrap()
        })
    });
    c.bench_function("conv2d_batch8_all_cores", |bench| {
        bench.iter(|| {
            conv2d_with(
                black_box(&x),
                black_box(&w),
                Some(&b),
                spec,
                Parallelism::auto(),
            )
            .unwrap()
        })
    });
    let y = conv2d(&x, &w, Some(&b), spec).unwrap();
    c.bench_function("conv2d_backward_batch8_1thread", |bench| {
        bench.iter(|| {
            conv2d_backward_with(
                black_box(&x),
                black_box(&w),
                black_box(&y),
                spec,
                Parallelism::serial(),
            )
            .unwrap()
        })
    });
    c.bench_function("conv2d_backward_batch8_all_cores", |bench| {
        bench.iter(|| {
            conv2d_backward_with(
                black_box(&x),
                black_box(&w),
                black_box(&y),
                spec,
                Parallelism::auto(),
            )
            .unwrap()
        })
    });
}

fn bench_pixel_shuffle(c: &mut Criterion) {
    let x = rand_tensor(&[4, 32, 8, 8], 6);
    c.bench_function("pixel_shuffle_r2", |bench| {
        bench.iter(|| pixel_shuffle(black_box(&x), 2).unwrap())
    });
}

/// Best-of-batches ns/iter for `f`, measured with the same warmup →
/// calibrate → batch scheme as the criterion stand-in (kept local so the
/// JSON dump works identically under the real criterion crate).
fn measure_ns(mut f: impl FnMut()) -> f64 {
    const WARMUP: u32 = 3;
    const BUDGET: Duration = Duration::from_millis(400);
    for _ in 0..WARMUP {
        f();
    }
    let probe = Instant::now();
    f();
    let per_iter = probe.elapsed().as_secs_f64().max(1e-9);
    let batch = ((BUDGET.as_secs_f64() / 10.0 / per_iter) as u64).clamp(1, 1_000_000);
    let started = Instant::now();
    let mut best = f64::INFINITY;
    let mut batches = 0u32;
    while started.elapsed() < BUDGET && batches < 30 {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        let ns = t.elapsed().as_secs_f64() * 1e9 / batch as f64;
        if ns < best {
            best = ns;
        }
        batches += 1;
    }
    best
}

/// One record of the perf-trajectory dump.
struct JsonEntry {
    kernel: &'static str,
    shape: String,
    arm: &'static str,
    ns_per_iter: f64,
    speedup_vs_scalar: f64,
}

/// Measures the GEMM family and the hot elementwise sweeps on every
/// available arm and writes `BENCH_kernels.json` (override the path with
/// `RTE_BENCH_JSON`) so the perf trajectory is machine-trackable from PR
/// to PR.
///
/// Skipped when a bench filter is passed (`cargo bench --bench kernels
/// -- <name>`): a targeted run should neither pay the full sweep nor
/// overwrite the tracked trajectory with partial-context numbers.
fn emit_kernels_json(_c: &mut Criterion) {
    if std::env::args().skip(1).any(|a| !a.starts_with('-')) {
        println!("bench: filter given, skipping BENCH_kernels.json dump");
        return;
    }
    let (m, k, n) = (128, 729, 576);
    let a = rand_tensor(&[m * k], 7);
    let b = rand_tensor(&[k * n], 8);
    let len = 1 << 20;
    let x = rand_tensor(&[len], 9);
    let g = rand_tensor(&[len], 10);
    let mut entries: Vec<JsonEntry> = Vec::new();
    let gemm_shape = format!("{m}x{k}x{n}");
    let sweep_shape = format!("{len}");
    for arm in arms() {
        let mut out = vec![0.0f32; m * n];
        let cases: Vec<(&'static str, String, f64)> = vec![
            (
                "matmul",
                gemm_shape.clone(),
                measure_ns(|| {
                    simd::matmul_with(
                        arm,
                        black_box(a.data()),
                        black_box(b.data()),
                        m,
                        k,
                        n,
                        &mut out,
                    )
                }),
            ),
            (
                "matmul_tn",
                gemm_shape.clone(),
                measure_ns(|| {
                    simd::matmul_tn_with(
                        arm,
                        black_box(&a.data()[..k * m]),
                        black_box(b.data()),
                        m,
                        k,
                        n,
                        &mut out,
                    )
                }),
            ),
            (
                "matmul_nt_acc",
                gemm_shape.clone(),
                measure_ns(|| {
                    simd::matmul_nt_acc_with(
                        arm,
                        black_box(a.data()),
                        black_box(&b.data()[..n * k]),
                        m,
                        k,
                        n,
                        &mut out,
                    )
                }),
            ),
            ("axpy", sweep_shape.clone(), {
                let mut y = x.data().to_vec();
                measure_ns(|| simd::axpy_with(arm, 0.37, black_box(g.data()), &mut y))
            }),
            ("sigmoid", sweep_shape.clone(), {
                let mut buf = x.data().to_vec();
                measure_ns(|| {
                    buf.copy_from_slice(x.data());
                    simd::sigmoid_with(arm, black_box(&mut buf));
                })
            }),
            ("sum", sweep_shape.clone(), {
                measure_ns(|| {
                    black_box(simd::sum_with(arm, black_box(x.data())));
                })
            }),
        ];
        for (kernel, shape, ns) in cases {
            let baseline = entries
                .iter()
                .find(|e| e.kernel == kernel && e.arm == SimdBackend::Scalar.name())
                .map(|e| e.ns_per_iter)
                .unwrap_or(ns);
            entries.push(JsonEntry {
                kernel,
                shape,
                arm: arm.name(),
                ns_per_iter: ns,
                speedup_vs_scalar: baseline / ns,
            });
        }
    }
    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"kernel\": \"{}\", \"shape\": \"{}\", \"arm\": \"{}\", \
             \"ns_per_iter\": {:.1}, \"speedup_vs_scalar\": {:.3}}}{}\n",
            e.kernel,
            e.shape,
            e.arm,
            e.ns_per_iter,
            e.speedup_vs_scalar,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    // Default to the workspace root (cargo runs benches from the
    // package dir) so the tracked perf trajectory lives next to the
    // README; `RTE_BENCH_JSON` overrides.
    let path = rte_tensor::knobs::raw("RTE_BENCH_JSON").unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("bench: wrote perf trajectory to {path}"),
        Err(e) => eprintln!("bench: could not write {path}: {e}"),
    }
    for e in &entries {
        println!(
            "bench: json {:<14} {:>12} arm {:<6} {:>12.1} ns/iter  {:>6.2}x vs scalar",
            e.kernel, e.shape, e.arm, e.ns_per_iter, e.speedup_vs_scalar
        );
    }
}

criterion_group!(
    benches,
    bench_conv2d,
    bench_matmul,
    bench_matmul_arms,
    bench_elementwise_arms,
    bench_conv2d_parallel,
    bench_pixel_shuffle,
    emit_kernels_json
);
criterion_main!(benches);
