//! Criterion micro-benchmarks for the tensor kernels that dominate
//! training time (conv2d forward/backward on FLNet-shaped workloads,
//! matmul, pixel shuffle).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rte_tensor::conv::{
    conv2d, conv2d_backward, conv2d_backward_with, conv2d_with, pixel_shuffle, Conv2dSpec,
};
use rte_tensor::linalg::{matmul, matmul_naive};
use rte_tensor::parallel::Parallelism;
use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = Xoshiro256::seed_from(seed);
    Tensor::from_fn(dims, |_| rng.normal())
}

fn bench_conv2d(c: &mut Criterion) {
    // FLNet's input conv at scaled capacity: 6→16 channels, 9×9, 16×16.
    let x = rand_tensor(&[4, 6, 16, 16], 1);
    let w = rand_tensor(&[16, 6, 9, 9], 2);
    let b = rand_tensor(&[16], 3);
    let spec = Conv2dSpec::same(9);
    c.bench_function("conv2d_forward_flnet_input", |bench| {
        bench.iter(|| conv2d(black_box(&x), black_box(&w), Some(&b), spec).unwrap())
    });
    let y = conv2d(&x, &w, Some(&b), spec).unwrap();
    c.bench_function("conv2d_backward_flnet_input", |bench| {
        bench.iter(|| conv2d_backward(black_box(&x), black_box(&w), black_box(&y), spec).unwrap())
    });
}

fn bench_matmul(c: &mut Criterion) {
    // im2col-shaped product: (16 × 486) · (486 × 256).
    let a = rand_tensor(&[16 * 486], 4);
    let b = rand_tensor(&[486 * 256], 5);
    let mut out = vec![0.0f32; 16 * 256];
    c.bench_function("matmul_16x486x256", |bench| {
        bench.iter(|| {
            matmul(
                black_box(a.data()),
                black_box(b.data()),
                16,
                486,
                256,
                &mut out,
            );
            black_box(out[0])
        })
    });
}

fn bench_matmul_blocked_vs_naive(c: &mut Criterion) {
    // The acceptance workload: a 128×729×576 im2col-shaped product
    // (≈ 107 MFLOP), naive scalar i-k-j vs the register-blocked kernel.
    let (m, k, n) = (128, 729, 576);
    let a = rand_tensor(&[m * k], 7);
    let b = rand_tensor(&[k * n], 8);
    let mut out = vec![0.0f32; m * n];
    c.bench_function("matmul_naive_128x729x576", |bench| {
        bench.iter(|| {
            matmul_naive(black_box(a.data()), black_box(b.data()), m, k, n, &mut out);
            black_box(out[0])
        })
    });
    c.bench_function("matmul_blocked_128x729x576", |bench| {
        bench.iter(|| {
            matmul(black_box(a.data()), black_box(b.data()), m, k, n, &mut out);
            black_box(out[0])
        })
    });
}

fn bench_conv2d_parallel(c: &mut Criterion) {
    // Batch-parallel conv: a paper-shaped FLNet stage at batch 8, run with
    // 1 worker vs all cores. Identical outputs, different wall-clock.
    let x = rand_tensor(&[8, 6, 32, 32], 9);
    let w = rand_tensor(&[16, 6, 9, 9], 10);
    let b = rand_tensor(&[16], 11);
    let spec = Conv2dSpec::same(9);
    c.bench_function("conv2d_batch8_1thread", |bench| {
        bench.iter(|| {
            conv2d_with(
                black_box(&x),
                black_box(&w),
                Some(&b),
                spec,
                Parallelism::serial(),
            )
            .unwrap()
        })
    });
    c.bench_function("conv2d_batch8_all_cores", |bench| {
        bench.iter(|| {
            conv2d_with(
                black_box(&x),
                black_box(&w),
                Some(&b),
                spec,
                Parallelism::auto(),
            )
            .unwrap()
        })
    });
    let y = conv2d(&x, &w, Some(&b), spec).unwrap();
    c.bench_function("conv2d_backward_batch8_1thread", |bench| {
        bench.iter(|| {
            conv2d_backward_with(
                black_box(&x),
                black_box(&w),
                black_box(&y),
                spec,
                Parallelism::serial(),
            )
            .unwrap()
        })
    });
    c.bench_function("conv2d_backward_batch8_all_cores", |bench| {
        bench.iter(|| {
            conv2d_backward_with(
                black_box(&x),
                black_box(&w),
                black_box(&y),
                spec,
                Parallelism::auto(),
            )
            .unwrap()
        })
    });
}

fn bench_pixel_shuffle(c: &mut Criterion) {
    let x = rand_tensor(&[4, 32, 8, 8], 6);
    c.bench_function("pixel_shuffle_r2", |bench| {
        bench.iter(|| pixel_shuffle(black_box(&x), 2).unwrap())
    });
}

criterion_group!(
    benches,
    bench_conv2d,
    bench_matmul,
    bench_matmul_blocked_vs_naive,
    bench_conv2d_parallel,
    bench_pixel_shuffle
);
criterion_main!(benches);
