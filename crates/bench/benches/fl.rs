//! Criterion micro-benchmarks for the federated-learning plumbing:
//! state-dict aggregation, ROC AUC, one client training step, the
//! parallel round loop, the parallel nine-client evaluator (each
//! 1 thread vs all cores), and an end-to-end FedProx experiment per
//! SIMD arm — outcomes are bit-identical across thread counts *and*
//! arms, only wall-clock differs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rte_tensor::simd::{self, SimdBackend};

use rte_fed::params::weighted_average;
use rte_fed::{
    methods, Client, ClientSet, Evaluator, FedConfig, LocalTrainer, Method, ModelFactory,
    Parallelism,
};
use rte_metrics::roc_auc;
use rte_nn::models::{FlNet, FlNetConfig};
use rte_nn::state_dict;
use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

fn model(seed: u64) -> FlNet {
    let mut rng = Xoshiro256::seed_from(seed);
    FlNet::new(
        FlNetConfig {
            in_channels: 6,
            hidden: 16,
            kernel: 9,
            depth: 2,
        },
        &mut rng,
    )
}

fn bench_aggregation(c: &mut Criterion) {
    // Nine clients' FLNet state dicts, weighted like Table 2.
    let dicts: Vec<_> = (0..9).map(|k| state_dict(&mut model(k))).collect();
    let weights = [
        462.0, 231.0, 231.0, 812.0, 812.0, 697.0, 656.0, 742.0, 175.0,
    ];
    c.bench_function("weighted_average_9_clients", |b| {
        b.iter(|| {
            let refs: Vec<_> = dicts
                .iter()
                .zip(weights.iter())
                .map(|(d, &w)| (d, w))
                .collect();
            weighted_average(black_box(&refs)).unwrap()
        })
    });
}

fn bench_roc_auc(c: &mut Criterion) {
    let mut rng = Xoshiro256::seed_from(1);
    let n = 16 * 16 * 64; // one client's test tiles at scaled counts
    let scores: Vec<f32> = (0..n).map(|_| rng.uniform()).collect();
    let labels: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.15)).collect();
    c.bench_function("roc_auc_16k_tiles", |b| {
        b.iter(|| roc_auc(black_box(&scores), black_box(&labels)).unwrap())
    });
}

fn bench_local_step(c: &mut Criterion) {
    let mut rng = Xoshiro256::seed_from(2);
    let x = Tensor::from_fn(&[8, 6, 16, 16], |_| rng.uniform());
    let y = Tensor::from_fn(
        &[8, 1, 16, 16],
        |_| if rng.bernoulli(0.15) { 1.0 } else { 0.0 },
    );
    let data = ClientSet::new(x, y).unwrap();
    let trainer = LocalTrainer::new(2e-3, 1e-5, 1e-4, 4);
    c.bench_function("local_train_step_flnet", |b| {
        let mut net = model(3);
        let reference = state_dict(&mut net);
        let mut step_rng = Xoshiro256::seed_from(4);
        b.iter(|| {
            trainer
                .train(&mut net, &data, Some(&reference), 1, &mut step_rng)
                .unwrap()
        })
    });
}

/// Nine synthetic clients shaped like the Table 2 fleet (8×8 tiles keep
/// the bench runtime sane while still dominating in conv time).
fn synthetic_clients(n: usize) -> Vec<Client> {
    (0..n)
        .map(|k| {
            let make = |seed: u64, count: usize| {
                let mut rng = Xoshiro256::seed_from(seed);
                let x = Tensor::from_fn(&[count, 6, 8, 8], |_| rng.uniform());
                let y = Tensor::from_fn(&[count, 1, 8, 8], |_| {
                    if rng.bernoulli(0.15) {
                        1.0
                    } else {
                        0.0
                    }
                });
                ClientSet::new(x, y).unwrap()
            };
            Client::new(k + 1, make(1000 + k as u64, 8), make(2000 + k as u64, 4))
        })
        .collect()
}

fn bench_parallel_rounds(c: &mut Criterion) {
    // One FedProx experiment (2 rounds × 9 clients × 4 local steps), run
    // serial vs all-cores. The outcomes are bit-identical; only the
    // wall-clock differs — this is the headline speedup of the parallel
    // round loop.
    let clients = synthetic_clients(9);
    let factory: ModelFactory = Box::new(|seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        Box::new(FlNet::new(
            FlNetConfig {
                in_channels: 6,
                hidden: 8,
                kernel: 3,
                depth: 2,
            },
            &mut rng,
        ))
    });
    let mut config = FedConfig::scaled();
    config.rounds = 2;
    config.local_steps = 4;
    config.batch_size = 4;
    for (name, par) in [
        ("fedprox_2rounds_9clients_1thread", Parallelism::serial()),
        ("fedprox_2rounds_9clients_all_cores", Parallelism::auto()),
    ] {
        config.parallelism = par;
        let cfg = config.clone();
        c.bench_function(name, |b| {
            b.iter(|| {
                methods::run_method(Method::FedProx, black_box(&clients), &factory, &cfg).unwrap()
            })
        });
    }
}

fn bench_parallel_eval(c: &mut Criterion) {
    // The nine-client generalized evaluation every round records: one
    // shared state dict scored on every client's private test split.
    // Per-client work is independent, so this scales with cores while
    // staying bit-identical.
    let clients = synthetic_clients(9);
    let factory: ModelFactory = Box::new(|seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        Box::new(FlNet::new(
            FlNetConfig {
                in_channels: 6,
                hidden: 8,
                kernel: 3,
                depth: 2,
            },
            &mut rng,
        ))
    });
    let global = state_dict(factory(7).as_mut());
    for (name, par) in [
        ("eval_9_clients_1thread", Parallelism::serial()),
        ("eval_9_clients_all_cores", Parallelism::auto()),
    ] {
        let evaluator = Evaluator::new(par, 16);
        c.bench_function(name, |b| {
            b.iter(|| {
                evaluator
                    .eval_global(&factory, 7, black_box(&clients), black_box(&global))
                    .unwrap()
            })
        });
    }
}

fn bench_simd_arms_round(c: &mut Criterion) {
    // The tentpole's end-to-end claim: one FedProx experiment
    // (2 rounds × 9 clients × 4 local steps, serial threading so the
    // kernel arm is the only variable) per SIMD arm. The MethodOutcome
    // is bit-identical across arms (pinned by tests/simd_determinism.rs);
    // the wall-clock gap here is the whole-round speedup.
    let clients = synthetic_clients(9);
    let factory: ModelFactory = Box::new(|seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        Box::new(FlNet::new(
            FlNetConfig {
                in_channels: 6,
                hidden: 8,
                kernel: 3,
                depth: 2,
            },
            &mut rng,
        ))
    });
    let mut config = FedConfig::scaled();
    config.rounds = 2;
    config.local_steps = 4;
    config.batch_size = 4;
    config.parallelism = Parallelism::serial();
    let before = simd::global();
    let mut arms = vec![SimdBackend::Scalar];
    if SimdBackend::detect() == SimdBackend::Avx2 {
        arms.push(SimdBackend::Avx2);
    }
    for arm in arms {
        simd::set_global(arm);
        c.bench_function(&format!("fedprox_round_simd_{arm}"), |b| {
            b.iter(|| {
                methods::run_method(Method::FedProx, black_box(&clients), &factory, &config)
                    .unwrap()
            })
        });
    }
    simd::set_global(before);
}

criterion_group!(
    benches,
    bench_aggregation,
    bench_roc_auc,
    bench_local_step,
    bench_parallel_rounds,
    bench_parallel_eval,
    bench_simd_arms_round
);
criterion_main!(benches);
