// Escape-hatch bad case: an allow comment without the mandatory
// reason suppresses nothing and is itself reported.
pub fn stamp() -> std::time::Instant {
    // rte-lint: allow(L4)
    std::time::Instant::now()
}
