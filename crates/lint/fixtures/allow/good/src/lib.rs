// Escape-hatch good case (a): a reasoned allow comment at the site.
pub fn stamp() -> std::time::Instant {
    // rte-lint: allow(L4) demo timer for the fixture suite; not part of any table output
    std::time::Instant::now()
}
