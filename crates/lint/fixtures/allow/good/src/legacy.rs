// Escape-hatch good case (b): grandfathered via lint.toml at this
// fixture root.
pub fn legacy_knob() -> Option<String> {
    std::env::var("LEGACY_KNOB").ok()
}
