// L5 bad case: ad-hoc thread creation outside rte_tensor::parallel.
pub fn fire_and_forget() {
    std::thread::spawn(|| {});
}
