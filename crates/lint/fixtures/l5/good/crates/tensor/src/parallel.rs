// L5 good case: the parallel module is the one place threads are made.
pub fn scoped_map(n: usize) -> Vec<usize> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n).map(|i| scope.spawn(move || i)).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}
