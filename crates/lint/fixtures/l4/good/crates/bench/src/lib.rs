// L4 good case: timing inside the bench crate is the point.
pub fn elapsed_ns(f: impl FnOnce()) -> u128 {
    let start = std::time::Instant::now();
    f();
    start.elapsed().as_nanos()
}
