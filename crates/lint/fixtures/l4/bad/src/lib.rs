// L4 bad case: wall-clock read in library code.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

// L4 bad case: ambient entropy — each of these seeds per-process
// randomness that can never replay.
pub fn hasher() -> RandomState {
    RandomState::new()
}

pub fn ambient_seed() -> u64 {
    thread_rng().next_u64()
}

pub fn os_rng(buf: &mut [u8]) {
    getrandom(buf).unwrap();
}

pub fn entropy_rng() -> StdRng {
    StdRng::from_entropy()
}
