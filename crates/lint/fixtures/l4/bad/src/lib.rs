// L4 bad case: wall-clock read in library code.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
