// L7 good case: the same kernel variant, exercised by the suite.
pub struct SimdBackend;

pub fn frobnicate_with(backend: SimdBackend, x: &mut [f32]) {
    let _ = backend;
    for v in x.iter_mut() {
        *v += 1.0;
    }
}
