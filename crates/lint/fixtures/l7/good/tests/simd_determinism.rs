// Mentions frobnicate_with, satisfying the coverage tripwire.
#[test]
fn frobnicate_bitwise() {
    // frobnicate_with(SimdBackend, …) compared across arms here.
}
