// The suite exists but does not exercise frobnicate: L7 must fire.
#[test]
fn unrelated() {}
