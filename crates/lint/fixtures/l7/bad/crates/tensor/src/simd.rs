// L7 bad case: a dispatched kernel variant the determinism suite never
// mentions.
pub struct SimdBackend;

pub fn frobnicate_with(backend: SimdBackend, x: &mut [f32]) {
    let _ = backend;
    for v in x.iter_mut() {
        *v += 1.0;
    }
}
