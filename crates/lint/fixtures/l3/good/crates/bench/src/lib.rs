// L3 good case (b): bench crates may read the environment (their
// output is measurement, not experiment bits).
pub fn json_path() -> String {
    std::env::var("RTE_BENCH_JSON").unwrap_or_else(|_| "BENCH.json".into())
}
