// L3 good case (a): the sanctioned knob module owns the process
// environment.
pub fn string(name: &str) -> Option<String> {
    std::env::var(name).ok()
}
