// L3 bad case: a raw environment read outside the knob module.
pub fn threads() -> usize {
    std::env::var("RTE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
