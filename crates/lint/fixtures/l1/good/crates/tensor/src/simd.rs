// L1 good case: every site carries an immediately preceding SAFETY
// comment (or a `# Safety` doc section) in the allowlisted file.

// SAFETY: only reachable after is_x86_feature_detected confirmed AVX2.
unsafe fn load_lane() {}

/// Dispatch wrapper.
///
/// # Safety
///
/// The caller must have verified AVX2 support.
unsafe fn dispatch_lane() {
    // SAFETY: `dispatch_lane`'s contract requires AVX2; forwarding
    // preserves it.
    unsafe { load_lane() }
}

fn call() {
    #[allow(unused)]
    // SAFETY: the scalar fallback was feature-checked by the caller.
    let f = || unsafe { load_lane() };
}
