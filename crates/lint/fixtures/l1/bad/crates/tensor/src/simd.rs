// L1 bad case (b): `unsafe` in the allowlisted file but without an
// immediately preceding SAFETY comment.

unsafe fn load_lane() {}
