// L1 bad case (a): `unsafe` in a file outside the simd allowlist.
pub fn first(x: &[f32]) -> f32 {
    unsafe { *x.get_unchecked(0) }
}
