// L2 bad case: iterating an unordered hash container in library code.
use std::collections::HashMap;

pub fn sum_values(totals: &HashMap<String, f32>) -> f32 {
    let mut sum = 0.0;
    for v in totals.values() {
        sum += v;
    }
    sum
}

pub fn drain_all(mut scratch: HashMap<u32, f32>) -> usize {
    scratch.drain().count()
}
