// L2 good case: keyed lookup on a hash container is fine, iteration in
// a #[cfg(test)] module is fine, and BTreeMap iteration is ordered.
use std::collections::{BTreeMap, HashMap};

pub fn lookup(cache: &HashMap<String, f32>, key: &str) -> Option<f32> {
    cache.get(key).copied()
}

pub fn sum_ordered(totals: &BTreeMap<String, f32>) -> f32 {
    totals.values().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn order_free_assertion() {
        let seen: HashSet<u32> = [1, 2, 3].into_iter().collect();
        assert_eq!(seen.iter().count(), 3);
    }
}
