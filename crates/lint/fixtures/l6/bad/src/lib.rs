// L6 bad case: FMA contraction without an opt-out region.
pub fn fused(a: f32, b: f32, c: f32) -> f32 {
    a.mul_add(b, c)
}
