// L6 good case: the contraction is fenced inside an explicitly tagged
// different-bits region.

// DETERMINISM-OPT-OUT: fast-mode kernel; tables agree to 1e-5, never bitwise.
pub fn fused_fast(a: f32, b: f32, c: f32) -> f32 {
    a.mul_add(b, c)
}
// DETERMINISM-OPT-IN

pub fn exact(a: f32, b: f32, c: f32) -> f32 {
    a * b + c
}
