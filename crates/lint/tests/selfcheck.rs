//! Self-check: the real workspace must lint clean, and the
//! grandfathered allowlist must never grow.

use std::path::{Path, PathBuf};

use rte_lint::{check_root, parse_allowlist};

/// The workspace `lint.toml` entry ceiling. Entries may only be
/// *removed* over time; any PR that needs a new exception must fix the
/// violation instead (or argue for a site-level allow comment with a
/// reason, which is visible in review).
const ALLOWLIST_CEILING: usize = 0;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint is two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_lints_clean() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").is_file() && root.join("docs/ARCHITECTURE.md").is_file(),
        "workspace root detection broke: {}",
        root.display()
    );
    let report = check_root(&root).expect("workspace scan");
    assert!(
        report.findings.is_empty(),
        "the workspace must satisfy its own determinism lints; findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The scan must actually cover the tree (regression guard against a
    // walking bug that silently skips everything and reports "clean").
    assert!(
        report.files_scanned > 80,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

#[test]
fn allowlist_is_non_growing() {
    let root = workspace_root();
    let entries = match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(src) => parse_allowlist(&src).expect("workspace lint.toml parses"),
        Err(_) => Vec::new(),
    };
    // `<=` (not `==`): the ceiling only ever moves down, so a PR that
    // *removes* grandfathered entries must pass without editing this
    // test. With the ceiling at 0 the comparison is degenerate, hence
    // the clippy allow.
    #[allow(clippy::absurd_extreme_comparisons)]
    let within_ceiling = entries.len() <= ALLOWLIST_CEILING;
    assert!(
        within_ceiling,
        "lint.toml grew to {} entries (ceiling {ALLOWLIST_CEILING}); fix the violation \
         instead of grandfathering it",
        entries.len()
    );
}
