//! Fixture suite: one minimal bad + good tree per rule L1–L7, asserted
//! through the real binary (exit code + `--json` findings) and the
//! library API, plus the escape-hatch mechanisms (site allow comments
//! and the `lint.toml` grandfathering file).

use std::path::{Path, PathBuf};
use std::process::Command;

use rte_lint::{check_root, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Runs the compiled `rte-lint` binary against a fixture root and
/// returns `(exit_code, stdout)`.
fn run_binary(root: &Path, json: bool) -> (i32, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_rte-lint"));
    cmd.arg("check").arg("--root").arg(root);
    if json {
        cmd.arg("--json");
    }
    let out = cmd.output().expect("spawn rte-lint");
    (
        out.status.code().expect("exit code"),
        String::from_utf8(out.stdout).expect("utf8 stdout"),
    )
}

/// Asserts the bad tree yields exactly `expected` findings of `rule`
/// (binary exit 1, `[L#]` in the JSON) and the good tree is clean
/// (exit 0).
fn assert_rule(rule: Rule, expected_bad: usize) {
    let name = rule.code().to_lowercase();
    let bad = fixture(&format!("{name}/bad"));
    let good = fixture(&format!("{name}/good"));

    let report = check_root(&bad).expect("scan bad fixture");
    assert_eq!(
        report.findings.len(),
        expected_bad,
        "{rule} bad fixture findings: {:#?}",
        report.findings
    );
    assert!(
        report.findings.iter().all(|f| f.rule == rule),
        "{rule} bad fixture has off-rule findings: {:#?}",
        report.findings
    );

    let (code, json) = run_binary(&bad, true);
    assert_eq!(code, 1, "{rule} bad fixture must exit 1");
    assert!(
        json.contains(&format!("\"rule\": \"{rule}\"")),
        "{rule} missing from JSON: {json}"
    );
    assert!(
        json.contains(&format!("\"count\": {expected_bad}")),
        "{json}"
    );

    let report = check_root(&good).expect("scan good fixture");
    assert_eq!(
        report.findings.len(),
        0,
        "{rule} good fixture must be clean: {:#?}",
        report.findings
    );
    let (code, _) = run_binary(&good, false);
    assert_eq!(code, 0, "{rule} good fixture must exit 0");
}

#[test]
fn l1_unsafe_annotation_and_allowlist() {
    assert_rule(Rule::L1, 2);
    // Both failure modes are distinct: one out-of-allowlist file, one
    // missing SAFETY comment inside the allowlisted file.
    let report = check_root(&fixture("l1/bad")).unwrap();
    assert!(report.findings.iter().any(|f| f.file == "src/lib.rs"));
    assert!(report
        .findings
        .iter()
        .any(|f| f.file == "crates/tensor/src/simd.rs"));
}

#[test]
fn l2_hash_iteration() {
    assert_rule(Rule::L2, 2);
}

#[test]
fn l3_env_reads() {
    assert_rule(Rule::L3, 1);
}

#[test]
fn l4_wall_clock() {
    assert_rule(Rule::L4, 8);
}

#[test]
fn l5_thread_creation() {
    assert_rule(Rule::L5, 1);
}

#[test]
fn l6_fma_contraction() {
    assert_rule(Rule::L6, 1);
}

#[test]
fn l7_kernel_coverage_tripwire() {
    assert_rule(Rule::L7, 1);
    let report = check_root(&fixture("l7/bad")).unwrap();
    assert!(
        report.findings[0].message.contains("frobnicate_with"),
        "{:?}",
        report.findings[0]
    );
}

#[test]
fn allow_comment_requires_reason() {
    // A reasoned site comment and a lint.toml entry both suppress; a
    // reason-less comment suppresses nothing and is itself reported.
    let report = check_root(&fixture("allow/good")).unwrap();
    assert_eq!(report.findings.len(), 0, "{:#?}", report.findings);
    assert_eq!(report.allowlist_entries, 1);

    let report = check_root(&fixture("allow/bad")).unwrap();
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    assert!(
        report.findings[0].message.contains("mandatory"),
        "{:?}",
        report.findings[0]
    );
    let (code, _) = run_binary(&fixture("allow/bad"), false);
    assert_eq!(code, 1);
}

#[test]
fn human_output_format_is_file_line_rule() {
    let (_, stdout) = run_binary(&fixture("l6/bad"), false);
    let first = stdout.lines().next().expect("one finding line");
    assert!(
        first.starts_with("src/lib.rs:3: [L6] "),
        "unexpected finding format: {first}"
    );
}

#[test]
fn usage_errors_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_rte-lint"))
        .arg("frobnicate")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(env!("CARGO_BIN_EXE_rte-lint"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
