//! `rte-lint`: a workspace static-analysis pass that mechanically
//! enforces the determinism contract of `docs/ARCHITECTURE.md`.
//!
//! Every knob in this repository — `RTE_THREADS`, `RTE_SIMD`, streaming
//! chunk sizes — is documented as *bit-neutral*, and the integration
//! suites pin that bitwise. This crate closes the gap between the tests
//! and the contract: the classes of bug the tests can only catch after
//! the fact (an unordered map reduction, a stray environment read, an
//! FMA-contracted kernel expression) are *lintable*, so CI rejects them
//! before they can produce a schedule-dependent bit.
//!
//! The scanner is deliberately dependency-free and handwritten at the
//! line/token level (no `syn` — the workspace builds offline). It
//! strips comments and string literals with a small state machine, then
//! applies the rule set below to the remaining code text.
//!
//! # Rules
//!
//! | rule | contract | check |
//! |------|----------|-------|
//! | L1 | rule 5 (SIMD/mmap soundness) | `unsafe` only in `crates/tensor/src/simd.rs` and `crates/eda/src/mmap.rs`, and every site immediately preceded by a `// SAFETY:` comment |
//! | L2 | rule 2 (fixed-order reduction) | no iteration over `HashMap`/`HashSet` in non-test code (keyed lookup is fine; iteration order is not) |
//! | L3 | knob discipline | no raw `std::env::var` outside the sanctioned knob module (`crates/tensor/src/knobs.rs`) and `crates/bench` |
//! | L4 | bit-neutral outputs | no `Instant::now`/`SystemTime` in library crates (`crates/bench`, vendored crates, and the sanctioned rule-8 opt-out `crates/net/src/clock.rs` exempt) |
//! | L5 | rule 2 (one schedule) | no thread creation outside `rte_tensor::parallel` (plus the sanctioned wall-clock fan-in in `crates/net/src/transport.rs`) |
//! | L6 | rule 5 (no contraction) | no `mul_add`/FMA intrinsics outside a `// DETERMINISM-OPT-OUT:` region |
//! | L7 | coverage tripwire | every `pub fn *_with(backend: SimdBackend, …)` kernel variant must be exercised by `tests/simd_determinism.rs` |
//!
//! # Escape hatches
//!
//! A finding can be suppressed at the site with a magic comment — the
//! reason is mandatory:
//!
//! ```text
//! // rte-lint: allow(L2) scratch map feeding a sort, order never observed
//! ```
//!
//! or grandfathered in the checked-in `lint.toml` allowlist at the
//! workspace root (rule + path + reason). The self-check test asserts
//! the allowlist never grows.

// The lint tool itself must satisfy its own rules: pure safe Rust.
#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// The determinism lint a finding belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Un-annotated or out-of-allowlist `unsafe`.
    L1,
    /// Iteration over an unordered hash container.
    L2,
    /// Raw environment read outside the knob module.
    L3,
    /// Wall-clock read in library code.
    L4,
    /// Thread creation outside the parallel subsystem.
    L5,
    /// FMA-contracted float expression outside an opt-out region.
    L6,
    /// Kernel `_with` variant missing from the determinism suite.
    L7,
}

impl Rule {
    /// All rules, in order.
    pub const ALL: [Rule; 7] = [
        Rule::L1,
        Rule::L2,
        Rule::L3,
        Rule::L4,
        Rule::L5,
        Rule::L6,
        Rule::L7,
    ];

    /// Stable code used in findings and allowlists (`"L1"` … `"L7"`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
            Rule::L7 => "L7",
        }
    }

    /// Parses a rule code (`"L1"` … `"L7"`).
    pub fn from_code(code: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.code() == code)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the scanned root, with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Result of a full workspace check.
#[derive(Debug)]
pub struct CheckReport {
    /// Surviving findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `[[allow]]` entries in `lint.toml` (0 if absent).
    pub allowlist_entries: usize,
}

// ---------------------------------------------------------------------
// Source scanning: comment/string stripping.
// ---------------------------------------------------------------------

/// One physical source line, split into executable code text (string
/// literal *contents* blanked, comments removed) and comment text.
#[derive(Debug, Default, Clone)]
struct ScanLine {
    code: String,
    comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ScanState {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

/// Splits `src` into per-line code/comment texts. String and char
/// literal contents are replaced by blanks (delimiters kept) so token
/// searches never match inside literals; comments (line, doc and
/// nested block) are routed to the comment channel so SAFETY / allow
/// markers stay inspectable.
fn scan_source(src: &str) -> Vec<ScanLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut line = ScanLine::default();
    let mut state = ScanState::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut line));
            if state == ScanState::LineComment {
                state = ScanState::Code;
            }
            i += 1;
            continue;
        }
        match state {
            ScanState::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = ScanState::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = ScanState::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    line.code.push('"');
                    state = ScanState::Str;
                    i += 1;
                    continue;
                }
                // Raw (and raw-byte) string literals: r"…", r#"…"#, br"…".
                if (c == 'r' || c == 'b') && !prev_is_word(&line.code) {
                    let start = if c == 'b' && next == Some('r') {
                        i + 2
                    } else {
                        i + 1
                    };
                    if c == 'r' || (c == 'b' && next == Some('r')) {
                        let mut hashes = 0usize;
                        while chars.get(start + hashes) == Some(&'#') {
                            hashes += 1;
                        }
                        if chars.get(start + hashes) == Some(&'"') {
                            for &rc in &chars[i..=start + hashes] {
                                line.code.push(rc);
                            }
                            state = ScanState::RawStr(hashes as u32);
                            i = start + hashes + 1;
                            continue;
                        }
                    }
                }
                if c == '\'' {
                    // Disambiguate char literals from lifetimes: a
                    // lifetime is `'ident` not followed by a closing
                    // quote.
                    let is_lifetime = next.map(|n| n.is_alphabetic() || n == '_').unwrap_or(false)
                        && chars.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        line.code.push(c);
                        i += 1;
                        continue;
                    }
                    line.code.push('\'');
                    state = ScanState::CharLit;
                    i += 1;
                    continue;
                }
                line.code.push(c);
                i += 1;
            }
            ScanState::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            ScanState::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = ScanState::BlockComment(depth + 1);
                    line.comment.push_str("/*");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        ScanState::Code
                    } else {
                        ScanState::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            ScanState::Str => {
                if c == '\\' {
                    line.code.push(' ');
                    if chars.get(i + 1).is_some() && chars[i + 1] != '\n' {
                        line.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    line.code.push('"');
                    state = ScanState::Code;
                    i += 1;
                } else {
                    line.code.push(' ');
                    i += 1;
                }
            }
            ScanState::RawStr(hashes) => {
                if c == '"' {
                    let h = hashes as usize;
                    let closed = (0..h).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                    if closed {
                        line.code.push('"');
                        for _ in 0..h {
                            line.code.push('#');
                        }
                        state = ScanState::Code;
                        i += 1 + h;
                        continue;
                    }
                }
                line.code.push(' ');
                i += 1;
            }
            ScanState::CharLit => {
                if c == '\\' {
                    line.code.push(' ');
                    if chars.get(i + 1).is_some() && chars[i + 1] != '\n' {
                        line.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    line.code.push('\'');
                    state = ScanState::Code;
                    i += 1;
                } else {
                    line.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !line.code.is_empty() || !line.comment.is_empty() {
        lines.push(line);
    }
    lines
}

fn prev_is_word(code: &str) -> bool {
    code.chars().next_back().map(is_word_char).unwrap_or(false)
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True when `code` contains `token` delimited by non-word characters
/// on both sides (so `unsafe_code` never matches a search for the bare
/// keyword).
fn has_token(code: &str, token: &str) -> bool {
    find_token(code, token).is_some()
}

/// Byte offset of the first word-boundary occurrence of `token`.
fn find_token(code: &str, token: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let abs = from + pos;
        let before_ok = abs == 0 || !is_word_char(code[..abs].chars().next_back().unwrap());
        let after = code[abs + token.len()..].chars().next();
        let after_ok = after.map(|c| !is_word_char(c)).unwrap_or(true);
        if before_ok && after_ok {
            return Some(abs);
        }
        from = abs + token.len().max(1);
    }
    None
}

// ---------------------------------------------------------------------
// Per-file structure: test regions, opt-out regions, allow comments.
// ---------------------------------------------------------------------

/// Marks lines inside `#[cfg(test)] mod … { … }` regions so rules that
/// exempt test code can skip them.
fn test_regions(lines: &[ScanLine]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut pending_cfg = false;
    let mut depth: i64 = 0;
    let mut active = false;
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.trim();
        if active {
            in_test[idx] = true;
            depth += braces(code);
            if depth <= 0 {
                active = false;
            }
            continue;
        }
        if code.is_empty() {
            continue;
        }
        if code.contains("cfg(test)") && code.starts_with("#[") {
            pending_cfg = true;
            continue;
        }
        if pending_cfg {
            if code.starts_with("#[") || code.starts_with("#![") {
                continue; // further attributes between cfg and the item
            }
            if code.starts_with("mod ") || code.starts_with("pub mod ") {
                active = true;
                in_test[idx] = true;
                depth = braces(code);
                if depth <= 0 && code.contains('{') {
                    active = false;
                }
                pending_cfg = false;
                continue;
            }
            // `#[cfg(test)]` on a non-module item (a lone helper or
            // `use`): treat just that item's first line as test code.
            in_test[idx] = true;
            pending_cfg = false;
        }
    }
    in_test
}

fn braces(code: &str) -> i64 {
    let mut n = 0i64;
    for c in code.chars() {
        match c {
            '{' => n += 1,
            '}' => n -= 1,
            _ => {}
        }
    }
    n
}

/// Marks lines inside `// DETERMINISM-OPT-OUT:` … `// DETERMINISM-OPT-IN`
/// regions (L6's sanctioned escape for explicitly different-bits fast
/// paths). Returns the per-line flag plus findings for malformed
/// markers (a reason is mandatory on the opening marker).
fn optout_regions(lines: &[ScanLine], file: &str) -> (Vec<bool>, Vec<Finding>) {
    let mut flags = vec![false; lines.len()];
    let mut findings = Vec::new();
    let mut active = false;
    for (idx, line) in lines.iter().enumerate() {
        if let Some(pos) = line.comment.find("DETERMINISM-OPT-OUT:") {
            let reason = line.comment[pos + "DETERMINISM-OPT-OUT:".len()..].trim();
            if reason.is_empty() {
                findings.push(Finding {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: Rule::L6,
                    message: "DETERMINISM-OPT-OUT marker without a reason \
                              (state why different bits are acceptable here)"
                        .into(),
                });
            }
            active = true;
        }
        flags[idx] = active;
        if line.comment.contains("DETERMINISM-OPT-IN") {
            active = false;
        }
    }
    (flags, findings)
}

/// A parsed `// rte-lint: allow(L2, L3) reason…` comment.
#[derive(Debug)]
struct AllowComment {
    rules: Vec<Rule>,
    has_reason: bool,
}

fn parse_allow_comment(comment: &str) -> Option<AllowComment> {
    let pos = comment.find("rte-lint:")?;
    let rest = comment[pos + "rte-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<Rule> = rest[..close]
        .split(',')
        .filter_map(|s| Rule::from_code(s.trim()))
        .collect();
    if rules.is_empty() {
        return None;
    }
    let reason = rest[close + 1..]
        .trim_start_matches([':', '—', '-', ' '])
        .trim();
    Some(AllowComment {
        rules,
        has_reason: !reason.is_empty(),
    })
}

// ---------------------------------------------------------------------
// lint.toml allowlist.
// ---------------------------------------------------------------------

/// One grandfathered `[[allow]]` entry from `lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The suppressed rule.
    pub rule: Rule,
    /// Root-relative file path the suppression applies to.
    pub path: String,
    /// Mandatory justification.
    pub reason: String,
}

/// Parses the restricted `lint.toml` dialect: `[[allow]]` tables with
/// `rule`/`path`/`reason` string keys, `#` comments and blank lines.
///
/// # Errors
///
/// Returns a description of the first malformed line, unknown key,
/// unknown rule code, or incomplete entry.
pub fn parse_allowlist(src: &str) -> Result<Vec<AllowEntry>, String> {
    #[derive(Default)]
    struct Partial {
        rule: Option<Rule>,
        path: Option<String>,
        reason: Option<String>,
    }
    fn seal(p: Partial, at: usize) -> Result<AllowEntry, String> {
        let entry = AllowEntry {
            rule: p.rule.ok_or(format!(
                "lint.toml entry ending at line {at}: missing `rule`"
            ))?,
            path: p.path.ok_or(format!(
                "lint.toml entry ending at line {at}: missing `path`"
            ))?,
            reason: p.reason.ok_or(format!(
                "lint.toml entry ending at line {at}: missing `reason`"
            ))?,
        };
        if entry.reason.trim().is_empty() {
            return Err(format!(
                "lint.toml entry ending at line {at}: empty `reason`"
            ));
        }
        Ok(entry)
    }
    let mut entries = Vec::new();
    let mut current: Option<Partial> = None;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = current.take() {
                entries.push(seal(p, lineno)?);
            }
            current = Some(Partial::default());
            continue;
        }
        let (key, value) = line.split_once('=').ok_or(format!(
            "lint.toml line {lineno}: expected `key = \"value\"`"
        ))?;
        let value = value
            .trim()
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or(format!(
                "lint.toml line {lineno}: value must be a quoted string"
            ))?;
        let p = current.as_mut().ok_or(format!(
            "lint.toml line {lineno}: key outside an [[allow]] table"
        ))?;
        match key.trim() {
            "rule" => {
                p.rule = Some(
                    Rule::from_code(value)
                        .ok_or(format!("lint.toml line {lineno}: unknown rule {value:?}"))?,
                );
            }
            "path" => p.path = Some(value.to_string()),
            "reason" => p.reason = Some(value.to_string()),
            other => return Err(format!("lint.toml line {lineno}: unknown key {other:?}")),
        }
    }
    if let Some(p) = current.take() {
        entries.push(seal(p, src.lines().count())?);
    }
    Ok(entries)
}

// ---------------------------------------------------------------------
// Rules L1–L6 (per-file).
// ---------------------------------------------------------------------

/// The only files allowed to contain `unsafe`: the SIMD intrinsic arm
/// and the POSIX mmap shim behind the memory-mapped shard reader.
const UNSAFE_ALLOWLIST: [&str; 2] = ["crates/tensor/src/simd.rs", "crates/eda/src/mmap.rs"];
/// The single sanctioned raw-environment-read module.
const KNOB_MODULE: &str = "crates/tensor/src/knobs.rs";
/// The thread-pool module allowed to create threads.
const PARALLEL_MODULE: &str = "crates/tensor/src/parallel.rs";
/// L4's sanctioned wall-clock module: `rte_net::clock::WallClock`, the
/// documented opt-out from determinism rule 8 (wall-clock async).
const WALL_CLOCK_MODULE: &str = "crates/net/src/clock.rs";
/// L5's sanctioned fan-in module: `rte_net::transport::FanIn` spawns one
/// reader thread per link, used only by the wall-clock async opt-out.
const FAN_IN_MODULE: &str = "crates/net/src/transport.rs";

struct FileContext<'a> {
    rel: &'a str,
    lines: &'a [ScanLine],
    in_test: &'a [bool],
    in_optout: &'a [bool],
    /// Whole file is test/bench/example scaffolding (under `tests/`,
    /// `benches/` or `examples/`).
    test_file: bool,
    bench_crate: bool,
}

impl FileContext<'_> {
    fn is_test(&self, idx: usize) -> bool {
        self.test_file || self.in_test[idx]
    }
}

/// True when the contiguous run of comment-only / attribute lines
/// directly above `idx` (or the line's own comment) contains a SAFETY
/// marker (`SAFETY:` line comment or a `# Safety` doc section).
fn has_safety_comment(lines: &[ScanLine], idx: usize) -> bool {
    let marks = |l: &ScanLine| l.comment.contains("SAFETY:") || l.comment.contains("# Safety");
    if marks(&lines[idx]) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        let code = l.code.trim();
        let is_comment_only = code.is_empty() && !l.comment.is_empty();
        let is_attr = code.starts_with("#[") || code.starts_with("#![");
        let is_blank = code.is_empty() && l.comment.is_empty();
        if !(is_comment_only || is_attr) || is_blank {
            return false;
        }
        if marks(l) {
            return true;
        }
    }
    false
}

fn check_l1(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for (idx, line) in ctx.lines.iter().enumerate() {
        if !has_token(&line.code, "unsafe") {
            continue;
        }
        if !UNSAFE_ALLOWLIST.contains(&ctx.rel) {
            out.push(Finding {
                file: ctx.rel.to_string(),
                line: idx + 1,
                rule: Rule::L1,
                message: format!(
                    "`unsafe` outside the allowlist (only {} may contain \
                     unsafe code; see ARCHITECTURE.md rule 5)",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            });
        } else if !has_safety_comment(ctx.lines, idx) {
            out.push(Finding {
                file: ctx.rel.to_string(),
                line: idx + 1,
                rule: Rule::L1,
                message: "`unsafe` without an immediately preceding `// SAFETY:` comment \
                          stating the invariant that makes it sound"
                    .into(),
            });
        }
    }
}

const MAP_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_SUFFIXES: [&str; 10] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".retain(",
];

/// Collects identifiers bound to a `HashMap`/`HashSet` anywhere in the
/// file: `let (mut) name = HashMap::…`, `name: HashMap<…>` fields and
/// parameters, including through wrappers like `Option<HashMap<…>>`.
fn hash_container_names(ctx: &FileContext<'_>) -> Vec<(String, &'static str)> {
    let mut names: Vec<(String, &'static str)> = Vec::new();
    for line in ctx.lines {
        let code = line.code.trim_start();
        if code.starts_with("use ") || code.starts_with("pub use ") {
            continue;
        }
        for ty in MAP_TYPES {
            let Some(pos) = find_token(&line.code, ty) else {
                continue;
            };
            if let Some(name) = binding_name(&line.code[..pos]) {
                if !names.iter().any(|(n, _)| *n == name) {
                    names.push((name, ty));
                }
            }
        }
    }
    names
}

/// Walks backwards from a type usage to the identifier it binds:
/// strips wrapper generics (`Option<`, `&`, `&mut `) until it reaches a
/// `:` (typed binding/field/param) or `=` (inferred `let`), then reads
/// the identifier before it.
fn binding_name(before: &str) -> Option<String> {
    let mut s = before.trim_end();
    loop {
        let t = s.trim_end();
        if let Some(rest) = t.strip_suffix('<') {
            // `Option<`, `Vec<`, `&mut BTreeMap<` … — drop the wrapper
            // ident too, then continue unwrapping.
            let rest = rest.trim_end();
            let cut = rest
                .rfind(|c: char| !is_word_char(c))
                .map(|p| p + 1)
                .unwrap_or(0);
            s = &rest[..cut.min(rest.len())];
            continue;
        }
        if let Some(rest) = t.strip_suffix('&') {
            s = rest;
            continue;
        }
        if let Some(rest) = t.strip_suffix("mut") {
            if !prev_is_word(rest) {
                s = rest;
                continue;
            }
        }
        s = t;
        break;
    }
    let s = s.trim_end();
    let s = s.strip_suffix([':', '='])?.trim_end();
    if s.ends_with(':') {
        // `::` path segment, not a binding.
        return None;
    }
    let start = s
        .rfind(|c: char| !is_word_char(c))
        .map(|p| p + 1)
        .unwrap_or(0);
    let name = &s[start..];
    if name.is_empty() || name.chars().next().unwrap().is_ascii_digit() {
        return None;
    }
    if name == "let" || name == "mut" {
        return None;
    }
    Some(name.to_string())
}

fn check_l2(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let names = hash_container_names(ctx);
    if names.is_empty() {
        return;
    }
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test(idx) {
            continue;
        }
        for (name, ty) in &names {
            let mut from = 0;
            while let Some(pos) = line.code[from..].find(name.as_str()) {
                let abs = from + pos;
                from = abs + name.len();
                let before_ok =
                    abs == 0 || !is_word_char(line.code[..abs].chars().next_back().unwrap());
                if !before_ok {
                    continue;
                }
                let suffix = &line.code[abs + name.len()..];
                if suffix.chars().next().map(is_word_char).unwrap_or(false) {
                    continue;
                }
                let iterated = ITER_SUFFIXES.iter().any(|m| suffix.starts_with(m));
                let prefix = &line.code[..abs];
                let for_loop = (prefix.ends_with("in &") || prefix.ends_with("in &mut "))
                    || (prefix.ends_with(" in ") && suffix.trim_start().starts_with('{'));
                if iterated || for_loop {
                    out.push(Finding {
                        file: ctx.rel.to_string(),
                        line: idx + 1,
                        rule: Rule::L2,
                        message: format!(
                            "iteration over unordered `{ty}` `{name}` — iteration order is \
                             nondeterministic; use BTreeMap/BTreeSet or keep the container \
                             lookup-only (ARCHITECTURE.md rule 2)"
                        ),
                    });
                }
            }
        }
    }
}

fn check_l3(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if ctx.rel == KNOB_MODULE || ctx.bench_crate {
        return;
    }
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test(idx) {
            continue;
        }
        // `env::var` also prefixes `env::var_os`; `env::vars` covers
        // the iterator forms.
        if line.code.contains("env::var") || line.code.contains("env::vars") {
            out.push(Finding {
                file: ctx.rel.to_string(),
                line: idx + 1,
                rule: Rule::L3,
                message: format!(
                    "raw environment read outside the sanctioned knob module — route \
                     it through {KNOB_MODULE} so unknown values fail loudly with the \
                     accepted-values list"
                ),
            });
        }
    }
}

/// Ambient-entropy sources: every one would seed an RNG (or hash order)
/// from process-unique state, so a "seeded" chaos or retry schedule
/// silently stops replaying. Flagged alongside the wall clock because
/// both are the same defect — outputs depending on when/where the
/// process ran instead of on the config seed.
const ENTROPY_PATTERNS: [&str; 4] = ["RandomState", "from_entropy", "thread_rng", "getrandom"];

fn check_l4(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if ctx.bench_crate || ctx.rel == WALL_CLOCK_MODULE {
        return;
    }
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test(idx) {
            continue;
        }
        if line.code.contains("Instant::now") || has_token(&line.code, "SystemTime") {
            out.push(Finding {
                file: ctx.rel.to_string(),
                line: idx + 1,
                rule: Rule::L4,
                message: "wall-clock read in library code — timing belongs in crates/bench; \
                          outputs must be bit-identical across runs"
                    .into(),
            });
        }
        if ENTROPY_PATTERNS.iter().any(|p| has_token(&line.code, p)) {
            out.push(Finding {
                file: ctx.rel.to_string(),
                line: idx + 1,
                rule: Rule::L4,
                message: "ambient entropy source in library code — seed every stream \
                          (chaos, retry jitter, training) from the config so runs \
                          replay bit-for-bit (ARCHITECTURE.md rules 4 and 9)"
                    .into(),
            });
        }
    }
}

const SPAWN_PATTERNS: [&str; 3] = ["thread::spawn", "thread::scope", "thread::Builder"];

fn check_l5(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if ctx.rel == PARALLEL_MODULE || ctx.rel == FAN_IN_MODULE {
        return;
    }
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test(idx) {
            continue;
        }
        if SPAWN_PATTERNS.iter().any(|p| line.code.contains(p)) {
            out.push(Finding {
                file: ctx.rel.to_string(),
                line: idx + 1,
                rule: Rule::L5,
                message: "thread creation outside rte_tensor::parallel — ad-hoc threads \
                          bypass the fixed-order reduction schedule (ARCHITECTURE.md rule 2)"
                    .into(),
            });
        }
    }
}

const FMA_PATTERNS: [&str; 4] = ["fmadd", "fmsub", "fnmadd", "fnmsub"];

fn check_l6(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test(idx) || ctx.in_optout[idx] {
            continue;
        }
        let fma_intrinsic = FMA_PATTERNS.iter().any(|p| line.code.contains(p));
        if has_token(&line.code, "mul_add") || fma_intrinsic {
            out.push(Finding {
                file: ctx.rel.to_string(),
                line: idx + 1,
                rule: Rule::L6,
                message: "FMA contraction (`mul_add`/fused intrinsic) rounds once where \
                          mul+add round twice, splitting the SIMD arms bitwise — tag an \
                          explicit `// DETERMINISM-OPT-OUT: reason` region if different \
                          bits are intended (ARCHITECTURE.md rule 5)"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// L7: kernel-variant coverage tripwire (cross-file).
// ---------------------------------------------------------------------

/// The integration suite every dispatched kernel variant must appear in.
const DETERMINISM_SUITE: &str = "tests/simd_determinism.rs";

/// Finds `pub fn name_with(backend: SimdBackend, …)` declarations —
/// the dispatched kernel variants whose scalar/vector bit-identity the
/// determinism suite must exercise.
fn kernel_variants(lines: &[ScanLine]) -> Vec<(String, usize)> {
    let mut found = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let Some(pos) = code.find("pub fn ") else {
            continue;
        };
        let rest = &code[pos + "pub fn ".len()..];
        let name_end = rest.find(|c: char| !is_word_char(c)).unwrap_or(rest.len());
        let name = &rest[..name_end];
        if !name.ends_with("_with") {
            continue;
        }
        let Some(paren) = rest.find('(') else {
            continue;
        };
        // First parameter: the remainder of this line after `(`, plus
        // the next line for multi-line signatures.
        let mut params = rest[paren + 1..].to_string();
        if params.trim().is_empty() {
            if let Some(next) = lines.get(idx + 1) {
                params = next.code.clone();
            }
        }
        let first = params.split([',', ')']).next().unwrap_or("");
        if first.contains("SimdBackend") {
            found.push((name.to_string(), idx + 1));
        }
    }
    found
}

fn check_l7(root: &Path, files: &[(String, Vec<ScanLine>)], out: &mut Vec<Finding>) {
    let variants: Vec<(String, String, usize)> = files
        .iter()
        .filter(|(rel, _)| rel.starts_with("crates/tensor/src/"))
        .flat_map(|(rel, lines)| {
            kernel_variants(lines)
                .into_iter()
                .map(move |(name, line)| (rel.clone(), name, line))
        })
        .collect();
    if variants.is_empty() {
        return;
    }
    let suite = fs::read_to_string(root.join(DETERMINISM_SUITE)).unwrap_or_default();
    for (rel, name, line) in variants {
        if suite.is_empty() {
            out.push(Finding {
                file: rel,
                line,
                rule: Rule::L7,
                message: format!(
                    "kernel variant `{name}` declared but {DETERMINISM_SUITE} is missing — \
                     every dispatched kernel needs bitwise scalar-vs-vector coverage"
                ),
            });
            continue;
        }
        if !suite.contains(&name) {
            out.push(Finding {
                file: rel,
                line,
                rule: Rule::L7,
                message: format!(
                    "kernel variant `{name}` is not exercised by {DETERMINISM_SUITE} \
                     (coverage tripwire: every `*_with(backend: SimdBackend, …)` kernel \
                     must be compared bitwise across arms)"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Workspace walking and the check entry point.
// ---------------------------------------------------------------------

/// Directories never scanned: build output, VCS, vendored stand-ins
/// (external idiom, not ours to lint) and the lint fixtures themselves
/// (they contain violations on purpose).
const SKIP_DIRS: [&str; 4] = ["target", ".git", "crates/vendor", "crates/lint/fixtures"];

fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    fn walk(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
        let mut entries: Vec<PathBuf> = fs::read_dir(dir)
            .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if path.is_dir() {
                if SKIP_DIRS.contains(&rel.as_str()) || rel.starts_with('.') {
                    continue;
                }
                walk(&path, root, out)?;
            } else if rel.ends_with(".rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    Ok(files)
}

fn is_scaffold_path(rel: &str) -> bool {
    rel.split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples" || seg == "fixtures")
}

/// Runs the full rule set over the workspace at `root`.
///
/// # Errors
///
/// Returns a description on I/O failures or a malformed `lint.toml`.
pub fn check_root(root: &Path) -> Result<CheckReport, String> {
    let allow_entries = match fs::read_to_string(root.join("lint.toml")) {
        Ok(src) => parse_allowlist(&src)?,
        Err(_) => Vec::new(),
    };
    let paths = collect_rs_files(root)?;
    let mut findings = Vec::new();
    let mut scanned = Vec::new();
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path).map_err(|e| format!("read {rel}: {e}"))?;
        let lines = scan_source(&src);
        scanned.push((rel, lines));
    }
    for (rel, lines) in &scanned {
        let in_test = test_regions(lines);
        let (in_optout, mut optout_findings) = optout_regions(lines, rel);
        findings.append(&mut optout_findings);
        let ctx = FileContext {
            rel,
            lines,
            in_test: &in_test,
            in_optout: &in_optout,
            test_file: is_scaffold_path(rel),
            bench_crate: rel.starts_with("crates/bench/"),
        };
        let mut raw = Vec::new();
        check_l1(&ctx, &mut raw);
        check_l2(&ctx, &mut raw);
        check_l3(&ctx, &mut raw);
        check_l4(&ctx, &mut raw);
        check_l5(&ctx, &mut raw);
        check_l6(&ctx, &mut raw);
        // Site-level escape hatch: a `// rte-lint: allow(L#) reason`
        // comment on the finding's line or the contiguous comment block
        // above it. A reason-less allow suppresses nothing and is
        // itself a finding.
        for f in raw {
            match allow_at(lines, f.line - 1, f.rule) {
                AllowState::Suppressed => {}
                AllowState::MissingReason => {
                    findings.push(Finding {
                        message: format!(
                            "rte-lint allow comment for {} is missing its mandatory \
                             reason — `// rte-lint: allow({}) why it is sound`",
                            f.rule, f.rule
                        ),
                        ..f
                    });
                }
                AllowState::None => findings.push(f),
            }
        }
    }
    check_l7(root, &scanned, &mut findings);
    // File-level grandfathering from lint.toml.
    findings.retain(|f| {
        !allow_entries
            .iter()
            .any(|e| e.rule == f.rule && e.path == f.file)
    });
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(CheckReport {
        findings,
        files_scanned: scanned.len(),
        allowlist_entries: allow_entries.len(),
    })
}

enum AllowState {
    None,
    Suppressed,
    MissingReason,
}

fn allow_at(lines: &[ScanLine], idx: usize, rule: Rule) -> AllowState {
    let check = |line: &ScanLine| -> Option<AllowState> {
        let allow = parse_allow_comment(&line.comment)?;
        if !allow.rules.contains(&rule) {
            return None;
        }
        Some(if allow.has_reason {
            AllowState::Suppressed
        } else {
            AllowState::MissingReason
        })
    };
    if let Some(state) = check(&lines[idx]) {
        return state;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        let comment_only = l.code.trim().is_empty() && !l.comment.is_empty();
        if !comment_only {
            break;
        }
        if let Some(state) = check(l) {
            return state;
        }
    }
    AllowState::None
}

/// Renders findings as the machine-readable `--json` document.
pub fn render_json(report: &CheckReport) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i + 1 == report.findings.len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"rule\": \"{}\", \"message\": {}}}{sep}\n",
            json_string(&f.file),
            f.line,
            f.rule,
            json_string(&f.message)
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"count\": {},\n  \"files_scanned\": {},\n  \"allowlist_entries\": {}\n}}\n",
        report.findings.len(),
        report.files_scanned,
        report.allowlist_entries
    ));
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        scan_source(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strips_line_and_block_comments() {
        let lines = scan_source("let a = 1; // trailing note\n/* gone */ let b = 2;\n");
        assert_eq!(lines[0].code.trim(), "let a = 1;");
        assert_eq!(lines[0].comment.trim(), "trailing note");
        assert_eq!(lines[1].code.trim(), "let b = 2;");
    }

    #[test]
    fn strips_string_contents_but_keeps_delimiters() {
        let lines = code_of("let s = \"contains // not a comment\";\n");
        assert!(lines[0].contains('"'));
        assert!(!lines[0].contains("comment"));
    }

    #[test]
    fn handles_raw_strings_and_escapes() {
        let lines = code_of("let s = r#\"raw \" body\"#; let t = \"esc\\\"aped\";\nlet u = 1;\n");
        assert!(!lines[0].contains("raw"));
        assert!(!lines[0].contains("aped"));
        assert_eq!(lines[1].trim(), "let u = 1;");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = code_of("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\n");
        assert!(lines[0].contains("fn f<'a>"));
        assert!(!lines[1].contains('x'));
    }

    #[test]
    fn nested_block_comments() {
        let lines = code_of("/* outer /* inner */ still comment */ let a = 1;\n");
        assert_eq!(lines[0].trim(), "let a = 1;");
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("unsafe { x }", "unsafe"));
        assert!(!has_token("#![forbid(unsafe_code)]", "unsafe"));
        assert!(!has_token("find_unsafe_token()", "unsafe"));
    }

    #[test]
    fn test_region_detection() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}\n";
        let lines = scan_source(src);
        let flags = test_regions(&lines);
        assert_eq!(flags, vec![false, false, true, true, true, false]);
    }

    #[test]
    fn binding_name_extraction() {
        assert_eq!(binding_name("let velocity = ").as_deref(), Some("velocity"));
        assert_eq!(binding_name("    velocity: ").as_deref(), Some("velocity"));
        assert_eq!(
            binding_name("let reference_map: Option<").as_deref(),
            Some("reference_map")
        );
        assert_eq!(binding_name("fn f(m: &").as_deref(), Some("m"));
        assert_eq!(binding_name("use std::collections::").as_deref(), None);
    }

    #[test]
    fn allow_comment_parsing() {
        let a = parse_allow_comment(" rte-lint: allow(L2) scratch map, order unused").unwrap();
        assert_eq!(a.rules, vec![Rule::L2]);
        assert!(a.has_reason);
        let b = parse_allow_comment(" rte-lint: allow(L2, L4)").unwrap();
        assert_eq!(b.rules, vec![Rule::L2, Rule::L4]);
        assert!(!b.has_reason);
        assert!(parse_allow_comment("plain comment").is_none());
    }

    #[test]
    fn allowlist_parses_and_validates() {
        let src = "# comment\n[[allow]]\nrule = \"L4\"\npath = \"src/x.rs\"\nreason = \"grandfathered\"\n";
        let entries = parse_allowlist(src).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, Rule::L4);
        assert!(parse_allowlist("[[allow]]\nrule = \"L9\"\n").is_err());
        assert!(parse_allowlist("[[allow]]\nrule = \"L4\"\npath = \"x\"\n").is_err());
    }

    #[test]
    fn kernel_variant_detection() {
        let src = "pub fn matmul_with(\n    backend: SimdBackend,\n    a: &[f32],\n) {}\n\
                   pub fn conv2d_with(x: &T, par: Parallelism) {}\n\
                   pub fn axpy_with(backend: SimdBackend, alpha: f32) {}\n";
        let lines = scan_source(src);
        let v = kernel_variants(&lines);
        let names: Vec<&str> = v.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["matmul_with", "axpy_with"]);
    }
}
