//! CLI entry point for the determinism lint gate.
//!
//! ```text
//! cargo run -p rte-lint -- check [--json] [--root PATH]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rte-lint check [--json] [--root PATH]\n\
         \n\
         Scans every workspace .rs file and enforces the determinism\n\
         contract lints L1-L7 (see docs/ARCHITECTURE.md, Enforcement).\n\
         \n\
           --json       machine-readable findings on stdout\n\
           --root PATH  workspace root to scan (default: current directory)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        return usage();
    };
    if command != "check" {
        return usage();
    }
    let mut json = false;
    let mut root = PathBuf::from(".");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => {
                let Some(path) = args.next() else {
                    return usage();
                };
                root = PathBuf::from(path);
            }
            _ => return usage(),
        }
    }
    let report = match rte_lint::check_root(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("rte-lint: error: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", rte_lint::render_json(&report));
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        eprintln!(
            "rte-lint: {} finding(s) across {} files ({} grandfathered allowlist entries)",
            report.findings.len(),
            report.files_scanned,
            report.allowlist_entries
        );
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
