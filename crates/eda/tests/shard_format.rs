//! Robustness tests for the binary shard format: every way a shard file
//! can be damaged — truncation at any stage, foreign magic, unknown
//! version, header or record CRC corruption, zero samples — must surface
//! as a typed [`ShardError`], never a panic; and a property test pins
//! the write→read round trip to bitwise tensor equality.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use rte_eda::corpus::Split;
use rte_eda::dataset::Sample;
use rte_eda::placement::GridDims;
use rte_eda::shard::{CorpusReader, ShardMeta, ShardReader, ShardWriter};
use rte_eda::{EdaError, Family, ShardError};
use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch directory under cargo's per-target tmp dir.
fn scratch_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "shard-format-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn meta(designs: &[&str]) -> ShardMeta {
    ShardMeta {
        seed: 0xC0FFEE,
        client_index: 3,
        split: Split::Train,
        family: Family::Iwls05,
        grid: GridDims::new(4, 4),
        channels: 2,
        placement_scale: 0.5,
        designs: designs.iter().map(|s| s.to_string()).collect(),
    }
}

/// A deterministic sample for design `design` with seeded f32 content
/// (including values that exercise full mantissas, not just round ones).
fn sample(design: &str, seed: u64) -> Sample {
    let mut rng = Xoshiro256::seed_from(seed);
    Sample {
        features: Tensor::from_fn(&[2, 4, 4], |_| rng.normal()),
        label: Tensor::from_fn(&[1, 4, 4], |_| f32::from(u8::from(rng.bernoulli(0.3)))),
        design: design.to_string(),
    }
}

/// Writes a small valid shard and returns its path.
fn valid_shard(dir: &std::path::Path, n_samples: usize) -> PathBuf {
    let path = dir.join("client03.train.rtes");
    let mut writer = ShardWriter::create(&path, meta(&["d0", "d1"])).unwrap();
    for i in 0..n_samples {
        writer
            .append(&sample(if i % 2 == 0 { "d0" } else { "d1" }, 40 + i as u64))
            .unwrap();
    }
    writer.finish().unwrap();
    path
}

fn shard_err(result: Result<ShardReader, EdaError>) -> ShardError {
    match result {
        Err(EdaError::Shard(e)) => e,
        Err(other) => panic!("expected a ShardError, got {other}"),
        Ok(_) => panic!("expected an error, file opened"),
    }
}

#[test]
fn round_trip_preserves_samples_and_meta() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 5);
    let reader = ShardReader::open(&path).unwrap();
    assert_eq!(reader.len(), 5);
    assert_eq!(reader.geometry(), (2, 4, 4));
    assert_eq!(reader.meta().seed, 0xC0FFEE);
    assert_eq!(reader.meta().split, Split::Train);
    assert_eq!(reader.meta().designs, vec!["d0", "d1"]);
    for i in 0..5 {
        let got = reader.read_sample(i).unwrap();
        let want = sample(if i % 2 == 0 { "d0" } else { "d1" }, 40 + i as u64);
        assert_eq!(got, want, "sample {i}");
    }
    // Range reads agree with single reads.
    let range = reader.read_range(1..4).unwrap();
    assert_eq!(range.len(), 3);
    assert_eq!(range[0], reader.read_sample(1).unwrap());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncation_at_every_stage_is_a_typed_error() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 3);
    let bytes = std::fs::read(&path).unwrap();
    // Cut inside the prelude, inside the header body, at a partial
    // record, and one byte short of complete.
    for cut in [0, 5, 12, 25, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = shard_err(ShardReader::open(&path));
        assert!(
            matches!(err, ShardError::Truncated { .. }),
            "cut at {cut}: {err}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wrong_magic_is_a_typed_error() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 1);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] = b'X';
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        shard_err(ShardReader::open(&path)),
        ShardError::WrongMagic { .. }
    ));
    // A completely foreign file is also WrongMagic, not a panic.
    std::fs::write(&path, b"this is not a shard file at all....").unwrap();
    assert!(matches!(
        shard_err(ShardReader::open(&path)),
        ShardError::WrongMagic { .. }
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_version_is_a_typed_error() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 1);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let err = shard_err(ShardReader::open(&path));
    assert!(
        matches!(err, ShardError::UnsupportedVersion { found: 99, .. }),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn header_corruption_fails_the_header_crc() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 2);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[24] ^= 0xFF; // inside the header body (the seed field)
    std::fs::write(&path, &bytes).unwrap();
    let err = shard_err(ShardReader::open(&path));
    assert!(
        matches!(&err, ShardError::CrcMismatch { what, .. } if what == "header"),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn record_corruption_fails_that_record_crc_only() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 3);
    let bytes = std::fs::read(&path).unwrap();
    let header_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let data_offset = 20 + header_len;
    let record_len = (bytes.len() - data_offset) / 3;
    // Flip a feature byte in record 1.
    let mut corrupt = bytes.clone();
    corrupt[data_offset + record_len + 10] ^= 0x01;
    std::fs::write(&path, &corrupt).unwrap();
    let reader = ShardReader::open(&path).unwrap(); // header is fine
    assert!(reader.read_sample(0).is_ok(), "record 0 untouched");
    assert!(reader.read_sample(2).is_ok(), "record 2 untouched");
    let err = reader.read_sample(1).unwrap_err();
    assert!(
        matches!(
            &err,
            EdaError::Shard(ShardError::CrcMismatch { what, .. }) if what == "record 1"
        ),
        "{err}"
    );
    // Range reads crossing the bad record fail too.
    assert!(reader.read_range(0..3).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn zero_sample_shard_is_a_typed_error() {
    let dir = scratch_dir();
    let path = dir.join("client03.train.rtes");
    let writer = ShardWriter::create(&path, meta(&["d0"])).unwrap();
    assert!(writer.is_empty());
    writer.finish().unwrap();
    assert!(matches!(
        shard_err(ShardReader::open(&path)),
        ShardError::EmptyShard { .. }
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unfinished_shard_cannot_be_opened() {
    let dir = scratch_dir();
    let path = dir.join("client03.train.rtes");
    let mut writer = ShardWriter::create(&path, meta(&["d0"])).unwrap();
    writer.append(&sample("d0", 1)).unwrap();
    // Dropped without finish(): the header still advertises 0 samples,
    // and the file carries record bytes — trailing garbage.
    drop(writer);
    let err = shard_err(ShardReader::open(&path));
    assert!(
        matches!(
            err,
            ShardError::EmptyShard { .. } | ShardError::Corrupt { .. }
        ),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn writer_validates_geometry_and_design_table() {
    let dir = scratch_dir();
    let path = dir.join("client03.train.rtes");
    let mut writer = ShardWriter::create(&path, meta(&["d0"])).unwrap();
    // Unknown design name.
    assert!(writer.append(&sample("nope", 1)).is_err());
    // Wrong geometry.
    let bad = Sample {
        features: Tensor::zeros(&[2, 8, 8]),
        label: Tensor::zeros(&[1, 8, 8]),
        design: "d0".into(),
    };
    assert!(writer.append(&bad).is_err());
    // Empty design table is rejected at create time.
    assert!(ShardWriter::create(dir.join("x.rtes"), meta(&[])).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corpus_reader_validates_directory_layout() {
    let dir = scratch_dir();
    // Empty directory: typed layout error.
    assert!(matches!(
        CorpusReader::open(&dir),
        Err(EdaError::Shard(ShardError::Layout { .. }))
    ));
    // A train shard without its test sibling: layout error.
    valid_shard(&dir, 2);
    let err = CorpusReader::open(&dir).unwrap_err();
    assert!(
        matches!(&err, EdaError::Shard(ShardError::Layout { reason, .. })
            if reason.contains("lacks a test shard")),
        "{err}"
    );
    // Add the sibling: the pair opens.
    let test_path = dir.join("client03.test.rtes");
    let mut m = meta(&["t0"]);
    m.split = Split::Test;
    let mut writer = ShardWriter::create(&test_path, m).unwrap();
    writer.append(&sample("t0", 9)).unwrap();
    writer.finish().unwrap();
    let reader = CorpusReader::open(&dir).unwrap();
    assert_eq!(reader.clients().len(), 1);
    assert_eq!(reader.clients()[0].client_index, 3);
    assert_eq!(reader.total_samples(), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corpus_writer_leaves_no_tmp_files_and_sweeps_stale_ones() {
    use rte_eda::corpus::CorpusConfig;
    use rte_eda::shard::CorpusWriter;
    let dir = scratch_dir();
    // Debris from a hypothetical interrupted generation: must be swept,
    // must not count as shards, and must not confuse the reader.
    std::fs::write(dir.join("client01.train.rtes.tmp"), b"half-written junk").unwrap();
    assert!(matches!(
        CorpusReader::open(&dir),
        Err(EdaError::Shard(ShardError::Layout { .. })),
    ));
    let summaries = CorpusWriter::new(&dir)
        .with_chunk(4)
        .write(&CorpusConfig::tiny())
        .unwrap();
    assert_eq!(summaries.len(), 18, "9 clients × 2 splits");
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("tmp"))
        .collect();
    assert!(leftovers.is_empty(), "tmp debris left: {leftovers:?}");
    // Every summary points at a final, openable .rtes file.
    for summary in &summaries {
        assert_eq!(
            summary.path.extension().and_then(|e| e.to_str()),
            Some("rtes")
        );
        assert!(ShardReader::open(&summary.path).is_ok());
    }
    assert!(CorpusReader::open(&dir).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Write→read round-trips arbitrary tensor content bitwise: for a
    /// random sample count, geometry and seed, every f32 read back has
    /// exactly the bit pattern written.
    #[test]
    fn shard_round_trip_is_bitwise(
        n_samples in 1usize..6,
        channels in 1usize..4,
        height in 2usize..6,
        width in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let dir = scratch_dir();
        let path = dir.join("client01.train.rtes");
        let m = ShardMeta {
            seed,
            client_index: 1,
            split: Split::Train,
            family: Family::Itc99,
            grid: GridDims::new(width, height),
            channels,
            placement_scale: 1.0,
            designs: vec!["a".into(), "b".into()],
        };
        let mut rng = Xoshiro256::seed_from(seed);
        let samples: Vec<Sample> = (0..n_samples)
            .map(|i| Sample {
                // normal() exercises full mantissas; mix in exact zeros
                // and negatives.
                features: Tensor::from_fn(&[channels, height, width], |_| {
                    if rng.bernoulli(0.1) { 0.0 } else { rng.normal() }
                }),
                label: Tensor::from_fn(&[1, height, width], |_| {
                    f32::from(u8::from(rng.bernoulli(0.4)))
                }),
                design: if i % 2 == 0 { "a".into() } else { "b".into() },
            })
            .collect();
        let mut writer = ShardWriter::create(&path, m).unwrap();
        for s in &samples {
            writer.append(s).unwrap();
        }
        prop_assert_eq!(writer.finish().unwrap(), n_samples as u64);
        let reader = ShardReader::open(&path).unwrap();
        prop_assert_eq!(reader.len(), n_samples);
        let back = reader.read_range(0..n_samples).unwrap();
        for (got, want) in back.iter().zip(&samples) {
            prop_assert_eq!(&got.design, &want.design);
            let got_bits: Vec<u32> = got.features.data().iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.features.data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got_bits, want_bits);
            let got_bits: Vec<u32> = got.label.data().iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.label.data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got_bits, want_bits);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
