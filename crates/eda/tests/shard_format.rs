//! Robustness tests for the binary shard format: every way a shard file
//! can be damaged — truncation at any stage, foreign magic, unknown
//! version, header or record CRC corruption, zero samples — must surface
//! as a typed [`ShardError`], never a panic; and a property test pins
//! the write→read round trip to bitwise tensor equality.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use rte_eda::corpus::Split;
use rte_eda::dataset::Sample;
use rte_eda::mmap::MmapShardReader;
use rte_eda::placement::GridDims;
use rte_eda::shard::{
    compact_dir, compress_shard, CorpusReader, ShardMeta, ShardReader, ShardWriter,
};
use rte_eda::{EdaError, Family, ShardError};
use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch directory under cargo's per-target tmp dir.
fn scratch_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "shard-format-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn meta(designs: &[&str]) -> ShardMeta {
    ShardMeta {
        seed: 0xC0FFEE,
        client_index: 3,
        split: Split::Train,
        family: Family::Iwls05,
        grid: GridDims::new(4, 4),
        channels: 2,
        placement_scale: 0.5,
        designs: designs.iter().map(|s| s.to_string()).collect(),
    }
}

/// A deterministic sample for design `design` with seeded f32 content
/// (including values that exercise full mantissas, not just round ones).
fn sample(design: &str, seed: u64) -> Sample {
    let mut rng = Xoshiro256::seed_from(seed);
    Sample {
        features: Tensor::from_fn(&[2, 4, 4], |_| rng.normal()),
        label: Tensor::from_fn(&[1, 4, 4], |_| f32::from(u8::from(rng.bernoulli(0.3)))),
        design: design.to_string(),
    }
}

/// Writes a small valid shard and returns its path.
fn valid_shard(dir: &std::path::Path, n_samples: usize) -> PathBuf {
    let path = dir.join("client03.train.rtes");
    let mut writer = ShardWriter::create(&path, meta(&["d0", "d1"])).unwrap();
    for i in 0..n_samples {
        writer
            .append(&sample(if i % 2 == 0 { "d0" } else { "d1" }, 40 + i as u64))
            .unwrap();
    }
    writer.finish().unwrap();
    path
}

fn shard_err(result: Result<ShardReader, EdaError>) -> ShardError {
    match result {
        Err(EdaError::Shard(e)) => e,
        Err(other) => panic!("expected a ShardError, got {other}"),
        Ok(_) => panic!("expected an error, file opened"),
    }
}

fn mmap_err(result: Result<MmapShardReader, EdaError>) -> ShardError {
    match result {
        Err(EdaError::Shard(e)) => e,
        Err(other) => panic!("expected a ShardError, got {other}"),
        Ok(_) => panic!("expected an error, file opened"),
    }
}

/// CRC-32 (IEEE), bit-by-bit — the tests forge header CRCs so hostile
/// *field values* (not CRC damage) reach the validation logic.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

/// Mutates the header body through `f`, then re-forges the prelude's
/// header CRC so the crafted field values pass the integrity check.
fn patch_header(bytes: &mut [u8], f: impl FnOnce(&mut [u8])) {
    let header_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    f(&mut bytes[20..20 + header_len]);
    let crc = crc32(&bytes[20..20 + header_len]);
    bytes[16..20].copy_from_slice(&crc.to_le_bytes());
}

fn tensor_bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn round_trip_preserves_samples_and_meta() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 5);
    let reader = ShardReader::open(&path).unwrap();
    assert_eq!(reader.len(), 5);
    assert_eq!(reader.geometry(), (2, 4, 4));
    assert_eq!(reader.meta().seed, 0xC0FFEE);
    assert_eq!(reader.meta().split, Split::Train);
    assert_eq!(reader.meta().designs, vec!["d0", "d1"]);
    for i in 0..5 {
        let got = reader.read_sample(i).unwrap();
        let want = sample(if i % 2 == 0 { "d0" } else { "d1" }, 40 + i as u64);
        assert_eq!(got, want, "sample {i}");
    }
    // Range reads agree with single reads.
    let range = reader.read_range(1..4).unwrap();
    assert_eq!(range.len(), 3);
    assert_eq!(range[0], reader.read_sample(1).unwrap());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncation_at_every_stage_is_a_typed_error() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 3);
    let bytes = std::fs::read(&path).unwrap();
    // Cut inside the prelude, inside the header body, at a partial
    // record, and one byte short of complete.
    for cut in [0, 5, 12, 25, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = shard_err(ShardReader::open(&path));
        assert!(
            matches!(err, ShardError::Truncated { .. }),
            "cut at {cut}: {err}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wrong_magic_is_a_typed_error() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 1);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] = b'X';
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        shard_err(ShardReader::open(&path)),
        ShardError::WrongMagic { .. }
    ));
    // A completely foreign file is also WrongMagic, not a panic.
    std::fs::write(&path, b"this is not a shard file at all....").unwrap();
    assert!(matches!(
        shard_err(ShardReader::open(&path)),
        ShardError::WrongMagic { .. }
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_version_is_a_typed_error() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 1);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let err = shard_err(ShardReader::open(&path));
    assert!(
        matches!(err, ShardError::UnsupportedVersion { found: 99, .. }),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn header_corruption_fails_the_header_crc() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 2);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[24] ^= 0xFF; // inside the header body (the seed field)
    std::fs::write(&path, &bytes).unwrap();
    let err = shard_err(ShardReader::open(&path));
    assert!(
        matches!(&err, ShardError::CrcMismatch { what, .. } if what == "header"),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn record_corruption_fails_that_record_crc_only() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 3);
    let bytes = std::fs::read(&path).unwrap();
    let header_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let data_offset = 20 + header_len;
    let record_len = (bytes.len() - data_offset) / 3;
    // Flip a feature byte in record 1.
    let mut corrupt = bytes.clone();
    corrupt[data_offset + record_len + 10] ^= 0x01;
    std::fs::write(&path, &corrupt).unwrap();
    let reader = ShardReader::open(&path).unwrap(); // header is fine
    assert!(reader.read_sample(0).is_ok(), "record 0 untouched");
    assert!(reader.read_sample(2).is_ok(), "record 2 untouched");
    let err = reader.read_sample(1).unwrap_err();
    assert!(
        matches!(
            &err,
            EdaError::Shard(ShardError::CrcMismatch { what, .. }) if what == "record 1"
        ),
        "{err}"
    );
    // Range reads crossing the bad record fail too.
    assert!(reader.read_range(0..3).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn zero_sample_shard_is_a_typed_error() {
    let dir = scratch_dir();
    let path = dir.join("client03.train.rtes");
    let writer = ShardWriter::create(&path, meta(&["d0"])).unwrap();
    assert!(writer.is_empty());
    writer.finish().unwrap();
    assert!(matches!(
        shard_err(ShardReader::open(&path)),
        ShardError::EmptyShard { .. }
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unfinished_shard_cannot_be_opened() {
    let dir = scratch_dir();
    let path = dir.join("client03.train.rtes");
    let mut writer = ShardWriter::create(&path, meta(&["d0"])).unwrap();
    writer.append(&sample("d0", 1)).unwrap();
    // Dropped without finish(): the header still advertises 0 samples,
    // and the file carries record bytes — trailing garbage.
    drop(writer);
    let err = shard_err(ShardReader::open(&path));
    assert!(
        matches!(
            err,
            ShardError::EmptyShard { .. } | ShardError::Corrupt { .. }
        ),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn writer_validates_geometry_and_design_table() {
    let dir = scratch_dir();
    let path = dir.join("client03.train.rtes");
    let mut writer = ShardWriter::create(&path, meta(&["d0"])).unwrap();
    // Unknown design name.
    assert!(writer.append(&sample("nope", 1)).is_err());
    // Wrong geometry.
    let bad = Sample {
        features: Tensor::zeros(&[2, 8, 8]),
        label: Tensor::zeros(&[1, 8, 8]),
        design: "d0".into(),
    };
    assert!(writer.append(&bad).is_err());
    // Empty design table is rejected at create time.
    assert!(ShardWriter::create(dir.join("x.rtes"), meta(&[])).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corpus_reader_validates_directory_layout() {
    let dir = scratch_dir();
    // Empty directory: typed layout error.
    assert!(matches!(
        CorpusReader::open(&dir),
        Err(EdaError::Shard(ShardError::Layout { .. }))
    ));
    // A train shard without its test sibling: layout error.
    valid_shard(&dir, 2);
    let err = CorpusReader::open(&dir).unwrap_err();
    assert!(
        matches!(&err, EdaError::Shard(ShardError::Layout { reason, .. })
            if reason.contains("lacks a test shard")),
        "{err}"
    );
    // Add the sibling: the pair opens.
    let test_path = dir.join("client03.test.rtes");
    let mut m = meta(&["t0"]);
    m.split = Split::Test;
    let mut writer = ShardWriter::create(&test_path, m).unwrap();
    writer.append(&sample("t0", 9)).unwrap();
    writer.finish().unwrap();
    let reader = CorpusReader::open(&dir).unwrap();
    assert_eq!(reader.clients().len(), 1);
    assert_eq!(reader.clients()[0].client_index, 3);
    assert_eq!(reader.total_samples(), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corpus_writer_leaves_no_tmp_files_and_sweeps_stale_ones() {
    use rte_eda::corpus::CorpusConfig;
    use rte_eda::shard::CorpusWriter;
    let dir = scratch_dir();
    // Debris from a hypothetical interrupted generation: must be swept,
    // must not count as shards, and must not confuse the reader.
    std::fs::write(dir.join("client01.train.rtes.tmp"), b"half-written junk").unwrap();
    assert!(matches!(
        CorpusReader::open(&dir),
        Err(EdaError::Shard(ShardError::Layout { .. })),
    ));
    let summaries = CorpusWriter::new(&dir)
        .with_chunk(4)
        .write(&CorpusConfig::tiny())
        .unwrap();
    assert_eq!(summaries.len(), 18, "9 clients × 2 splits");
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("tmp"))
        .collect();
    assert!(leftovers.is_empty(), "tmp debris left: {leftovers:?}");
    // Every summary points at a final, openable .rtes file.
    for summary in &summaries {
        assert_eq!(
            summary.path.extension().and_then(|e| e.to_str()),
            Some("rtes")
        );
        assert!(ShardReader::open(&summary.path).is_ok());
    }
    assert!(CorpusReader::open(&dir).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Write→read round-trips arbitrary tensor content bitwise: for a
    /// random sample count, geometry and seed, every f32 read back has
    /// exactly the bit pattern written.
    #[test]
    fn shard_round_trip_is_bitwise(
        n_samples in 1usize..6,
        channels in 1usize..4,
        height in 2usize..6,
        width in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let dir = scratch_dir();
        let path = dir.join("client01.train.rtes");
        let m = ShardMeta {
            seed,
            client_index: 1,
            split: Split::Train,
            family: Family::Itc99,
            grid: GridDims::new(width, height),
            channels,
            placement_scale: 1.0,
            designs: vec!["a".into(), "b".into()],
        };
        let mut rng = Xoshiro256::seed_from(seed);
        let samples: Vec<Sample> = (0..n_samples)
            .map(|i| Sample {
                // normal() exercises full mantissas; mix in exact zeros
                // and negatives.
                features: Tensor::from_fn(&[channels, height, width], |_| {
                    if rng.bernoulli(0.1) { 0.0 } else { rng.normal() }
                }),
                label: Tensor::from_fn(&[1, height, width], |_| {
                    f32::from(u8::from(rng.bernoulli(0.4)))
                }),
                design: if i % 2 == 0 { "a".into() } else { "b".into() },
            })
            .collect();
        let mut writer = ShardWriter::create(&path, m).unwrap();
        for s in &samples {
            writer.append(s).unwrap();
        }
        prop_assert_eq!(writer.finish().unwrap(), n_samples as u64);
        let reader = ShardReader::open(&path).unwrap();
        prop_assert_eq!(reader.len(), n_samples);
        let back = reader.read_range(0..n_samples).unwrap();
        for (got, want) in back.iter().zip(&samples) {
            prop_assert_eq!(&got.design, &want.design);
            let got_bits: Vec<u32> = got.features.data().iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.features.data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got_bits, want_bits);
            let got_bits: Vec<u32> = got.label.data().iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.label.data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got_bits, want_bits);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// ---------------------------------------------------------------------
// Hostile-header regressions: crafted field values behind a valid CRC.
// ---------------------------------------------------------------------

/// A forged sample count of 2^63 wraps `n_samples * record_len` to 0 in
/// unchecked u64 arithmetic — which would make the crafted header *pass*
/// the file-size check. Both readers must surface a typed `Corrupt`.
#[test]
fn huge_sample_count_cannot_wrap_the_size_check() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 3);
    let mut bytes = std::fs::read(&path).unwrap();
    // n_samples lives at header-body offset 34 (after seed, client,
    // split, family, grid dims, channels, placement scale).
    patch_header(&mut bytes, |body| {
        body[34..42].copy_from_slice(&(1u64 << 63).to_le_bytes());
    });
    std::fs::write(&path, &bytes).unwrap();
    let err = shard_err(ShardReader::open(&path));
    assert!(
        matches!(&err, ShardError::Corrupt { reason, .. } if reason.contains("overflows")),
        "{err}"
    );
    let err = mmap_err(MmapShardReader::open(&path));
    assert!(
        matches!(&err, ShardError::Corrupt { reason, .. } if reason.contains("overflows")),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A prelude claiming a 4 GiB header must be rejected by the documented
/// cap *before* any buffer of that size is allocated — the length field
/// is attacker-controlled until the header CRC is checked, and the CRC
/// cannot be checked without first trusting the length.
#[test]
fn four_gib_header_claim_is_rejected_before_allocation() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 1);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    for err in [
        shard_err(ShardReader::open(&path)),
        mmap_err(MmapShardReader::open(&path)),
    ] {
        assert!(
            matches!(&err, ShardError::Corrupt { reason, .. }
                if reason.contains("header length") && reason.contains("limit")),
            "{err}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Pathological geometry behind a valid CRC (a 2000-cell grid axis,
/// over the documented limit) is rejected before any record-length
/// arithmetic or division can see it.
#[test]
fn oversized_grid_claim_is_rejected() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 1);
    let mut bytes = std::fs::read(&path).unwrap();
    patch_header(&mut bytes, |body| {
        body[18..22].copy_from_slice(&2000u32.to_le_bytes()); // grid width
    });
    std::fs::write(&path, &bytes).unwrap();
    for err in [
        shard_err(ShardReader::open(&path)),
        mmap_err(MmapShardReader::open(&path)),
    ] {
        assert!(
            matches!(&err, ShardError::Corrupt { reason, .. }
                if reason.contains("validation limits")),
            "{err}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Compression (version-2 shards).
// ---------------------------------------------------------------------

/// compress → open → read returns exactly the bits of the raw shard,
/// with frames that do not align with the sample count.
#[test]
fn compressed_shard_round_trips_bitwise() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 7);
    let cpath = dir.join("client03.train.c.rtes");
    let stats = compress_shard(&path, &cpath, 3).unwrap();
    assert_eq!(stats.samples, 7);
    assert!(stats.compressed_bytes > 0);

    let raw = ShardReader::open(&path).unwrap();
    let comp = ShardReader::open(&cpath).unwrap();
    assert!(comp.is_compressed());
    assert_eq!(comp.len(), 7);
    assert_eq!(comp.meta(), raw.meta());
    let want = raw.read_range(0..7).unwrap();
    let got = comp.read_range(0..7).unwrap();
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(tensor_bits(&g.features), tensor_bits(&w.features));
        assert_eq!(tensor_bits(&g.label), tensor_bits(&w.label));
        assert_eq!(g.design, w.design);
    }
    // Single reads land mid-frame and across frame boundaries.
    for i in [0, 2, 3, 5, 6] {
        assert_eq!(comp.read_sample(i).unwrap(), want[i]);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// compact_dir rewrites raw shards in place, skips already-compressed
/// ones on a second pass, and the directory keeps opening cleanly.
#[test]
fn compact_dir_is_idempotent_and_readable() {
    let dir = scratch_dir();
    valid_shard(&dir, 4);
    let mut m = meta(&["t0"]);
    m.split = Split::Test;
    let mut writer = ShardWriter::create(dir.join("client03.test.rtes"), m).unwrap();
    writer.append(&sample("t0", 9)).unwrap();
    writer.finish().unwrap();
    let before: Vec<Sample> = {
        let reader = CorpusReader::open(&dir).unwrap();
        let c = &reader.clients()[0];
        (0..c.train.len())
            .map(|i| c.train.read_sample(i).unwrap())
            .collect()
    };

    let summary = compact_dir(&dir, 2).unwrap();
    assert_eq!((summary.compressed, summary.skipped), (2, 0));
    assert!(summary.raw_bytes > 0);
    let again = compact_dir(&dir, 2).unwrap();
    assert_eq!((again.compressed, again.skipped), (0, 2));

    let reader = CorpusReader::open(&dir).unwrap();
    let c = &reader.clients()[0];
    assert!(c.train.is_compressed());
    for (i, want) in before.iter().enumerate() {
        assert_eq!(&c.train.read_sample(i).unwrap(), want);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Memory-mapped reader.
// ---------------------------------------------------------------------

/// The mmap reader returns bit-identical planes to the read-based
/// reader, and its per-chunk CRC bitmap verifies lazily: chunks are
/// checked on first touch only.
#[test]
fn mmap_reader_is_bitwise_identical_and_lazy() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 5);
    let read = ShardReader::open(&path).unwrap();
    let mapped = MmapShardReader::open_with_chunk(&path, 2).unwrap();
    assert_eq!(mapped.len(), 5);
    assert_eq!(mapped.geometry(), read.geometry());
    assert_eq!(mapped.meta(), read.meta());
    assert_eq!(mapped.verified_chunks(), 0, "open must not touch data");

    let mut mf = Vec::new();
    let mut ml = Vec::new();
    mapped.read_batch_into(0..1, &mut mf, &mut ml).unwrap();
    assert_eq!(mapped.verified_chunks(), 1, "first touch verifies chunk 0");
    mapped
        .read_batch_into(0..1, &mut Vec::new(), &mut Vec::new())
        .unwrap();
    assert_eq!(mapped.verified_chunks(), 1, "re-reads skip verification");

    mf.clear();
    ml.clear();
    mapped.read_batch_into(0..5, &mut mf, &mut ml).unwrap();
    assert_eq!(
        mapped.verified_chunks(),
        3,
        "5 records / chunk 2 = 3 chunks"
    );
    let want = read.read_range(0..5).unwrap();
    let want_f: Vec<u32> = want.iter().flat_map(|s| tensor_bits(&s.features)).collect();
    let want_l: Vec<u32> = want.iter().flat_map(|s| tensor_bits(&s.label)).collect();
    assert_eq!(mf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), want_f);
    assert_eq!(ml.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), want_l);
    for i in 0..5 {
        assert_eq!(mapped.read_sample(i).unwrap(), want[i]);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Compressed shards have no fixed-size records to map; the mmap
/// backend must refuse them with a typed configuration error.
#[test]
fn mmap_rejects_compressed_shards() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 3);
    let cpath = dir.join("c.rtes");
    compress_shard(&path, &cpath, 2).unwrap();
    let err = MmapShardReader::open(&cpath).unwrap_err();
    assert!(
        matches!(&err, EdaError::InvalidConfig { reason } if reason.contains("compressed")),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A flipped record byte is caught by the lazy CRC on first touch of
/// that record's chunk, and only that chunk.
#[test]
fn mmap_detects_record_corruption_per_chunk() {
    let dir = scratch_dir();
    let path = valid_shard(&dir, 3);
    let bytes = std::fs::read(&path).unwrap();
    let header_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let data_offset = 20 + header_len;
    let record_len = (bytes.len() - data_offset) / 3;
    let mut corrupt = bytes.clone();
    corrupt[data_offset + record_len + 10] ^= 0x01;
    std::fs::write(&path, &corrupt).unwrap();
    let mapped = MmapShardReader::open_with_chunk(&path, 1).unwrap();
    let (mut f, mut l) = (Vec::new(), Vec::new());
    assert!(mapped.read_batch_into(0..1, &mut f, &mut l).is_ok());
    assert!(mapped.read_batch_into(2..3, &mut f, &mut l).is_ok());
    let err = mapped.read_batch_into(1..2, &mut f, &mut l).unwrap_err();
    assert!(
        matches!(
            &err,
            EdaError::Shard(ShardError::CrcMismatch { what, .. }) if what == "record 1"
        ),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Hostile-bytes property tests: flip any byte of a valid file.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mutating any single byte of a valid raw shard must yield, from
    /// BOTH readers, either a typed error or bitwise-original data —
    /// never a panic, never garbage. (The allocation cap is pinned
    /// separately by `four_gib_header_claim_is_rejected_before_allocation`.)
    #[test]
    fn hostile_byte_flips_are_typed_errors_or_clean_reads(
        index in 0usize..1_000_000,
        xor_m1 in 0u8..255,
    ) {
        let dir = scratch_dir();
        let path = valid_shard(&dir, 4);
        let clean = std::fs::read(&path).unwrap();
        let want: Vec<Sample> = {
            let reader = ShardReader::open(&path).unwrap();
            (0..4).map(|i| reader.read_sample(i).unwrap()).collect()
        };
        let mut bytes = clean.clone();
        let at = index % bytes.len();
        bytes[at] ^= xor_m1.wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();

        // Read-based path: open may fail (typed); reads may fail
        // (typed); whatever succeeds must be bit-identical.
        if let Ok(reader) = ShardReader::open(&path) {
            for (i, w) in want.iter().enumerate() {
                if let Ok(got) = reader.read_sample(i) {
                    prop_assert_eq!(tensor_bits(&got.features), tensor_bits(&w.features));
                    prop_assert_eq!(tensor_bits(&got.label), tensor_bits(&w.label));
                }
            }
        }
        // Mmap path: same contract, same validation core.
        if let Ok(mapped) = MmapShardReader::open_with_chunk(&path, 2) {
            let (mut f, mut l) = (Vec::new(), Vec::new());
            if mapped.read_batch_into(0..4, &mut f, &mut l).is_ok() {
                let want_f: Vec<u32> =
                    want.iter().flat_map(|s| tensor_bits(&s.features)).collect();
                prop_assert_eq!(
                    f.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want_f
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The same contract holds for compressed (version-2) shards: any
    /// single-byte flip in the header, chunk directory or frame payloads
    /// is a typed error or a bitwise-clean read.
    #[test]
    fn hostile_byte_flips_on_compressed_shards(
        index in 0usize..1_000_000,
        xor_m1 in 0u8..255,
    ) {
        let dir = scratch_dir();
        let raw = valid_shard(&dir, 4);
        let path = dir.join("c.rtes");
        compress_shard(&raw, &path, 3).unwrap();
        let want: Vec<Sample> = {
            let reader = ShardReader::open(&raw).unwrap();
            (0..4).map(|i| reader.read_sample(i).unwrap()).collect()
        };
        let clean = std::fs::read(&path).unwrap();
        let mut bytes = clean.clone();
        let at = index % bytes.len();
        bytes[at] ^= xor_m1.wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(reader) = ShardReader::open(&path) {
            for (i, w) in want.iter().enumerate() {
                if let Ok(got) = reader.read_sample(i) {
                    prop_assert_eq!(tensor_bits(&got.features), tensor_bits(&w.features));
                    prop_assert_eq!(tensor_bits(&got.label), tensor_bits(&w.label));
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
