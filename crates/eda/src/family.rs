//! Benchmark-family generation profiles.
//!
//! Each family's profile is tuned to echo the character of the real suite:
//! ISCAS'89 designs are small flat sequential circuits; ITC'99 are larger
//! RT-level blocks; IWLS'05 mixes Faraday/OpenCores IP with more macros;
//! ISPD'15 are large placement-contest designs with fence regions and
//! routing blockages (modelled as a high macro fraction and tight
//! capacity). The *absolute* realism of each knob matters less than the
//! families being distinct — that distinctness is the client-level data
//! heterogeneity driving the paper's federated-learning results.

/// A benchmark suite from the paper's §5.1 data setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// ISCAS'89 sequential benchmark circuits.
    Iscas89,
    /// ITC'99 RT-level benchmarks.
    Itc99,
    /// IWLS'05 (Faraday + OpenCores subset).
    Iwls05,
    /// ISPD'15 detailed-routing-driven placement benchmarks.
    Ispd15,
}

impl Family {
    /// All families, in the paper's Table 2 ordering of first appearance.
    pub const ALL: [Family; 4] = [
        Family::Itc99,
        Family::Iscas89,
        Family::Iwls05,
        Family::Ispd15,
    ];

    /// Suite name as the paper spells it.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Iscas89 => "ISCAS'89",
            Family::Itc99 => "ITC'99",
            Family::Iwls05 => "IWLS'05",
            Family::Ispd15 => "ISPD'15",
        }
    }

    /// The generation profile of this family.
    pub fn profile(&self) -> FamilyProfile {
        match self {
            // Small, flat, pin-light circuits; generous routing capacity.
            Family::Iscas89 => FamilyProfile {
                family: *self,
                cell_count: (220, 700),
                nets_per_cell: 1.05,
                avg_fanout: 2.6,
                rent_exponent: 0.55,
                cluster_count: (3, 6),
                cluster_tightness: 0.55,
                macro_fraction: 0.0,
                pins_per_cell: (2, 5),
                target_density: (0.45, 0.70),
                route_capacity: 3.1,
                capacity_jitter: 0.12,
                hotspot_threshold: 1.42,
                label_noise: 0.02,
                h_affinity: 0.72,
                pin_weight: 0.08,
            },
            // Mid-size RTL blocks, higher fanout, some clustering.
            Family::Itc99 => FamilyProfile {
                family: *self,
                cell_count: (500, 1400),
                nets_per_cell: 1.10,
                avg_fanout: 3.2,
                rent_exponent: 0.62,
                cluster_count: (4, 9),
                cluster_tightness: 0.65,
                macro_fraction: 0.02,
                pins_per_cell: (2, 6),
                target_density: (0.55, 0.80),
                route_capacity: 2.8,
                capacity_jitter: 0.10,
                hotspot_threshold: 1.48,
                label_noise: 0.025,
                h_affinity: 0.55,
                pin_weight: 0.18,
            },
            // IP-style blocks: more macros, heterogeneous pin counts.
            Family::Iwls05 => FamilyProfile {
                family: *self,
                cell_count: (700, 1800),
                nets_per_cell: 1.15,
                avg_fanout: 3.6,
                rent_exponent: 0.66,
                cluster_count: (5, 11),
                cluster_tightness: 0.75,
                macro_fraction: 0.06,
                pins_per_cell: (3, 8),
                target_density: (0.60, 0.85),
                route_capacity: 2.6,
                capacity_jitter: 0.15,
                hotspot_threshold: 1.75,
                label_noise: 0.03,
                h_affinity: 0.30,
                pin_weight: 0.35,
            },
            // Contest-scale designs with blockages and tight supply.
            Family::Ispd15 => FamilyProfile {
                family: *self,
                cell_count: (1200, 2600),
                nets_per_cell: 1.20,
                avg_fanout: 4.0,
                rent_exponent: 0.70,
                cluster_count: (6, 14),
                cluster_tightness: 0.85,
                macro_fraction: 0.10,
                pins_per_cell: (3, 9),
                target_density: (0.65, 0.90),
                route_capacity: 2.4,
                capacity_jitter: 0.18,
                hotspot_threshold: 1.52,
                label_noise: 0.025,
                h_affinity: 0.45,
                pin_weight: 0.12,
            },
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Statistical knobs of one benchmark family's synthetic generator.
///
/// See the module docs for the intent of each family's values.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyProfile {
    /// The family this profile belongs to.
    pub family: Family,
    /// Inclusive range of standard-cell counts per design.
    pub cell_count: (usize, usize),
    /// Nets generated per cell.
    pub nets_per_cell: f64,
    /// Mean net fanout (pins per net beyond the driver).
    pub avg_fanout: f64,
    /// Rent-style locality exponent in `[0.5, 1.0)`; higher values produce
    /// more cross-cluster (global) nets.
    pub rent_exponent: f64,
    /// Inclusive range of logical cluster counts per design.
    pub cluster_count: (usize, usize),
    /// Probability that a net stays within one cluster.
    pub cluster_tightness: f64,
    /// Fraction of the die area covered by macro blockages.
    pub macro_fraction: f64,
    /// Inclusive range of pins per cell.
    pub pins_per_cell: (u8, u8),
    /// Inclusive range of target placement densities across placement runs.
    pub target_density: (f32, f32),
    /// Mean per-gcell routing capacity (tracks per edge, arbitrary units).
    pub route_capacity: f64,
    /// Relative std-dev of per-design capacity variation.
    pub capacity_jitter: f64,
    /// Demand/capacity ratio above which a gcell becomes a DRC hotspot.
    pub hotspot_threshold: f64,
    /// Probability of flipping a label tile (models detailed-routing
    /// effects the congestion model cannot see).
    pub label_noise: f64,
    /// Weight of *horizontal* routing demand in the overflow score (the
    /// vertical weight is `1 − h_affinity`). Families differ here —
    /// metal-stack and aspect-ratio conventions make suites
    /// direction-biased — and this is the knob that makes the
    /// feature→label *mapping* heterogeneous across clients, not just its
    /// threshold (AUC is invariant to thresholds but not to mappings).
    pub h_affinity: f64,
    /// Weight of pin density in the overflow score (pin-access DRCs).
    pub pin_weight: f64,
}

/// Sampling weights over the four benchmark families — the heterogeneity
/// model behind the synthesized client universe (`--clients N`).
///
/// A client universe draws each client's family from one mix; because
/// family profiles differ in feature *and* label statistics (capacity,
/// thresholds, direction affinity, label noise), the mix is what induces
/// both feature heterogeneity and label skew across the population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyMix {
    /// Relative weight per family, in [`Family::ALL`] order. Need not be
    /// normalized; every weight must be finite and non-negative, with a
    /// positive sum.
    pub weights: [f64; 4],
}

impl FamilyMix {
    /// The Table 2 population mix: 3 ITC'99 clients, 3 ISCAS'89,
    /// 2 IWLS'05, 1 ISPD'15.
    pub fn paper() -> Self {
        FamilyMix {
            weights: [3.0, 3.0, 2.0, 1.0],
        }
    }

    /// Every family equally likely.
    pub fn uniform() -> Self {
        FamilyMix { weights: [1.0; 4] }
    }

    /// True when the weights form a usable distribution.
    pub fn is_valid(&self) -> bool {
        self.weights.iter().all(|w| w.is_finite() && *w >= 0.0)
            && self.weights.iter().sum::<f64>() > 0.0
    }

    /// Maps a uniform draw `u ∈ [0, 1)` to a family by walking the
    /// cumulative weights in [`Family::ALL`] order — one fixed mapping,
    /// so a given RNG stream always yields the same family sequence.
    pub fn sample(&self, u: f64) -> Family {
        let total: f64 = self.weights.iter().sum();
        let mut acc = 0.0;
        for (family, w) in Family::ALL.iter().zip(self.weights) {
            acc += w / total;
            if u < acc {
                return *family;
            }
        }
        // u == 1.0 - ε rounding: the last family with any weight.
        *Family::ALL
            .iter()
            .zip(self.weights)
            .filter(|(_, w)| *w > 0.0)
            .map(|(f, _)| f)
            .next_back()
            .expect("is_valid checked by callers")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_mix_samples_cover_the_support() {
        let mix = FamilyMix::paper();
        assert!(mix.is_valid());
        assert_eq!(mix.sample(0.0), Family::Itc99);
        assert_eq!(mix.sample(0.99), Family::Ispd15);
        // Zero-weight families are never drawn.
        let skewed = FamilyMix {
            weights: [0.0, 1.0, 0.0, 0.0],
        };
        for u in [0.0, 0.5, 0.999] {
            assert_eq!(skewed.sample(u), Family::Iscas89);
        }
        assert!(!FamilyMix { weights: [0.0; 4] }.is_valid());
        assert!(!FamilyMix {
            weights: [1.0, -1.0, 1.0, 1.0]
        }
        .is_valid());
    }

    #[test]
    fn profiles_are_distinct() {
        // Heterogeneity requirement: no two families share a profile.
        let profiles: Vec<FamilyProfile> = Family::ALL.iter().map(|f| f.profile()).collect();
        for i in 0..profiles.len() {
            for j in i + 1..profiles.len() {
                assert_ne!(
                    (profiles[i].cell_count, profiles[i].rent_exponent),
                    (profiles[j].cell_count, profiles[j].rent_exponent),
                    "{} vs {}",
                    profiles[i].family,
                    profiles[j].family
                );
            }
        }
    }

    #[test]
    fn difficulty_ordering() {
        // ISPD'15 must be the hardest family (tightest capacity), ISCAS'89
        // the easiest — mirroring suite scale in the real corpora.
        let caps: Vec<f64> = [
            Family::Iscas89,
            Family::Itc99,
            Family::Iwls05,
            Family::Ispd15,
        ]
        .iter()
        .map(|f| f.profile().route_capacity)
        .collect();
        assert!(caps.windows(2).all(|w| w[0] > w[1]), "{caps:?}");
    }

    #[test]
    fn ranges_are_well_formed() {
        for f in Family::ALL {
            let p = f.profile();
            assert!(p.cell_count.0 < p.cell_count.1);
            assert!(p.cluster_count.0 <= p.cluster_count.1);
            assert!(p.pins_per_cell.0 <= p.pins_per_cell.1);
            assert!(p.target_density.0 <= p.target_density.1);
            assert!((0.0..1.0).contains(&p.macro_fraction));
            assert!(p.avg_fanout >= 2.0, "net needs driver + sink");
            assert!((0.5..1.0).contains(&p.rent_exponent));
            assert!((0.0..=1.0).contains(&p.h_affinity));
            assert!(p.pin_weight >= 0.0);
            assert!((0.0..0.2).contains(&p.label_noise));
        }
    }

    #[test]
    fn direction_affinities_span_both_regimes() {
        // The heterogeneity mechanism: at least one family must be
        // horizontal-dominant and one vertical-dominant, so a model fit
        // on one family mis-ranks tiles on another.
        let affinities: Vec<f64> = Family::ALL.iter().map(|f| f.profile().h_affinity).collect();
        assert!(affinities.iter().any(|&a| a > 0.6));
        assert!(affinities.iter().any(|&a| a < 0.4));
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Family::Iscas89.to_string(), "ISCAS'89");
        assert_eq!(Family::Itc99.to_string(), "ITC'99");
        assert_eq!(Family::Iwls05.to_string(), "IWLS'05");
        assert_eq!(Family::Ispd15.to_string(), "ISPD'15");
    }
}
