//! Memory-mapped shard reads: validate the header once at open, CRC
//! data lazily on first touch, copy nothing until the tensors are built.
//!
//! [`MmapShardReader`] is the third data backend (after in-memory
//! tensors and the `read`-based [`crate::shard::ShardReader`]): the
//! whole shard file is mapped read-only into the address space, so a
//! record read is a pointer offset into the page cache instead of a
//! `seek` + `read` + memcpy into a scratch buffer. Two properties keep
//! it inside the determinism and hostile-bytes contracts:
//!
//! - **One hardened validation path.** Open-time checks (magic,
//!   version, the header-length cap, header CRC, geometry limits,
//!   overflow-checked record accounting) are the *same* functions the
//!   read-based reader uses, so a crafted file is rejected identically
//!   by both backends.
//! - **Lazy per-chunk CRC.** Record CRCs are verified on the first
//!   touch of each `crc_chunk`-record chunk and remembered in a
//!   `OnceLock`-style atomic bitmap: a bit is set only *after* its
//!   chunk verified clean, concurrent first touches at worst verify
//!   twice (idempotent), and subsequent reads skip straight to the
//!   mapped bytes. A full pass verifies every byte exactly once —
//!   matching the read path's guarantees at a fraction of the work.
//!
//! Reads return bit-identical f32 planes to
//! [`ShardReader`](crate::shard::ShardReader) — the
//! bytes come from the same file — so the mmap backend is a pure
//! wall-clock knob under determinism-contract rule 4.
//!
//! Compressed (version-2) shards have variable-size frames and cannot
//! be served zero-copy; [`MmapShardReader::open`] rejects them with a
//! typed error directing callers at the read backend.
//!
//! # Safety
//!
//! The workspace denies `unsafe_code`; this module carries a scoped
//! allow because POSIX `mmap` is inherently a raw-pointer API, and it
//! is the **only** non-SIMD module on the rte-lint L1 allowlist. The
//! invariant that makes every `unsafe` here sound: **a `Mapping` is
//! only constructed from a non-`MAP_FAILED` pointer returned by
//! `mmap(len, PROT_READ, MAP_PRIVATE)` over a successfully opened
//! read-only file of exactly `len > 0` bytes, the pointer stays valid
//! until the paired `munmap` in `Drop`, and the mapping is never
//! written through.** Shard files are treated as immutable once sealed
//! (the same assumption the read path makes between its size check and
//! its reads); truncating a mapped shard externally is outside the
//! contract.
#![allow(unsafe_code)]

use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::dataset::Sample;
use crate::shard::{
    check_record_crc, decode_record_planes, parse_prelude, validate_header, ShardMeta,
    DEFAULT_CHUNK, PRELUDE_LEN,
};
use crate::{EdaError, ShardError};
use rte_tensor::Tensor;

/// Hand-declared POSIX bindings (the workspace builds without external
/// crates, so there is no `libc` to lean on).
#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    /// `PROT_READ`: pages may be read.
    pub const PROT_READ: c_int = 1;
    /// `MAP_PRIVATE`: a private copy-on-write view (we never write).
    pub const MAP_PRIVATE: c_int = 2;
    /// The error return of `mmap`.
    pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// An owned read-only file mapping; unmapped on drop.
#[derive(Debug)]
struct Mapping {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is read-only (PROT_READ) for its whole lifetime,
// so shared references to its bytes from any thread are sound; the
// pointer is not tied to any thread-local state.
unsafe impl Send for Mapping {}
// SAFETY: as above — concurrent reads of immutable mapped pages race
// with nothing.
unsafe impl Sync for Mapping {}

impl Mapping {
    #[cfg(unix)]
    fn map(file: &File, len: usize, path: &Path) -> Result<Mapping, ShardError> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: `file` is an open descriptor for the whole call (the
        // borrow pins it), `len` is the file's real non-zero length,
        // and PROT_READ/MAP_PRIVATE request a read-only private view —
        // the call cannot alias Rust-managed memory; a failure returns
        // MAP_FAILED, which is checked before the pointer is kept.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(ShardError::Io {
                path: path.display().to_string(),
                message: format!("mmap of {len} bytes failed"),
            });
        }
        Ok(Mapping {
            ptr: ptr as *const u8,
            len,
        })
    }

    #[cfg(not(unix))]
    fn map(_file: &File, _len: usize, path: &Path) -> Result<Mapping, ShardError> {
        Err(ShardError::Io {
            path: path.display().to_string(),
            message: "memory-mapped shard reads are not supported on this platform; \
                      use the read-based backend"
                .into(),
        })
    }

    fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` came from a successful mmap of exactly `len`
        // bytes (see `map`), stays mapped until Drop, and the pages are
        // never written through this mapping — so a shared byte slice
        // of length `len` is valid for the lifetime of `self`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: `ptr`/`len` are exactly the successful mmap's return
        // and length, unmapped exactly once (Drop runs once, the field
        // is never rebound).
        unsafe {
            sys::munmap(self.ptr as *mut _, self.len);
        }
    }
}

/// Memory-mapped random-access reader over one sealed raw shard file.
///
/// Open-time validation is identical to [`crate::shard::ShardReader`];
/// per-record CRCs are verified lazily, once per chunk, on first touch
/// (see the module docs). Reads take `&self` and are lock-free, so one
/// reader can feed any number of worker threads.
#[derive(Debug)]
pub struct MmapShardReader {
    map: Mapping,
    path: PathBuf,
    meta: ShardMeta,
    n_samples: usize,
    data_offset: usize,
    record_len: usize,
    crc_chunk: usize,
    /// One bit per `crc_chunk`-record chunk; set once the chunk's
    /// record CRCs verified clean.
    verified: Vec<AtomicU64>,
}

impl MmapShardReader {
    /// Opens and validates a shard file with the default CRC chunk size
    /// ([`DEFAULT_CHUNK`] records).
    ///
    /// # Errors
    ///
    /// Every [`crate::shard::ShardReader::open`] error, identically;
    /// additionally [`EdaError::InvalidConfig`] for compressed shards
    /// (no fixed-size records to map) and [`ShardError::Io`] if the
    /// platform cannot map files.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, EdaError> {
        Self::open_with_chunk(path, DEFAULT_CHUNK)
    }

    /// [`MmapShardReader::open`] with an explicit lazy-CRC chunk size
    /// (records verified per first touch).
    ///
    /// # Errors
    ///
    /// As [`MmapShardReader::open`], plus [`EdaError::InvalidConfig`]
    /// for a zero chunk.
    pub fn open_with_chunk(path: impl Into<PathBuf>, crc_chunk: usize) -> Result<Self, EdaError> {
        let path = path.into();
        let path_str = path.display().to_string();
        if crc_chunk == 0 {
            return Err(EdaError::InvalidConfig {
                reason: "lazy-CRC chunk size must be positive".into(),
            });
        }
        let file = File::open(&path).map_err(|e| ShardError::Io {
            path: path_str.clone(),
            message: e.to_string(),
        })?;
        let file_len = file
            .metadata()
            .map_err(|e| ShardError::Io {
                path: path_str.clone(),
                message: e.to_string(),
            })?
            .len();
        if file_len < PRELUDE_LEN as u64 {
            return Err(ShardError::Truncated {
                path: path_str,
                context: "file prelude".into(),
            }
            .into());
        }
        let map = Mapping::map(&file, file_len as usize, &path)?;
        drop(file); // The mapping outlives the descriptor.
        let bytes = map.bytes();
        let prelude: &[u8; PRELUDE_LEN] = bytes[..PRELUDE_LEN].try_into().expect("length checked");
        let (version, header_len, header_crc) = parse_prelude(prelude, file_len, &path_str)?;
        let body = &bytes[PRELUDE_LEN..PRELUDE_LEN + header_len as usize];
        let header = validate_header(version, body, header_crc, file_len, &path_str)?;
        if header.compression.is_some() {
            return Err(EdaError::InvalidConfig {
                reason: format!(
                    "{path_str} is a compressed shard; the mmap backend needs raw \
                     fixed-size records — use the read-based backend"
                ),
            });
        }
        let n_samples = header.n_samples as usize;
        let n_chunks = n_samples.div_ceil(crc_chunk);
        let verified = (0..n_chunks.div_ceil(64))
            .map(|_| AtomicU64::new(0))
            .collect();
        Ok(MmapShardReader {
            map,
            path,
            meta: header.meta,
            n_samples,
            data_offset: header.data_offset as usize,
            record_len: header.record_len as usize,
            crc_chunk,
            verified,
        })
    }

    /// The provenance header.
    pub fn meta(&self) -> &ShardMeta {
        &self.meta
    }

    /// The shard file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of sample records (always ≥ 1 after a successful open).
    pub fn len(&self) -> usize {
        self.n_samples
    }

    /// Always false: zero-sample shards fail to open.
    pub fn is_empty(&self) -> bool {
        self.n_samples == 0
    }

    /// `(channels, height, width)` of every sample.
    pub fn geometry(&self) -> (usize, usize, usize) {
        (
            self.meta.channels,
            self.meta.grid.height,
            self.meta.grid.width,
        )
    }

    /// Records covered by one lazy-CRC chunk.
    pub fn crc_chunk(&self) -> usize {
        self.crc_chunk
    }

    /// How many lazy-CRC chunks have been verified so far — the
    /// observability hook the laziness tests pin.
    pub fn verified_chunks(&self) -> usize {
        self.verified
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Zero-copy view of record `index`'s raw bytes in the mapping.
    fn record_bytes(&self, index: usize) -> &[u8] {
        let start = self.data_offset + index * self.record_len;
        &self.map.bytes()[start..start + self.record_len]
    }

    /// Verifies (once) the CRCs of every chunk overlapping `range`.
    fn ensure_verified(&self, range: &std::ops::Range<usize>) -> Result<(), EdaError> {
        let path_str = self.path.display().to_string();
        for chunk_i in range.start / self.crc_chunk..=(range.end - 1) / self.crc_chunk {
            let word = &self.verified[chunk_i / 64];
            let bit = 1u64 << (chunk_i % 64);
            if word.load(Ordering::Acquire) & bit != 0 {
                continue;
            }
            let lo = chunk_i * self.crc_chunk;
            let hi = (lo + self.crc_chunk).min(self.n_samples);
            for index in lo..hi {
                check_record_crc(self.record_bytes(index), index, &path_str)?;
            }
            // Set only after the whole chunk verified clean; a racing
            // first touch verifies redundantly, never skips.
            word.fetch_or(bit, Ordering::AcqRel);
        }
        Ok(())
    }

    fn check_range(&self, range: &std::ops::Range<usize>) -> Result<(), EdaError> {
        if range.start >= range.end || range.end > self.n_samples {
            return Err(EdaError::InvalidConfig {
                reason: format!(
                    "record range {range:?} invalid for shard of {} samples",
                    self.n_samples
                ),
            });
        }
        Ok(())
    }

    /// Reads records `range`, appending their feature and label planes
    /// (flat row-major f32s, record-major) to the output vectors —
    /// decoded straight from the mapped pages, bit-identical to
    /// [`crate::shard::ShardReader::read_batch_into`].
    ///
    /// # Errors
    ///
    /// [`EdaError::InvalidConfig`] for an empty or out-of-bounds range,
    /// [`ShardError::CrcMismatch`] / [`ShardError::Corrupt`] for
    /// damaged records.
    pub fn read_batch_into(
        &self,
        range: std::ops::Range<usize>,
        features: &mut Vec<f32>,
        labels: &mut Vec<f32>,
    ) -> Result<(), EdaError> {
        self.check_range(&range)?;
        self.ensure_verified(&range)?;
        let path_str = self.path.display().to_string();
        for index in range {
            decode_record_planes(
                self.record_bytes(index),
                &self.meta,
                index,
                &path_str,
                features,
                labels,
            )?;
        }
        Ok(())
    }

    /// Reads one record as a full [`Sample`] (design name resolved
    /// through the header table).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MmapShardReader::read_batch_into`].
    pub fn read_sample(&self, index: usize) -> Result<Sample, EdaError> {
        let (c, h, w) = self.geometry();
        let mut features = Vec::with_capacity(c * h * w);
        let mut labels = Vec::with_capacity(h * w);
        self.check_range(&(index..index + 1))?;
        self.ensure_verified(&(index..index + 1))?;
        let path_str = self.path.display().to_string();
        let design_idx = decode_record_planes(
            self.record_bytes(index),
            &self.meta,
            index,
            &path_str,
            &mut features,
            &mut labels,
        )?;
        Ok(Sample {
            features: Tensor::from_vec(features, &[c, h, w])?,
            label: Tensor::from_vec(labels, &[1, h, w])?,
            design: self.meta.designs[design_idx].clone(),
        })
    }
}
