//! Probabilistic global-routing demand and RUDY.
//!
//! Two complementary wire-demand models:
//!
//! - [`route_demand`]: star-decomposes each net around its pin median and
//!   accumulates both L-shaped routes of every two-pin connection at half
//!   weight each, split into horizontal and vertical track demand — a
//!   standard probabilistic global-router surrogate.
//! - [`rudy`]: Rectangular Uniform wire DensitY (Spindler & Johannes),
//!   the feature the paper's §4.4 names explicitly: each net spreads
//!   `HPWL / area` uniformly over its bounding box.
//!
//! [`route_demand`] drives the DRC oracle (labels); [`rudy`] and the
//! directional demand maps are model inputs (features). Labels therefore
//! correlate with — but are not identical to — the features, leaving the
//! CNN a learnable but non-trivial mapping.

use crate::netlist::Netlist;
use crate::placement::Placement;

/// Directional routing demand per gcell (row-major `height × width`).
#[derive(Debug, Clone, PartialEq)]
pub struct DemandMap {
    /// Gcell columns.
    pub width: usize,
    /// Gcell rows.
    pub height: usize,
    /// Horizontal track demand.
    pub horizontal: Vec<f64>,
    /// Vertical track demand.
    pub vertical: Vec<f64>,
}

impl DemandMap {
    /// Combined demand (`horizontal + vertical`) per gcell.
    pub fn combined(&self) -> Vec<f64> {
        self.horizontal
            .iter()
            .zip(self.vertical.iter())
            .map(|(&h, &v)| h + v)
            .collect()
    }

    /// Mean combined demand per gcell.
    pub fn mean_combined(&self) -> f64 {
        let total: f64 = self.horizontal.iter().sum::<f64>() + self.vertical.iter().sum::<f64>();
        total / (self.width * self.height).max(1) as f64
    }
}

/// Net-degree wirelength correction (Chu's FLUTE-style q-factor, linear
/// approximation): multi-pin nets need more wire than their star
/// decomposition suggests.
fn degree_weight(degree: usize) -> f64 {
    if degree <= 3 {
        1.0
    } else {
        1.0 + 0.08 * (degree as f64 - 3.0)
    }
}

/// Computes directional routing demand via probabilistic L-routing of the
/// star decomposition of every net.
///
/// # Panics
///
/// Panics (debug builds) if the placement does not cover the netlist.
pub fn route_demand(netlist: &Netlist, placement: &Placement) -> DemandMap {
    let (w, h) = (placement.grid.width, placement.grid.height);
    let mut horizontal = vec![0.0f64; w * h];
    let mut vertical = vec![0.0f64; w * h];
    for net in &netlist.nets {
        let deg = net.degree();
        let weight = degree_weight(deg);
        // Median pin location = star center.
        let mut xs: Vec<usize> = net
            .cells
            .iter()
            .map(|c| placement.x[c.0 as usize] as usize)
            .collect();
        let mut ys: Vec<usize> = net
            .cells
            .iter()
            .map(|c| placement.y[c.0 as usize] as usize)
            .collect();
        xs.sort_unstable();
        ys.sort_unstable();
        let (cx, cy) = (xs[deg / 2], ys[deg / 2]);
        for pin in &net.cells {
            let px = placement.x[pin.0 as usize] as usize;
            let py = placement.y[pin.0 as usize] as usize;
            if px == cx && py == cy {
                continue;
            }
            // L-shape 1: horizontal at py, then vertical at cx (half weight).
            // L-shape 2: vertical at px, then horizontal at cy (half weight).
            let half = 0.5 * weight;
            add_h_segment(&mut horizontal, w, py, px, cx, half);
            add_v_segment(&mut vertical, w, cx, py, cy, half);
            add_v_segment(&mut vertical, w, px, py, cy, half);
            add_h_segment(&mut horizontal, w, cy, px, cx, half);
        }
    }
    DemandMap {
        width: w,
        height: h,
        horizontal,
        vertical,
    }
}

fn add_h_segment(map: &mut [f64], w: usize, row: usize, x0: usize, x1: usize, weight: f64) {
    let (lo, hi) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
    for x in lo..=hi {
        map[row * w + x] += weight;
    }
}

fn add_v_segment(map: &mut [f64], w: usize, col: usize, y0: usize, y1: usize, weight: f64) {
    let (lo, hi) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
    for y in lo..=hi {
        map[y * w + col] += weight;
    }
}

/// Directional RUDY: the horizontal and vertical wire-density components,
/// each spread uniformly over the net bounding box. A net of bbox
/// `bw × bh` contributes `(bw−1)/area` horizontal and `(bh−1)/area`
/// vertical demand — the classic fly-line estimate of which routing
/// direction a net will load.
///
/// These are *features* (§4.4's fly-lines): deliberately weaker than the
/// L-routed demand the DRC oracle uses for labels, leaving the estimator
/// a real mapping to learn.
pub fn rudy_directional(netlist: &Netlist, placement: &Placement) -> (Vec<f64>, Vec<f64>) {
    let (w, h) = (placement.grid.width, placement.grid.height);
    let mut hmap = vec![0.0f64; w * h];
    let mut vmap = vec![0.0f64; w * h];
    for net in &netlist.nets {
        let mut x0 = usize::MAX;
        let mut x1 = 0usize;
        let mut y0 = usize::MAX;
        let mut y1 = 0usize;
        for c in &net.cells {
            let px = placement.x[c.0 as usize] as usize;
            let py = placement.y[c.0 as usize] as usize;
            x0 = x0.min(px);
            x1 = x1.max(px);
            y0 = y0.min(py);
            y1 = y1.max(py);
        }
        let bw = (x1 - x0 + 1) as f64;
        let bh = (y1 - y0 + 1) as f64;
        let area = bw * bh;
        let weight = degree_weight(net.degree());
        let hd = weight * (bw - 1.0) / area;
        let vd = weight * (bh - 1.0) / area;
        if hd <= 0.0 && vd <= 0.0 {
            continue;
        }
        for y in y0..=y1 {
            for x in x0..=x1 {
                hmap[y * w + x] += hd;
                vmap[y * w + x] += vd;
            }
        }
    }
    (hmap, vmap)
}

/// RUDY wire-density map: each net adds `HPWL / bbox_area` uniformly over
/// its bounding box (row-major `height × width`).
pub fn rudy(netlist: &Netlist, placement: &Placement) -> Vec<f64> {
    let (w, h) = (placement.grid.width, placement.grid.height);
    let mut map = vec![0.0f64; w * h];
    for net in &netlist.nets {
        let mut x0 = usize::MAX;
        let mut x1 = 0usize;
        let mut y0 = usize::MAX;
        let mut y1 = 0usize;
        for c in &net.cells {
            let px = placement.x[c.0 as usize] as usize;
            let py = placement.y[c.0 as usize] as usize;
            x0 = x0.min(px);
            x1 = x1.max(px);
            y0 = y0.min(py);
            y1 = y1.max(py);
        }
        let bw = (x1 - x0 + 1) as f64;
        let bh = (y1 - y0 + 1) as f64;
        let hpwl = (bw - 1.0) + (bh - 1.0);
        if hpwl <= 0.0 {
            continue; // Single-gcell net: no wire demand.
        }
        let density = degree_weight(net.degree()) * hpwl / (bw * bh);
        for y in y0..=y1 {
            for x in x0..=x1 {
                map[y * w + x] += density;
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{generate_netlist, Cell, CellId, Net, NetId};
    use crate::placement::{place, GridDims, PlacementConfig};
    use crate::Family;

    /// Hand-built two-cell netlist with one net.
    fn two_pin_fixture(a: (u16, u16), b: (u16, u16)) -> (Netlist, Placement) {
        let cells = vec![
            Cell {
                id: CellId(0),
                pins: 2,
                is_macro: false,
                cluster: 0,
            },
            Cell {
                id: CellId(1),
                pins: 2,
                is_macro: false,
                cluster: 0,
            },
        ];
        let nets = vec![Net {
            id: NetId(0),
            cells: vec![CellId(0), CellId(1)],
        }];
        let nl = Netlist {
            name: "fixture".into(),
            family: Family::Iscas89,
            cells,
            nets,
            cluster_count: 1,
        };
        let pl = Placement {
            grid: GridDims::new(8, 8),
            x: vec![a.0, b.0],
            y: vec![a.1, b.1],
            macro_rects: vec![],
        };
        (nl, pl)
    }

    #[test]
    fn straight_net_demand_lies_on_its_row() {
        let (nl, pl) = two_pin_fixture((1, 3), (5, 3));
        let d = route_demand(&nl, &pl);
        // Median of {1,5} = 5 (index 1), {3,3} = 3; only pin (1,3) routes.
        // Both L options coincide on row 3, columns 1..=5.
        for x in 1..=5 {
            assert!(d.horizontal[3 * 8 + x] > 0.0, "col {x}");
        }
        // No vertical demand beyond the degenerate segments at the pins.
        let v_total: f64 = d.vertical.iter().sum();
        let v_on_path: f64 = d.vertical[3 * 8 + 1] + d.vertical[3 * 8 + 5];
        assert!((v_total - v_on_path).abs() < 1e-12);
    }

    #[test]
    fn l_shapes_split_weight() {
        let (nl, pl) = two_pin_fixture((0, 0), (4, 4));
        let d = route_demand(&nl, &pl);
        // Corner gcells of the two L options get half weight each; demand
        // is symmetric under swapping the two L's.
        let h_total: f64 = d.horizontal.iter().sum();
        let v_total: f64 = d.vertical.iter().sum();
        assert!(h_total > 0.0 && v_total > 0.0);
        assert!((h_total - v_total).abs() < 1e-9, "{h_total} vs {v_total}");
    }

    #[test]
    fn rudy_uniform_over_bbox() {
        let (nl, pl) = two_pin_fixture((2, 1), (5, 3));
        let map = rudy(&nl, &pl);
        // bbox 4×3, HPWL = 3+2 = 5 → density 5/12 in every bbox gcell.
        let expect = 5.0 / 12.0;
        for y in 1..=3 {
            for x in 2..=5 {
                assert!((map[y * 8 + x] - expect).abs() < 1e-12);
            }
        }
        assert_eq!(map[0], 0.0);
    }

    #[test]
    fn single_gcell_net_adds_nothing() {
        let (nl, pl) = two_pin_fixture((3, 3), (3, 3));
        assert!(rudy(&nl, &pl).iter().all(|&v| v == 0.0));
        let d = route_demand(&nl, &pl);
        assert_eq!(d.mean_combined(), 0.0);
    }

    #[test]
    fn demand_scales_with_design_size() {
        let small = generate_netlist(Family::Iscas89, 1).unwrap();
        let large = generate_netlist(Family::Ispd15, 1).unwrap();
        let cfg = PlacementConfig::new(16, 16, 3);
        let ps = place(&small, &cfg).unwrap();
        let pl = place(&large, &cfg).unwrap();
        let ds = route_demand(&small, &ps).mean_combined();
        let dl = route_demand(&large, &pl).mean_combined();
        assert!(
            dl > ds * 1.5,
            "ISPD'15 demand {dl} should dwarf ISCAS'89 {ds}"
        );
    }

    #[test]
    fn degree_weight_monotone() {
        assert_eq!(degree_weight(2), 1.0);
        assert_eq!(degree_weight(3), 1.0);
        assert!(degree_weight(8) > degree_weight(4));
    }

    #[test]
    fn rudy_correlates_with_routed_demand() {
        // The feature (RUDY) must be informative about the demand that
        // drives labels: check positive correlation on a real design.
        let nl = generate_netlist(Family::Itc99, 9).unwrap();
        let pl = place(&nl, &PlacementConfig::new(16, 16, 4)).unwrap();
        let r = rudy(&nl, &pl);
        let d = route_demand(&nl, &pl).combined();
        let n = r.len() as f64;
        let (mr, md) = (r.iter().sum::<f64>() / n, d.iter().sum::<f64>() / n);
        let mut cov = 0.0;
        let mut vr = 0.0;
        let mut vd = 0.0;
        for i in 0..r.len() {
            cov += (r[i] - mr) * (d[i] - md);
            vr += (r[i] - mr) * (r[i] - mr);
            vd += (d[i] - md) * (d[i] - md);
        }
        let corr = cov / (vr.sqrt() * vd.sqrt());
        assert!(corr > 0.5, "RUDY/demand correlation {corr}");
    }
}

#[cfg(test)]
mod directional_tests {
    use super::*;
    use crate::netlist::generate_netlist;
    use crate::placement::{place, PlacementConfig};
    use crate::Family;

    #[test]
    fn directional_components_sum_to_rudy() {
        let nl = generate_netlist(Family::Itc99, 3).unwrap();
        let pl = place(&nl, &PlacementConfig::new(16, 16, 3)).unwrap();
        let total = rudy(&nl, &pl);
        let (h, v) = rudy_directional(&nl, &pl);
        for i in 0..total.len() {
            assert!(
                (total[i] - (h[i] + v[i])).abs() < 1e-9,
                "gcell {i}: {} vs {} + {}",
                total[i],
                h[i],
                v[i]
            );
        }
    }

    #[test]
    fn wide_net_loads_horizontal() {
        // A 2-pin net spanning columns only must produce zero vertical RUDY.
        use crate::netlist::{Cell, CellId, Net, NetId, Netlist};
        use crate::placement::{GridDims, Placement};
        let nl = Netlist {
            name: "wide".into(),
            family: Family::Iscas89,
            cells: vec![
                Cell {
                    id: CellId(0),
                    pins: 2,
                    is_macro: false,
                    cluster: 0,
                },
                Cell {
                    id: CellId(1),
                    pins: 2,
                    is_macro: false,
                    cluster: 0,
                },
            ],
            nets: vec![Net {
                id: NetId(0),
                cells: vec![CellId(0), CellId(1)],
            }],
            cluster_count: 1,
        };
        let pl = Placement {
            grid: GridDims::new(8, 8),
            x: vec![1, 6],
            y: vec![4, 4],
            macro_rects: vec![],
        };
        let (h, v) = rudy_directional(&nl, &pl);
        assert!(h.iter().sum::<f64>() > 0.0);
        assert_eq!(v.iter().sum::<f64>(), 0.0);
    }
}
