//! DRC hotspot oracle (ground-truth label generation).
//!
//! The paper's labels come from Innovus detailed routing + DRC checking.
//! This oracle substitutes a supply/demand model: a gcell becomes a DRC
//! hotspot when its smoothed routing demand (plus a pin-accessibility
//! term and macro-boundary pressure) exceeds the design's routing
//! capacity. Capacity is *relative* to the design's mean demand — real
//! routers also scale track supply with design size via die sizing — with
//! family-specific tightness, per-design jitter and label noise, so label
//! statistics differ across families the way the paper's clients differ.

use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

use crate::congestion::DemandMap;
use crate::netlist::Netlist;
use crate::placement::Placement;
use crate::EdaError;

/// Extra congestion pressure on gcells adjacent to macro blockages
/// (routes detour around blockages).
const MACRO_EDGE_PRESSURE: f64 = 0.15;

/// Standard deviation of the per-design direction-affinity jitter: each
/// design's metal usage deviates systematically from its family norm.
/// Because the jitter is stable across all placements of one design, a
/// model trained on few designs learns *their* idiosyncrasies and pays on
/// unseen designs — the generalization gap that collaborative training
/// closes (clients jointly see many more designs).
const DESIGN_AFFINITY_JITTER: f64 = 0.16;

/// Amplitude (in overflow-score units) of the low-frequency congestion
/// field added per placement: the component of detailed-routing outcomes
/// that no placement-time feature can predict. This bounds achievable AUC
/// the way real DRC data does — smoothly, not by pointwise label flips.
const CHAOS_AMPLITUDE: f64 = 0.38;

/// Coarse grid extent of the correlated congestion field.
const CHAOS_GRID: usize = 4;

/// Per-design systematic horizontal-affinity: family norm plus a stable
/// per-design deviation derived from the design name.
fn design_h_affinity(netlist: &Netlist) -> f64 {
    let profile = netlist.family.profile();
    // Hash the design name into a deterministic standard-normal deviate.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in netlist.name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    let mut rng = Xoshiro256::seed_from(hash);
    (profile.h_affinity + DESIGN_AFFINITY_JITTER * rng.normal_f64()).clamp(0.05, 0.95)
}

/// Smooth random field: `CHAOS_GRID × CHAOS_GRID` Gaussian knots,
/// bilinearly interpolated to `w × h`.
fn correlated_field(w: usize, h: usize, rng: &mut Xoshiro256) -> Vec<f64> {
    let g = CHAOS_GRID;
    let knots: Vec<f64> = (0..g * g).map(|_| rng.normal_f64()).collect();
    let mut field = vec![0.0f64; w * h];
    for y in 0..h {
        // Map pixel to knot coordinates (cell centers).
        let fy = (y as f64 + 0.5) / h as f64 * (g - 1) as f64;
        let y0 = (fy.floor() as usize).min(g - 2);
        let ty = fy - y0 as f64;
        for x in 0..w {
            let fx = (x as f64 + 0.5) / w as f64 * (g - 1) as f64;
            let x0 = (fx.floor() as usize).min(g - 2);
            let tx = fx - x0 as f64;
            let k00 = knots[y0 * g + x0];
            let k01 = knots[y0 * g + x0 + 1];
            let k10 = knots[(y0 + 1) * g + x0];
            let k11 = knots[(y0 + 1) * g + x0 + 1];
            let top = k00 * (1.0 - tx) + k01 * tx;
            let bot = k10 * (1.0 - tx) + k11 * tx;
            field[y * w + x] = top * (1.0 - ty) + bot * ty;
        }
    }
    field
}

/// Computes the `(1, H, W)` binary hotspot label map for a placement.
///
/// `label_rng` supplies the per-design capacity jitter and tile-flip
/// noise; pass a stream derived from the placement seed for reproducible
/// labels.
///
/// # Errors
///
/// Returns [`EdaError::InvalidConfig`] if `demand` does not match the
/// placement grid.
pub fn drc_hotspots(
    netlist: &Netlist,
    placement: &Placement,
    demand: &DemandMap,
    label_rng: &mut Xoshiro256,
) -> Result<Tensor, EdaError> {
    let (w, h) = (placement.grid.width, placement.grid.height);
    if demand.width != w || demand.height != h {
        return Err(EdaError::InvalidConfig {
            reason: format!(
                "demand map {}×{} does not match grid {w}×{h}",
                demand.width, demand.height
            ),
        });
    }
    let profile = netlist.family.profile();

    // Direction-weighted demand: families load their routing layers
    // differently (h_affinity) and each design deviates systematically
    // from its family norm — the per-family and per-design twists a
    // cross-design model must reconcile.
    let affinity = design_h_affinity(netlist);
    let wh = 2.0 * affinity;
    let wv = 2.0 * (1.0 - affinity);
    let weighted: Vec<f64> = demand
        .horizontal
        .iter()
        .zip(demand.vertical.iter())
        .map(|(&hd, &vd)| wh * hd + wv * vd)
        .collect();

    // Per-design effective capacity: relative tightness × mean weighted
    // demand, jittered per design run.
    let mean = (weighted.iter().sum::<f64>() / (w * h) as f64).max(1e-9);
    let jitter = 1.0 + profile.capacity_jitter * label_rng.normal_f64();
    let capacity = (profile.route_capacity / 2.0) * mean * jitter.max(0.3);

    let pins = placement.pin_density(netlist);
    let pin_mean = pins.iter().sum::<f64>() / (w * h) as f64;
    let blockage = placement.blockage_mask();

    // Raw overflow score per gcell.
    let mut score = vec![0.0f64; w * h];
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            let mut s = weighted[i] / capacity;
            if pin_mean > 0.0 {
                s += profile.pin_weight * pins[i] / pin_mean;
            }
            // Macro boundary pressure: free gcell touching a blockage.
            if blockage[i] == 0.0 {
                let near_macro = neighbors(x, y, w, h)
                    .into_iter()
                    .flatten()
                    .any(|(nx, ny)| blockage[ny * w + nx] > 0.0);
                if near_macro {
                    s += MACRO_EDGE_PRESSURE;
                }
            } else {
                s = 0.0; // Inside a macro there is nothing to route.
            }
            score[i] = s;
        }
    }

    // 3×3 binomial blur: DRC violations cluster spatially.
    let mut blurred = blur3(&score, w, h);

    // Low-frequency unpredictable congestion (detailed-routing effects).
    let chaos = correlated_field(w, h, label_rng);
    for (b, c) in blurred.iter_mut().zip(chaos.iter()) {
        *b += CHAOS_AMPLITUDE * c;
    }

    let mut label = Tensor::zeros(&[1, h, w]);
    for i in 0..w * h {
        let mut hot = blurred[i] > profile.hotspot_threshold;
        if label_rng.bernoulli(profile.label_noise) {
            hot = !hot;
        }
        if blockage[i] > 0.0 {
            hot = false;
        }
        label.data_mut()[i] = if hot { 1.0 } else { 0.0 };
    }
    Ok(label)
}

fn neighbors(x: usize, y: usize, w: usize, h: usize) -> [Option<(usize, usize)>; 4] {
    [
        (x > 0).then(|| (x - 1, y)),
        (x + 1 < w).then(|| (x + 1, y)),
        (y > 0).then(|| (x, y - 1)),
        (y + 1 < h).then(|| (x, y + 1)),
    ]
}

/// 3×3 binomial blur with edge clamping.
fn blur3(src: &[f64], w: usize, h: usize) -> Vec<f64> {
    const K: [[f64; 3]; 3] = [[1.0, 2.0, 1.0], [2.0, 4.0, 2.0], [1.0, 2.0, 1.0]];
    let mut out = vec![0.0; w * h];
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            let mut wsum = 0.0;
            for (dy, row) in K.iter().enumerate() {
                for (dx, &kv) in row.iter().enumerate() {
                    let sy = y as isize + dy as isize - 1;
                    let sx = x as isize + dx as isize - 1;
                    if sy < 0 || sy >= h as isize || sx < 0 || sx >= w as isize {
                        continue;
                    }
                    acc += kv * src[sy as usize * w + sx as usize];
                    wsum += kv;
                }
            }
            out[y * w + x] = acc / wsum;
        }
    }
    out
}

/// Fraction of hotspot tiles in a `(1, H, W)` label map.
pub fn hotspot_rate(label: &Tensor) -> f64 {
    if label.numel() == 0 {
        return 0.0;
    }
    label.data().iter().filter(|&&v| v > 0.5).count() as f64 / label.numel() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::route_demand;
    use crate::netlist::generate_netlist;
    use crate::placement::{place, PlacementConfig};
    use crate::Family;

    fn labels_for(family: Family, seed: u64) -> (Tensor, f64) {
        let nl = generate_netlist(family, seed).unwrap();
        let pl = place(&nl, &PlacementConfig::new(16, 16, seed)).unwrap();
        let d = route_demand(&nl, &pl);
        let mut rng = Xoshiro256::seed_from(seed ^ 0x1AB);
        let l = drc_hotspots(&nl, &pl, &d, &mut rng).unwrap();
        let r = hotspot_rate(&l);
        (l, r)
    }

    #[test]
    fn labels_are_binary_and_shaped() {
        let (l, _) = labels_for(Family::Itc99, 1);
        assert_eq!(l.shape().dims(), &[1, 16, 16]);
        assert!(l.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn hotspot_rate_is_sane_for_all_families() {
        for family in Family::ALL {
            let mut total = 0.0;
            let n = 6;
            for seed in 0..n {
                total += labels_for(family, seed).1;
            }
            let rate = total / n as f64;
            assert!(
                (0.01..0.55).contains(&rate),
                "{family}: hotspot rate {rate}"
            );
        }
    }

    #[test]
    fn tighter_families_have_more_hotspots() {
        let avg =
            |family: Family| -> f64 { (0..8).map(|s| labels_for(family, s).1).sum::<f64>() / 8.0 };
        let easy = avg(Family::Iscas89);
        let hard = avg(Family::Ispd15);
        assert!(
            hard > easy,
            "ISPD'15 rate {hard} should exceed ISCAS'89 {easy}"
        );
    }

    #[test]
    fn deterministic_given_rng() {
        let nl = generate_netlist(Family::Iwls05, 3).unwrap();
        let pl = place(&nl, &PlacementConfig::new(16, 16, 3)).unwrap();
        let d = route_demand(&nl, &pl);
        let a = drc_hotspots(&nl, &pl, &d, &mut Xoshiro256::seed_from(9)).unwrap();
        let b = drc_hotspots(&nl, &pl, &d, &mut Xoshiro256::seed_from(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn hotspots_track_demand() {
        // Tiles labelled hot must have systematically higher demand.
        let nl = generate_netlist(Family::Itc99, 5).unwrap();
        let pl = place(&nl, &PlacementConfig::new(16, 16, 5)).unwrap();
        let d = route_demand(&nl, &pl);
        let mut rng = Xoshiro256::seed_from(1);
        let l = drc_hotspots(&nl, &pl, &d, &mut rng).unwrap();
        let combined = d.combined();
        let mut hot_sum = 0.0;
        let mut hot_n = 0.0;
        let mut cold_sum = 0.0;
        let mut cold_n = 0.0;
        for i in 0..combined.len() {
            if l.data()[i] > 0.5 {
                hot_sum += combined[i];
                hot_n += 1.0;
            } else {
                cold_sum += combined[i];
                cold_n += 1.0;
            }
        }
        if hot_n > 0.0 && cold_n > 0.0 {
            assert!(
                hot_sum / hot_n > cold_sum / cold_n,
                "hot mean demand must exceed cold"
            );
        }
    }

    #[test]
    fn demand_grid_mismatch_is_error() {
        let nl = generate_netlist(Family::Itc99, 6).unwrap();
        let pl = place(&nl, &PlacementConfig::new(16, 16, 6)).unwrap();
        let mut d = route_demand(&nl, &pl);
        d.width = 8;
        let mut rng = Xoshiro256::seed_from(0);
        assert!(drc_hotspots(&nl, &pl, &d, &mut rng).is_err());
    }

    #[test]
    fn blur_preserves_constant_fields() {
        let src = vec![2.5; 25];
        let out = blur3(&src, 5, 5);
        assert!(out.iter().all(|&v| (v - 2.5).abs() < 1e-12));
    }
}
