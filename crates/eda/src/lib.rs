//! Synthetic EDA data substrate for the decentralized routability
//! estimation reproduction.
//!
//! The paper trains on 7,131 placements of 74 real designs (ISCAS'89,
//! ITC'99, IWLS'05, ISPD'15) pushed through Design Compiler + Innovus on
//! NanGate45. Neither the commercial flow nor the resulting label data is
//! redistributable, so this crate synthesizes the closest statistical
//! equivalent end to end:
//!
//! 1. [`Family`] — per-benchmark-suite generation profiles with
//!    deliberately *different* distributions (cell counts, Rent exponent,
//!    fanout, macro fraction, routing capacity). Inter-family difference is
//!    the source of the client-level data heterogeneity the paper's
//!    federated experiments exercise.
//! 2. [`netlist`] — clustered random netlists honoring the family profile.
//! 3. [`placement`] — a seeded anchor-plus-spreading placer; different
//!    [`placement::PlacementConfig`]s yield the "multiple placement
//!    solutions per design" of the paper's §5.1.
//! 4. [`congestion`] — probabilistic L-shape global routing demand plus
//!    RUDY, the supply/demand model behind both features and labels.
//! 5. [`features`] — the c-channel input tensor (cell density, pin
//!    density, macro blockage, RUDY, fly-lines), following the feature
//!    menu of §4.4.
//! 6. [`drc`] — ground-truth hotspot maps from capacity overflow with
//!    family-specific capacity and noise.
//! 7. [`dataset`] / [`corpus`] — per-client datasets reproducing the
//!    paper's Table 2 design/placement assignment.
//!
//! # Example
//!
//! ```
//! use rte_eda::corpus::{CorpusConfig, generate_corpus};
//!
//! let mut config = CorpusConfig::tiny(); // minimal counts for tests
//! config.seed = 7;
//! let corpus = generate_corpus(&config)?;
//! assert_eq!(corpus.clients.len(), 9);
//! # Ok::<(), rte_eda::EdaError>(())
//! ```

pub mod congestion;
pub mod corpus;
pub mod dataset;
pub mod drc;
mod error;
mod family;
pub mod features;
pub mod interchange;
pub mod netlist;
pub mod placement;
pub mod stats;

pub use error::EdaError;
pub use family::{Family, FamilyProfile};
