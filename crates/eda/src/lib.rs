//! Synthetic EDA data substrate for the decentralized routability
//! estimation reproduction.
//!
//! The paper trains on 7,131 placements of 74 real designs (ISCAS'89,
//! ITC'99, IWLS'05, ISPD'15) pushed through Design Compiler + Innovus on
//! NanGate45. Neither the commercial flow nor the resulting label data is
//! redistributable, so this crate synthesizes the closest statistical
//! equivalent end to end:
//!
//! 1. [`Family`] — per-benchmark-suite generation profiles with
//!    deliberately *different* distributions (cell counts, Rent exponent,
//!    fanout, macro fraction, routing capacity). Inter-family difference is
//!    the source of the client-level data heterogeneity the paper's
//!    federated experiments exercise.
//! 2. [`netlist`] — clustered random netlists honoring the family profile.
//! 3. [`placement`] — a seeded anchor-plus-spreading placer; different
//!    [`placement::PlacementConfig`]s yield the "multiple placement
//!    solutions per design" of the paper's §5.1.
//! 4. [`congestion`] — probabilistic L-shape global routing demand plus
//!    RUDY, the supply/demand model behind both features and labels.
//! 5. [`features`] — the c-channel input tensor (cell density, pin
//!    density, macro blockage, RUDY, fly-lines), following the feature
//!    menu of §4.4.
//! 6. [`drc`] — ground-truth hotspot maps from capacity overflow with
//!    family-specific capacity and noise.
//! 7. [`dataset`] / [`corpus`] — per-client datasets reproducing the
//!    paper's Table 2 design/placement assignment.
//! 8. [`shard`] — the streaming out-of-core path: the same corpus
//!    generated straight into versioned, CRC'd binary shard files (one
//!    per `(client, split)`) with bounded memory, and read back in
//!    seekable chunks.
//!
//! # Example: in-memory generation
//!
//! ```
//! use rte_eda::corpus::{CorpusConfig, generate_corpus};
//!
//! let mut config = CorpusConfig::tiny(); // minimal counts for tests
//! config.seed = 7;
//! let corpus = generate_corpus(&config)?;
//! assert_eq!(corpus.clients.len(), 9);
//! # Ok::<(), rte_eda::EdaError>(())
//! ```
//!
//! # Example: corpus write → stream read round trip
//!
//! The streaming path writes the *same bytes* the in-memory generator
//! would produce — here client 2's first training sample is read back
//! from disk and compared bit for bit:
//!
//! ```
//! use rte_eda::corpus::{generate_corpus, CorpusConfig};
//! use rte_eda::shard::{CorpusReader, CorpusWriter};
//!
//! let dir = std::env::temp_dir().join(format!("rte-doc-{}", std::process::id()));
//! let config = CorpusConfig::tiny();
//!
//! // Stream the Table 2 corpus to per-(client, split) shard files,
//! // holding at most 8 placements in memory at a time.
//! CorpusWriter::new(&dir).with_chunk(8).write(&config)?;
//!
//! // Open the directory and stream a chunk back.
//! let reader = CorpusReader::open(&dir)?;
//! assert_eq!(reader.clients().len(), 9);
//! let first = reader.clients()[1].train.read_sample(0)?;
//!
//! // Bit-identical to the in-memory generator's output.
//! let corpus = generate_corpus(&config)?;
//! assert_eq!(first, corpus.clients[1].train.samples()[0]);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), rte_eda::EdaError>(())
//! ```

// The workspace denies `unsafe_code`; the single scoped exception in
// this crate is [`mmap`], which carries its own `#![allow]` plus the
// rte-lint L1 allowlist entry and per-site SAFETY comments.
// Belt and braces: the workspace lint table already warns on missing
// docs, but this crate's public surface is the streaming format other
// tools must interoperate with, so the requirement is restated locally.
#![warn(missing_docs)]

pub mod congestion;
pub mod corpus;
pub mod dataset;
pub mod drc;
mod error;
mod family;
pub mod features;
pub mod interchange;
pub mod mmap;
pub mod netlist;
pub mod placement;
pub mod shard;
pub mod stats;

pub use error::{EdaError, ShardError};
pub use family::{Family, FamilyMix, FamilyProfile};
