//! Text interchange format for synthetic designs.
//!
//! A compact, line-based format (in the spirit of DEF bookshelf files)
//! so generated designs and placements can be dumped, inspected, diffed
//! and re-imported:
//!
//! ```text
//! rtedesign 1
//! name b_0000002a
//! family ITC99
//! clusters 7
//! cells 850
//! c <pins> <is_macro 0|1> <cluster>     # one per cell, ids implicit
//! nets 930
//! n <cell_id> <cell_id> ...             # one per net, ids implicit
//! grid 16 16                            # optional placement section
//! p <x> <y>                             # one per cell
//! macros 2
//! m <x0> <y0> <x1> <y1>                 # one per macro rect
//! end
//! ```

use std::io::{self, BufRead, Write};

use crate::netlist::{Cell, CellId, Net, NetId, Netlist};
use crate::placement::{GridDims, MacroRect, Placement};
use crate::{EdaError, Family};

fn family_token(family: Family) -> &'static str {
    match family {
        Family::Iscas89 => "ISCAS89",
        Family::Itc99 => "ITC99",
        Family::Iwls05 => "IWLS05",
        Family::Ispd15 => "ISPD15",
    }
}

fn family_from_token(token: &str) -> Option<Family> {
    match token {
        "ISCAS89" => Some(Family::Iscas89),
        "ITC99" => Some(Family::Itc99),
        "IWLS05" => Some(Family::Iwls05),
        "ISPD15" => Some(Family::Ispd15),
        _ => None,
    }
}

/// Writes a design (and optionally its placement) in the interchange
/// format. Pass `&mut writer` to keep using the writer afterwards.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_design<W: Write>(
    mut writer: W,
    netlist: &Netlist,
    placement: Option<&Placement>,
) -> io::Result<()> {
    writeln!(writer, "rtedesign 1")?;
    writeln!(writer, "name {}", netlist.name)?;
    writeln!(writer, "family {}", family_token(netlist.family))?;
    writeln!(writer, "clusters {}", netlist.cluster_count)?;
    writeln!(writer, "cells {}", netlist.cells.len())?;
    for cell in &netlist.cells {
        writeln!(
            writer,
            "c {} {} {}",
            cell.pins,
            u8::from(cell.is_macro),
            cell.cluster
        )?;
    }
    writeln!(writer, "nets {}", netlist.nets.len())?;
    for net in &netlist.nets {
        write!(writer, "n")?;
        for c in &net.cells {
            write!(writer, " {}", c.0)?;
        }
        writeln!(writer)?;
    }
    if let Some(p) = placement {
        writeln!(writer, "grid {} {}", p.grid.width, p.grid.height)?;
        for i in 0..p.x.len() {
            writeln!(writer, "p {} {}", p.x[i], p.y[i])?;
        }
        writeln!(writer, "macros {}", p.macro_rects.len())?;
        for r in &p.macro_rects {
            writeln!(writer, "m {} {} {} {}", r.x0, r.y0, r.x1, r.y1)?;
        }
    }
    writeln!(writer, "end")?;
    Ok(())
}

struct LineReader<R: BufRead> {
    inner: R,
    line_no: usize,
    buf: String,
}

impl<R: BufRead> LineReader<R> {
    fn next_line(&mut self) -> Result<Option<&str>, EdaError> {
        loop {
            self.buf.clear();
            let n = self
                .inner
                .read_line(&mut self.buf)
                .map_err(|e| parse_err(self.line_no, &format!("i/o error: {e}")))?;
            self.line_no += 1;
            if n == 0 {
                return Ok(None);
            }
            // Strip trailing comments and whitespace; skip blank lines.
            let line = match self.buf.find('#') {
                Some(idx) => &self.buf[..idx],
                None => &self.buf,
            }
            .trim();
            if !line.is_empty() {
                // Work around borrow rules: remember trimmed range.
                let start = line.as_ptr() as usize - self.buf.as_ptr() as usize;
                let end = start + line.len();
                return Ok(Some(&self.buf[start..end]));
            }
        }
    }
}

fn parse_err(line: usize, reason: &str) -> EdaError {
    EdaError::InvalidConfig {
        reason: format!("interchange parse error at line {line}: {reason}"),
    }
}

fn expect_keyword<'a>(
    line: Option<&'a str>,
    keyword: &str,
    line_no: usize,
) -> Result<&'a str, EdaError> {
    let line = line.ok_or_else(|| parse_err(line_no, &format!("expected `{keyword}`, got EOF")))?;
    line.strip_prefix(keyword)
        .map(str::trim)
        .ok_or_else(|| parse_err(line_no, &format!("expected `{keyword}`, got `{line}`")))
}

fn parse_num<T: std::str::FromStr>(token: &str, line_no: usize) -> Result<T, EdaError> {
    token
        .parse::<T>()
        .map_err(|_| parse_err(line_no, &format!("bad number `{token}`")))
}

/// Reads a design written by [`write_design`]. Pass `&mut reader` to keep
/// using the reader afterwards.
///
/// # Errors
///
/// Returns [`EdaError::InvalidConfig`] with a line-numbered message for
/// any structural violation.
pub fn read_design<R: BufRead>(reader: R) -> Result<(Netlist, Option<Placement>), EdaError> {
    let mut r = LineReader {
        inner: reader,
        line_no: 0,
        buf: String::new(),
    };
    let header = r.next_line()?.map(str::to_owned);
    if header.as_deref() != Some("rtedesign 1") {
        return Err(parse_err(r.line_no, "missing `rtedesign 1` header"));
    }
    let name_line = r.next_line()?.map(str::to_owned);
    let name = expect_keyword(name_line.as_deref(), "name", r.line_no)?.to_owned();
    let fam_line = r.next_line()?.map(str::to_owned);
    let fam_token = expect_keyword(fam_line.as_deref(), "family", r.line_no)?.to_owned();
    let family = family_from_token(&fam_token)
        .ok_or_else(|| parse_err(r.line_no, &format!("unknown family `{fam_token}`")))?;
    let clusters_line = r.next_line()?.map(str::to_owned);
    let cluster_count: usize = parse_num(
        expect_keyword(clusters_line.as_deref(), "clusters", r.line_no)?,
        r.line_no,
    )?;
    let cells_line = r.next_line()?.map(str::to_owned);
    let n_cells: usize = parse_num(
        expect_keyword(cells_line.as_deref(), "cells", r.line_no)?,
        r.line_no,
    )?;
    if n_cells > 10_000_000 {
        return Err(parse_err(r.line_no, "implausible cell count"));
    }
    let mut cells = Vec::with_capacity(n_cells);
    for i in 0..n_cells {
        let line = r.next_line()?.map(str::to_owned);
        let body = expect_keyword(line.as_deref(), "c", r.line_no)?.to_owned();
        let mut it = body.split_whitespace();
        let pins: u8 = parse_num(it.next().unwrap_or(""), r.line_no)?;
        let is_macro: u8 = parse_num(it.next().unwrap_or(""), r.line_no)?;
        let cluster: u16 = parse_num(it.next().unwrap_or(""), r.line_no)?;
        cells.push(Cell {
            id: CellId(i as u32),
            pins,
            is_macro: is_macro != 0,
            cluster,
        });
    }
    let nets_line = r.next_line()?.map(str::to_owned);
    let n_nets: usize = parse_num(
        expect_keyword(nets_line.as_deref(), "nets", r.line_no)?,
        r.line_no,
    )?;
    let mut nets = Vec::with_capacity(n_nets);
    for i in 0..n_nets {
        let line = r.next_line()?.map(str::to_owned);
        let body = expect_keyword(line.as_deref(), "n", r.line_no)?.to_owned();
        let mut net_cells = Vec::new();
        for token in body.split_whitespace() {
            let id: u32 = parse_num(token, r.line_no)?;
            if id as usize >= n_cells {
                return Err(parse_err(r.line_no, &format!("cell id {id} out of range")));
            }
            net_cells.push(CellId(id));
        }
        if net_cells.len() < 2 {
            return Err(parse_err(r.line_no, "net with fewer than two pins"));
        }
        nets.push(Net {
            id: NetId(i as u32),
            cells: net_cells,
        });
    }
    let netlist = Netlist {
        name,
        family,
        cells,
        nets,
        cluster_count,
    };

    // Optional placement section, then `end`.
    let line = r.next_line()?.map(str::to_owned);
    let line = line.ok_or_else(|| parse_err(r.line_no, "expected `grid` or `end`, got EOF"))?;
    if line == "end" {
        return Ok((netlist, None));
    }
    let grid_body = expect_keyword(Some(line.as_str()), "grid", r.line_no)?.to_owned();
    let mut it = grid_body.split_whitespace();
    let width: usize = parse_num(it.next().unwrap_or(""), r.line_no)?;
    let height: usize = parse_num(it.next().unwrap_or(""), r.line_no)?;
    let mut xs = Vec::with_capacity(n_cells);
    let mut ys = Vec::with_capacity(n_cells);
    for _ in 0..n_cells {
        let line = r.next_line()?.map(str::to_owned);
        let body = expect_keyword(line.as_deref(), "p", r.line_no)?.to_owned();
        let mut it = body.split_whitespace();
        let x: u16 = parse_num(it.next().unwrap_or(""), r.line_no)?;
        let y: u16 = parse_num(it.next().unwrap_or(""), r.line_no)?;
        if x as usize >= width || y as usize >= height {
            return Err(parse_err(r.line_no, "cell placed off-grid"));
        }
        xs.push(x);
        ys.push(y);
    }
    let macros_line = r.next_line()?.map(str::to_owned);
    let n_macros: usize = parse_num(
        expect_keyword(macros_line.as_deref(), "macros", r.line_no)?,
        r.line_no,
    )?;
    let mut macro_rects = Vec::with_capacity(n_macros);
    for _ in 0..n_macros {
        let line = r.next_line()?.map(str::to_owned);
        let body = expect_keyword(line.as_deref(), "m", r.line_no)?.to_owned();
        let mut it = body.split_whitespace();
        let x0: usize = parse_num(it.next().unwrap_or(""), r.line_no)?;
        let y0: usize = parse_num(it.next().unwrap_or(""), r.line_no)?;
        let x1: usize = parse_num(it.next().unwrap_or(""), r.line_no)?;
        let y1: usize = parse_num(it.next().unwrap_or(""), r.line_no)?;
        if x1 < x0 || y1 < y0 || x1 >= width || y1 >= height {
            return Err(parse_err(r.line_no, "malformed macro rect"));
        }
        macro_rects.push(MacroRect { x0, y0, x1, y1 });
    }
    let end_line = r.next_line()?.map(str::to_owned);
    if end_line.as_deref() != Some("end") {
        return Err(parse_err(r.line_no, "expected `end`"));
    }
    Ok((
        netlist,
        Some(Placement {
            grid: GridDims::new(width, height),
            x: xs,
            y: ys,
            macro_rects,
        }),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::generate_netlist;
    use crate::placement::{place, PlacementConfig};

    #[test]
    fn netlist_round_trip() {
        let nl = generate_netlist(Family::Itc99, 5).unwrap();
        let mut buf = Vec::new();
        write_design(&mut buf, &nl, None).unwrap();
        let (back, placement) = read_design(buf.as_slice()).unwrap();
        assert_eq!(back, nl);
        assert!(placement.is_none());
    }

    #[test]
    fn placed_round_trip() {
        let nl = generate_netlist(Family::Ispd15, 6).unwrap();
        let pl = place(&nl, &PlacementConfig::new(16, 16, 2)).unwrap();
        let mut buf = Vec::new();
        write_design(&mut buf, &nl, Some(&pl)).unwrap();
        let (back_nl, back_pl) = read_design(buf.as_slice()).unwrap();
        assert_eq!(back_nl, nl);
        assert_eq!(back_pl.unwrap(), pl);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let nl = generate_netlist(Family::Iscas89, 7).unwrap();
        let mut buf = Vec::new();
        write_design(&mut buf, &nl, None).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let commented: String = text
            .lines()
            .map(|l| format!("{l} # trailing comment\n\n"))
            .collect();
        let (back, _) = read_design(commented.as_bytes()).unwrap();
        assert_eq!(back, nl);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_design(&b"bogus 1\n"[..]).is_err());
    }

    #[test]
    fn rejects_out_of_range_net_pin() {
        let text = "rtedesign 1\nname x\nfamily ITC99\nclusters 1\ncells 2\n\
                    c 2 0 0\nc 2 0 0\nnets 1\nn 0 5\nend\n";
        let err = read_design(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_off_grid_placement() {
        let text = "rtedesign 1\nname x\nfamily ITC99\nclusters 1\ncells 2\n\
                    c 2 0 0\nc 2 0 0\nnets 1\nn 0 1\ngrid 4 4\np 0 0\np 9 0\nmacros 0\nend\n";
        let err = read_design(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("off-grid"));
    }

    #[test]
    fn rejects_truncated_file() {
        let nl = generate_netlist(Family::Iwls05, 8).unwrap();
        let mut buf = Vec::new();
        write_design(&mut buf, &nl, None).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_design(buf.as_slice()).is_err());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let text = "rtedesign 1\nname x\nfamily NOPE\n";
        let err = read_design(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }
}
