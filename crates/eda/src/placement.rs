//! Seeded placement engine.
//!
//! Real data in the paper comes from many Innovus runs per design with
//! different synthesis/physical-design settings. Here, one
//! [`PlacementConfig`] (seed + target density + spreading effort) plays the
//! role of one tool-settings combination: clusters get anchor points,
//! cells scatter around their cluster anchor, macros claim rectangular
//! blockages, and a capacity-driven spreading pass legalizes density.
//! Different configs on the same netlist produce correlated but distinct
//! placements — exactly the intra-design variation the corpus needs.

use rte_tensor::rng::Xoshiro256;

use crate::netlist::Netlist;
use crate::EdaError;

/// Gcell grid dimensions of the die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridDims {
    /// Number of gcell columns.
    pub width: usize,
    /// Number of gcell rows.
    pub height: usize,
}

impl GridDims {
    /// Creates grid dimensions.
    pub fn new(width: usize, height: usize) -> Self {
        GridDims { width, height }
    }

    /// Total number of gcells.
    pub fn cells(&self) -> usize {
        self.width * self.height
    }
}

/// A rectangular macro blockage in inclusive gcell coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacroRect {
    /// Left column.
    pub x0: usize,
    /// Bottom row.
    pub y0: usize,
    /// Right column (inclusive).
    pub x1: usize,
    /// Top row (inclusive).
    pub y1: usize,
}

impl MacroRect {
    /// True when `(x, y)` lies inside the rectangle.
    pub fn contains(&self, x: usize, y: usize) -> bool {
        (self.x0..=self.x1).contains(&x) && (self.y0..=self.y1).contains(&y)
    }
}

/// One placement run's settings (the synthetic analogue of a logic
/// synthesis + physical design settings combination in §5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementConfig {
    /// Die grid.
    pub grid: GridDims,
    /// Run seed: different seeds = different placement solutions.
    pub seed: u64,
    /// Fraction of per-gcell capacity the spreader targets, in `(0, 1]`.
    pub target_density: f32,
    /// Number of density-spreading sweeps (placement "effort").
    pub spread_iterations: usize,
}

impl PlacementConfig {
    /// A reasonable default on a `width × height` grid.
    pub fn new(width: usize, height: usize, seed: u64) -> Self {
        PlacementConfig {
            grid: GridDims::new(width, height),
            seed,
            target_density: 0.7,
            spread_iterations: 4,
        }
    }
}

/// A placed design: one gcell coordinate per cell plus macro blockages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Die grid.
    pub grid: GridDims,
    /// Per-cell gcell column, indexed by `CellId`.
    pub x: Vec<u16>,
    /// Per-cell gcell row, indexed by `CellId`.
    pub y: Vec<u16>,
    /// Macro blockage rectangles.
    pub macro_rects: Vec<MacroRect>,
}

impl Placement {
    /// Per-gcell standard-cell counts (macros excluded), row-major.
    pub fn cell_density(&self, netlist: &Netlist) -> Vec<f64> {
        let mut density = vec![0.0; self.grid.cells()];
        for cell in &netlist.cells {
            if !cell.is_macro {
                let i = cell.id.0 as usize;
                density[self.y[i] as usize * self.grid.width + self.x[i] as usize] += 1.0;
            }
        }
        density
    }

    /// Per-gcell pin counts (all cells), row-major.
    pub fn pin_density(&self, netlist: &Netlist) -> Vec<f64> {
        let mut density = vec![0.0; self.grid.cells()];
        for cell in &netlist.cells {
            let i = cell.id.0 as usize;
            density[self.y[i] as usize * self.grid.width + self.x[i] as usize] += cell.pins as f64;
        }
        density
    }

    /// Row-major blockage mask: 1.0 inside a macro rect, else 0.0.
    pub fn blockage_mask(&self) -> Vec<f64> {
        let mut mask = vec![0.0; self.grid.cells()];
        for rect in &self.macro_rects {
            for y in rect.y0..=rect.y1.min(self.grid.height - 1) {
                for x in rect.x0..=rect.x1.min(self.grid.width - 1) {
                    mask[y * self.grid.width + x] = 1.0;
                }
            }
        }
        mask
    }
}

/// Places `netlist` on the configured grid.
///
/// # Errors
///
/// Returns [`EdaError::InvalidConfig`] for an empty grid, a grid too small
/// for spreading, or a non-positive target density.
pub fn place(netlist: &Netlist, config: &PlacementConfig) -> Result<Placement, EdaError> {
    let grid = config.grid;
    if grid.width < 4 || grid.height < 4 {
        return Err(EdaError::InvalidConfig {
            reason: format!("grid {}×{} too small (min 4×4)", grid.width, grid.height),
        });
    }
    if !(0.0..=1.0).contains(&config.target_density) || config.target_density <= 0.0 {
        return Err(EdaError::InvalidConfig {
            reason: format!("target density {} out of (0, 1]", config.target_density),
        });
    }
    let mut rng = Xoshiro256::seed_from(config.seed ^ 0x97AC_E0FA_11CE_D001);

    // 1. Macro rectangles, edge-biased, non-overlapping (best effort).
    let n_macros = netlist.macro_count();
    let mut macro_rects: Vec<MacroRect> = Vec::with_capacity(n_macros);
    let mut macro_cells: Vec<usize> = netlist
        .cells
        .iter()
        .filter(|c| c.is_macro)
        .map(|c| c.id.0 as usize)
        .collect();
    rng.shuffle(&mut macro_cells);
    for _ in 0..n_macros {
        for _attempt in 0..8 {
            let mw = rng.range_usize(2, (grid.width / 4).max(3));
            let mh = rng.range_usize(2, (grid.height / 4).max(3));
            // Bias towards edges: pick an edge band half the time.
            let (x0, y0) = if rng.bernoulli(0.5) {
                let along_x = rng.bernoulli(0.5);
                if along_x {
                    (
                        rng.range_usize(0, grid.width - mw),
                        if rng.bernoulli(0.5) {
                            0
                        } else {
                            grid.height - mh
                        },
                    )
                } else {
                    (
                        if rng.bernoulli(0.5) {
                            0
                        } else {
                            grid.width - mw
                        },
                        rng.range_usize(0, grid.height - mh),
                    )
                }
            } else {
                (
                    rng.range_usize(0, grid.width - mw),
                    rng.range_usize(0, grid.height - mh),
                )
            };
            let rect = MacroRect {
                x0,
                y0,
                x1: x0 + mw - 1,
                y1: y0 + mh - 1,
            };
            let overlaps = macro_rects
                .iter()
                .any(|r| rect.x0 <= r.x1 && r.x0 <= rect.x1 && rect.y0 <= r.y1 && r.y0 <= rect.y1);
            if !overlaps {
                macro_rects.push(rect);
                break;
            }
        }
    }
    let blocked: Vec<bool> = {
        let mut b = vec![false; grid.cells()];
        for rect in &macro_rects {
            for y in rect.y0..=rect.y1 {
                for x in rect.x0..=rect.x1 {
                    b[y * grid.width + x] = true;
                }
            }
        }
        b
    };
    let free_cells = blocked.iter().filter(|&&b| !b).count().max(1);

    // 2. Cluster anchors on free sites.
    let mut anchors: Vec<(f64, f64)> = Vec::with_capacity(netlist.cluster_count);
    for _ in 0..netlist.cluster_count {
        let mut x;
        let mut y;
        loop {
            x = rng.range_usize(0, grid.width);
            y = rng.range_usize(0, grid.height);
            if !blocked[y * grid.width + x] {
                break;
            }
        }
        anchors.push((x as f64, y as f64));
    }

    // 3. Scatter cells around anchors; spread shrinks with density target
    //    (denser targets cluster harder, like high-utilization runs).
    let spread =
        (grid.width.min(grid.height) as f64) * (0.10 + 0.22 * (1.0 - config.target_density as f64));
    let mut xs = vec![0u16; netlist.cells.len()];
    let mut ys = vec![0u16; netlist.cells.len()];
    let mut macro_rect_iter = macro_rects.iter();
    for cell in &netlist.cells {
        let i = cell.id.0 as usize;
        if cell.is_macro {
            // Macro cells sit at their rect's center (or fall back to a
            // random site if we ran out of placeable rects).
            if let Some(rect) = macro_rect_iter.next() {
                xs[i] = ((rect.x0 + rect.x1) / 2) as u16;
                ys[i] = ((rect.y0 + rect.y1) / 2) as u16;
                continue;
            }
        }
        let (ax, ay) = anchors[cell.cluster as usize % anchors.len()];
        let mut x = (ax + rng.normal_f64() * spread).round();
        let mut y = (ay + rng.normal_f64() * spread).round();
        x = x.clamp(0.0, (grid.width - 1) as f64);
        y = y.clamp(0.0, (grid.height - 1) as f64);
        let (mut xi, mut yi) = (x as usize, y as usize);
        // Nudge off blockages by walking towards the die center.
        let mut guard = 0;
        while blocked[yi * grid.width + xi] && guard < grid.width + grid.height {
            if xi * 2 < grid.width {
                xi += 1;
            } else {
                xi = xi.saturating_sub(1);
            }
            if blocked[yi * grid.width + xi] {
                if yi * 2 < grid.height {
                    yi += 1;
                } else {
                    yi = yi.saturating_sub(1);
                }
            }
            guard += 1;
        }
        xs[i] = xi as u16;
        ys[i] = yi as u16;
    }

    // 4. Density spreading: move cells out of overfull bins into the
    //    least-full free neighbor.
    let std_cells = netlist.cells.len() - n_macros;
    let capacity = ((std_cells as f64 / free_cells as f64) / config.target_density as f64)
        .ceil()
        .max(1.0) as usize;
    for _ in 0..config.spread_iterations {
        let mut bin_count = vec![0usize; grid.cells()];
        let mut bin_members: Vec<Vec<usize>> = vec![Vec::new(); grid.cells()];
        for cell in &netlist.cells {
            if cell.is_macro {
                continue;
            }
            let i = cell.id.0 as usize;
            let b = ys[i] as usize * grid.width + xs[i] as usize;
            bin_count[b] += 1;
            bin_members[b].push(i);
        }
        let mut moved = false;
        for by in 0..grid.height {
            for bx in 0..grid.width {
                let b = by * grid.width + bx;
                while bin_count[b] > capacity {
                    // Least-full unblocked 4-neighbor.
                    let mut best: Option<(usize, usize, usize)> = None;
                    let neighbors = [
                        (bx.wrapping_sub(1), by),
                        (bx + 1, by),
                        (bx, by.wrapping_sub(1)),
                        (bx, by + 1),
                    ];
                    for (nx, ny) in neighbors {
                        if nx >= grid.width || ny >= grid.height {
                            continue;
                        }
                        let nb = ny * grid.width + nx;
                        if blocked[nb] {
                            continue;
                        }
                        if best.map_or(true, |(_, _, c)| bin_count[nb] < c) {
                            best = Some((nx, ny, bin_count[nb]));
                        }
                    }
                    let Some((nx, ny, n_count)) = best else { break };
                    if n_count + 1 >= bin_count[b] {
                        break; // No improvement possible.
                    }
                    let cell = bin_members[b].pop().expect("overfull bin has members");
                    xs[cell] = nx as u16;
                    ys[cell] = ny as u16;
                    bin_count[b] -= 1;
                    let nb = ny * grid.width + nx;
                    bin_count[nb] += 1;
                    bin_members[nb].push(cell);
                    moved = true;
                }
            }
        }
        if !moved {
            break;
        }
    }

    Ok(Placement {
        grid,
        x: xs,
        y: ys,
        macro_rects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::generate_netlist;
    use crate::Family;

    fn config(seed: u64) -> PlacementConfig {
        PlacementConfig::new(16, 16, seed)
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let nl = generate_netlist(Family::Itc99, 1).unwrap();
        let a = place(&nl, &config(5)).unwrap();
        let b = place(&nl, &config(5)).unwrap();
        let c = place(&nl, &config(6)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn all_cells_on_grid() {
        let nl = generate_netlist(Family::Ispd15, 2).unwrap();
        let p = place(&nl, &config(1)).unwrap();
        assert_eq!(p.x.len(), nl.cells.len());
        for i in 0..nl.cells.len() {
            assert!((p.x[i] as usize) < p.grid.width);
            assert!((p.y[i] as usize) < p.grid.height);
        }
    }

    #[test]
    fn spreading_reduces_peak_density() {
        let nl = generate_netlist(Family::Iwls05, 3).unwrap();
        let mut no_spread = config(9);
        no_spread.spread_iterations = 0;
        let mut spread = config(9);
        spread.spread_iterations = 8;
        let p0 = place(&nl, &no_spread).unwrap();
        let p1 = place(&nl, &spread).unwrap();
        let peak0 = p0.cell_density(&nl).into_iter().fold(0.0f64, f64::max);
        let peak1 = p1.cell_density(&nl).into_iter().fold(0.0f64, f64::max);
        assert!(
            peak1 <= peak0,
            "spreading must not raise peak: {peak0} -> {peak1}"
        );
        assert!(
            peak1 < peak0,
            "spreading should lower peak: {peak0} -> {peak1}"
        );
    }

    #[test]
    fn density_sums_to_standard_cells() {
        let nl = generate_netlist(Family::Ispd15, 4).unwrap();
        let p = place(&nl, &config(2)).unwrap();
        let total: f64 = p.cell_density(&nl).iter().sum();
        let std_cells = nl.cells.len() - nl.macro_count();
        assert_eq!(total as usize, std_cells);
        let pins: f64 = p.pin_density(&nl).iter().sum();
        assert_eq!(pins as usize, nl.total_pins());
    }

    #[test]
    fn macros_make_blockages() {
        let nl = generate_netlist(Family::Ispd15, 5).unwrap();
        assert!(nl.macro_count() > 0);
        let p = place(&nl, &config(3)).unwrap();
        assert!(!p.macro_rects.is_empty());
        let mask = p.blockage_mask();
        assert!(mask.iter().any(|&m| m > 0.0));
    }

    #[test]
    fn rejects_bad_configs() {
        let nl = generate_netlist(Family::Iscas89, 1).unwrap();
        let mut c = config(1);
        c.grid = GridDims::new(2, 16);
        assert!(place(&nl, &c).is_err());
        let mut c = config(1);
        c.target_density = 0.0;
        assert!(place(&nl, &c).is_err());
    }

    #[test]
    fn different_density_targets_differ() {
        let nl = generate_netlist(Family::Itc99, 8).unwrap();
        let mut loose = config(4);
        loose.target_density = 0.4;
        let mut tight = config(4);
        tight.target_density = 0.9;
        let pl = place(&nl, &loose).unwrap();
        let pt = place(&nl, &tight).unwrap();
        assert_ne!(pl, pt);
    }
}
