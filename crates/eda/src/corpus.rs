//! The paper's Table 2 data setup: nine clients, four benchmark families,
//! disjoint designs, 70/30 train/test splits by design.
//!
//! [`PAPER_CLIENTS`] transcribes Table 2 verbatim (design counts and
//! placement counts). [`CorpusConfig::placement_scale`] shrinks placement
//! counts proportionally for CPU-scale runs (design counts are always kept
//! — they are the unit of the train/test and client disjointness
//! guarantees).

use rte_tensor::rng::Xoshiro256;

use crate::dataset::{generate_sample, Dataset};
use crate::netlist::generate_netlist;
use crate::placement::{GridDims, PlacementConfig};
use crate::{EdaError, Family};

/// One row of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientSpec {
    /// 1-based client index as the paper numbers them.
    pub index: usize,
    /// Benchmark family the client's designs come from.
    pub family: Family,
    /// Number of training designs.
    pub train_designs: usize,
    /// Number of testing designs (disjoint from training designs).
    pub test_designs: usize,
    /// Paper's training placement count.
    pub train_placements: usize,
    /// Paper's testing placement count.
    pub test_placements: usize,
}

impl ClientSpec {
    /// Placement counts after applying `scale`, with at least one
    /// placement per design.
    pub fn scaled_counts(&self, scale: f64) -> (usize, usize) {
        let train =
            ((self.train_placements as f64 * scale).round() as usize).max(self.train_designs);
        let test = ((self.test_placements as f64 * scale).round() as usize).max(self.test_designs);
        (train, test)
    }
}

/// Table 2 of the paper, verbatim.
pub const PAPER_CLIENTS: [ClientSpec; 9] = [
    ClientSpec {
        index: 1,
        family: Family::Itc99,
        train_designs: 4,
        test_designs: 2,
        train_placements: 462,
        test_placements: 230,
    },
    ClientSpec {
        index: 2,
        family: Family::Itc99,
        train_designs: 2,
        test_designs: 1,
        train_placements: 231,
        test_placements: 114,
    },
    ClientSpec {
        index: 3,
        family: Family::Itc99,
        train_designs: 2,
        test_designs: 2,
        train_placements: 231,
        test_placements: 232,
    },
    ClientSpec {
        index: 4,
        family: Family::Iscas89,
        train_designs: 7,
        test_designs: 3,
        train_placements: 812,
        test_placements: 348,
    },
    ClientSpec {
        index: 5,
        family: Family::Iscas89,
        train_designs: 7,
        test_designs: 3,
        train_placements: 812,
        test_placements: 348,
    },
    ClientSpec {
        index: 6,
        family: Family::Iscas89,
        train_designs: 6,
        test_designs: 3,
        train_placements: 697,
        test_placements: 348,
    },
    ClientSpec {
        index: 7,
        family: Family::Iwls05,
        train_designs: 6,
        test_designs: 3,
        train_placements: 656,
        test_placements: 280,
    },
    ClientSpec {
        index: 8,
        family: Family::Iwls05,
        train_designs: 7,
        test_designs: 3,
        train_placements: 742,
        test_placements: 329,
    },
    ClientSpec {
        index: 9,
        family: Family::Ispd15,
        train_designs: 9,
        test_designs: 4,
        train_placements: 175,
        test_placements: 84,
    },
];

/// Corpus generation settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Master seed; every design, placement and label derives from it.
    pub seed: u64,
    /// Gcell grid of every die.
    pub grid: GridDims,
    /// Multiplier on Table 2 placement counts (1.0 = the paper's 7,131
    /// placements).
    pub placement_scale: f64,
}

impl CorpusConfig {
    /// Paper-scale counts (7,131 placements) on a 16×16 grid.
    pub fn paper() -> Self {
        CorpusConfig {
            seed: 0xDAC2_2022,
            grid: GridDims::new(16, 16),
            placement_scale: 1.0,
        }
    }

    /// CPU-friendly default: ~1/12 of the paper's placement counts
    /// (roughly 600 placements total).
    pub fn scaled() -> Self {
        CorpusConfig {
            placement_scale: 1.0 / 12.0,
            ..CorpusConfig::paper()
        }
    }

    /// Minimal corpus for tests: one placement per design.
    pub fn tiny() -> Self {
        CorpusConfig {
            placement_scale: 0.0,
            ..CorpusConfig::paper()
        }
    }
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig::scaled()
    }
}

/// One client's generated data.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientData {
    /// The Table 2 row this client realizes.
    pub spec: ClientSpec,
    /// Training split.
    pub train: Dataset,
    /// Testing split (designs disjoint from training).
    pub test: Dataset,
}

/// The full nine-client corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    /// Per-client data, ordered by client index.
    pub clients: Vec<ClientData>,
    /// The grid every sample uses.
    pub grid: GridDims,
}

impl Corpus {
    /// Total number of training placements across clients.
    pub fn total_train(&self) -> usize {
        self.clients.iter().map(|c| c.train.len()).sum()
    }

    /// Total number of testing placements across clients.
    pub fn total_test(&self) -> usize {
        self.clients.iter().map(|c| c.test.len()).sum()
    }
}

/// Which split a design belongs to (decides its seed stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Train,
    Test,
}

/// Generates one client's data per its Table 2 spec.
///
/// # Errors
///
/// Propagates placement/labelling errors (e.g. a grid smaller than 4×4).
pub fn generate_client(spec: &ClientSpec, config: &CorpusConfig) -> Result<ClientData, EdaError> {
    let (n_train, n_test) = spec.scaled_counts(config.placement_scale);
    let train = generate_split(spec, config, Role::Train, spec.train_designs, n_train)?;
    let test = generate_split(spec, config, Role::Test, spec.test_designs, n_test)?;
    Ok(ClientData {
        spec: *spec,
        train,
        test,
    })
}

fn generate_split(
    spec: &ClientSpec,
    config: &CorpusConfig,
    role: Role,
    n_designs: usize,
    n_placements: usize,
) -> Result<Dataset, EdaError> {
    let root = Xoshiro256::seed_from(config.seed);
    let client_stream = root.derive(spec.index as u64);
    let role_stream = client_stream.derive(match role {
        Role::Train => 0,
        Role::Test => 1,
    });
    let profile = spec.family.profile();
    let mut dataset = Dataset::new();
    for d in 0..n_designs {
        let mut design_stream = role_stream.derive(d as u64);
        let design_seed = design_stream.next_u64();
        let netlist = generate_netlist(spec.family, design_seed)?;
        // Distribute placements round-robin so every design gets
        // ⌈n/designs⌉ or ⌊n/designs⌋ placements.
        let share = n_placements / n_designs + usize::from(d < n_placements % n_designs);
        for p in 0..share {
            let mut p_stream = design_stream.derive(p as u64 + 1);
            let placement_seed = p_stream.next_u64();
            let density = profile.target_density.0
                + (profile.target_density.1 - profile.target_density.0) * p_stream.uniform();
            let placement_config = PlacementConfig {
                grid: config.grid,
                seed: placement_seed,
                target_density: density,
                spread_iterations: 2 + p_stream.range_usize(0, 5),
            };
            dataset.push(generate_sample(&netlist, &placement_config)?);
        }
    }
    Ok(dataset)
}

/// Generates the full nine-client corpus of the paper's Table 2.
///
/// # Errors
///
/// Propagates per-client generation errors.
///
/// # Example
///
/// ```
/// use rte_eda::corpus::{generate_corpus, CorpusConfig};
///
/// let corpus = generate_corpus(&CorpusConfig::tiny())?;
/// assert_eq!(corpus.clients.len(), 9);
/// // Table 2: client 9 holds ISPD'15 designs.
/// assert_eq!(corpus.clients[8].spec.family.name(), "ISPD'15");
/// # Ok::<(), rte_eda::EdaError>(())
/// ```
pub fn generate_corpus(config: &CorpusConfig) -> Result<Corpus, EdaError> {
    let clients = PAPER_CLIENTS
        .iter()
        .map(|spec| generate_client(spec, config))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Corpus {
        clients,
        grid: config.grid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table2_totals_match_paper() {
        let train: usize = PAPER_CLIENTS.iter().map(|c| c.train_placements).sum();
        let test: usize = PAPER_CLIENTS.iter().map(|c| c.test_placements).sum();
        assert_eq!(train + test, 7131, "paper reports 7,131 placements");
        let designs: usize = PAPER_CLIENTS
            .iter()
            .map(|c| c.train_designs + c.test_designs)
            .sum();
        assert_eq!(designs, 74, "paper reports 74 designs");
    }

    #[test]
    fn family_assignment_matches_paper() {
        assert!(PAPER_CLIENTS[..3].iter().all(|c| c.family == Family::Itc99));
        assert!(PAPER_CLIENTS[3..6]
            .iter()
            .all(|c| c.family == Family::Iscas89));
        assert!(PAPER_CLIENTS[6..8]
            .iter()
            .all(|c| c.family == Family::Iwls05));
        assert_eq!(PAPER_CLIENTS[8].family, Family::Ispd15);
    }

    #[test]
    fn scaled_counts_floor_at_design_count() {
        let c9 = PAPER_CLIENTS[8];
        let (train, test) = c9.scaled_counts(0.0);
        assert_eq!(train, c9.train_designs);
        assert_eq!(test, c9.test_designs);
        let (train, _) = c9.scaled_counts(1.0);
        assert_eq!(train, 175);
    }

    #[test]
    fn tiny_corpus_generates_all_clients() {
        let corpus = generate_corpus(&CorpusConfig::tiny()).unwrap();
        assert_eq!(corpus.clients.len(), 9);
        for (client, spec) in corpus.clients.iter().zip(PAPER_CLIENTS.iter()) {
            assert_eq!(client.spec, *spec);
            assert_eq!(client.train.len(), spec.train_designs);
            assert_eq!(client.test.len(), spec.test_designs);
            assert!(client.train.hotspot_rate() > 0.0);
        }
    }

    #[test]
    fn designs_are_disjoint_across_clients_and_splits() {
        let corpus = generate_corpus(&CorpusConfig::tiny()).unwrap();
        let mut seen: HashSet<String> = HashSet::new();
        for client in &corpus.clients {
            for s in client
                .train
                .samples()
                .iter()
                .chain(client.test.samples().iter())
            {
                // Every design name may repeat within a split (several
                // placements) but never across splits or clients. In the
                // tiny corpus each design appears exactly once.
                assert!(seen.insert(s.design.clone()), "design {} reused", s.design);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_client(&PAPER_CLIENTS[1], &CorpusConfig::tiny()).unwrap();
        let b = generate_client(&PAPER_CLIENTS[1], &CorpusConfig::tiny()).unwrap();
        assert_eq!(a, b);
        let mut other = CorpusConfig::tiny();
        other.seed ^= 1;
        let c = generate_client(&PAPER_CLIENTS[1], &other).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn placement_distribution_is_balanced() {
        let mut config = CorpusConfig::tiny();
        config.placement_scale = 0.02; // a handful of placements
        let client = generate_client(&PAPER_CLIENTS[0], &config).unwrap();
        // 462 × 0.02 ≈ 9 placements over 4 designs → shares of 2 or 3.
        let mut per_design: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        for s in client.train.samples() {
            *per_design.entry(s.design.clone()).or_insert(0) += 1;
        }
        assert_eq!(per_design.len(), 4);
        let max = per_design.values().max().unwrap();
        let min = per_design.values().min().unwrap();
        assert!(max - min <= 1, "unbalanced shares {per_design:?}");
    }

    #[test]
    fn corpus_totals_scale() {
        let corpus = generate_corpus(&CorpusConfig::tiny()).unwrap();
        assert_eq!(corpus.total_train(), 50); // Σ train designs
        assert_eq!(corpus.total_test(), 24); // Σ test designs
    }
}
