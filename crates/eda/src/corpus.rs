//! The paper's Table 2 data setup: nine clients, four benchmark families,
//! disjoint designs, 70/30 train/test splits by design.
//!
//! [`PAPER_CLIENTS`] transcribes Table 2 verbatim (design counts and
//! placement counts). [`CorpusConfig::placement_scale`] shrinks placement
//! counts proportionally for CPU-scale runs (design counts are always kept
//! — they are the unit of the train/test and client disjointness
//! guarantees).
//!
//! # Sharded generation
//!
//! Every placement's RNG stream is derived purely from
//! `(seed, client, split, design, placement)`, so samples are independent
//! work items: [`generate_corpus`] and [`generate_client`] shard netlist
//! synthesis over designs and sample generation over *all* placements
//! (across clients) onto worker threads, then assemble the datasets in
//! fixed `(client, split, design, placement)` order on the caller's
//! thread. The output is **byte-identical to the serial path at every
//! thread count** — the parallelism budget (explicit via the `_with`
//! variants, otherwise the process-global `rte_tensor::parallel` default)
//! is a pure wall-clock knob, exactly like training and evaluation.

use rte_tensor::parallel::{self, map_with, Parallelism};
use rte_tensor::rng::Xoshiro256;

use crate::dataset::{generate_sample, Dataset, Sample};
use crate::netlist::{generate_netlist, Netlist};
use crate::placement::{GridDims, PlacementConfig};
use crate::{EdaError, Family, FamilyMix};

/// One row of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientSpec {
    /// 1-based client index as the paper numbers them.
    pub index: usize,
    /// Benchmark family the client's designs come from.
    pub family: Family,
    /// Number of training designs.
    pub train_designs: usize,
    /// Number of testing designs (disjoint from training designs).
    pub test_designs: usize,
    /// Paper's training placement count.
    pub train_placements: usize,
    /// Paper's testing placement count.
    pub test_placements: usize,
}

impl ClientSpec {
    /// Placement counts after applying `scale`, with at least one
    /// placement per design.
    pub fn scaled_counts(&self, scale: f64) -> (usize, usize) {
        let train =
            ((self.train_placements as f64 * scale).round() as usize).max(self.train_designs);
        let test = ((self.test_placements as f64 * scale).round() as usize).max(self.test_designs);
        (train, test)
    }
}

/// Table 2 of the paper, verbatim.
pub const PAPER_CLIENTS: [ClientSpec; 9] = [
    ClientSpec {
        index: 1,
        family: Family::Itc99,
        train_designs: 4,
        test_designs: 2,
        train_placements: 462,
        test_placements: 230,
    },
    ClientSpec {
        index: 2,
        family: Family::Itc99,
        train_designs: 2,
        test_designs: 1,
        train_placements: 231,
        test_placements: 114,
    },
    ClientSpec {
        index: 3,
        family: Family::Itc99,
        train_designs: 2,
        test_designs: 2,
        train_placements: 231,
        test_placements: 232,
    },
    ClientSpec {
        index: 4,
        family: Family::Iscas89,
        train_designs: 7,
        test_designs: 3,
        train_placements: 812,
        test_placements: 348,
    },
    ClientSpec {
        index: 5,
        family: Family::Iscas89,
        train_designs: 7,
        test_designs: 3,
        train_placements: 812,
        test_placements: 348,
    },
    ClientSpec {
        index: 6,
        family: Family::Iscas89,
        train_designs: 6,
        test_designs: 3,
        train_placements: 697,
        test_placements: 348,
    },
    ClientSpec {
        index: 7,
        family: Family::Iwls05,
        train_designs: 6,
        test_designs: 3,
        train_placements: 656,
        test_placements: 280,
    },
    ClientSpec {
        index: 8,
        family: Family::Iwls05,
        train_designs: 7,
        test_designs: 3,
        train_placements: 742,
        test_placements: 329,
    },
    ClientSpec {
        index: 9,
        family: Family::Ispd15,
        train_designs: 9,
        test_designs: 4,
        train_placements: 175,
        test_placements: 84,
    },
];

/// Corpus generation settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Master seed; every design, placement and label derives from it.
    pub seed: u64,
    /// Gcell grid of every die.
    pub grid: GridDims,
    /// Multiplier on Table 2 placement counts (1.0 = the paper's 7,131
    /// placements).
    pub placement_scale: f64,
}

impl CorpusConfig {
    /// Paper-scale counts (7,131 placements) on a 16×16 grid.
    pub fn paper() -> Self {
        CorpusConfig {
            seed: 0xDAC2_2022,
            grid: GridDims::new(16, 16),
            placement_scale: 1.0,
        }
    }

    /// CPU-friendly default: ~1/12 of the paper's placement counts
    /// (roughly 600 placements total).
    pub fn scaled() -> Self {
        CorpusConfig {
            placement_scale: 1.0 / 12.0,
            ..CorpusConfig::paper()
        }
    }

    /// Minimal corpus for tests: one placement per design.
    pub fn tiny() -> Self {
        CorpusConfig {
            placement_scale: 0.0,
            ..CorpusConfig::paper()
        }
    }
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig::scaled()
    }
}

/// One client's generated data.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientData {
    /// The Table 2 row this client realizes.
    pub spec: ClientSpec,
    /// Training split.
    pub train: Dataset,
    /// Testing split (designs disjoint from training).
    pub test: Dataset,
}

/// The full nine-client corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    /// Per-client data, ordered by client index.
    pub clients: Vec<ClientData>,
    /// The grid every sample uses.
    pub grid: GridDims,
}

impl Corpus {
    /// Total number of training placements across clients.
    pub fn total_train(&self) -> usize {
        self.clients.iter().map(|c| c.train.len()).sum()
    }

    /// Total number of testing placements across clients.
    pub fn total_test(&self) -> usize {
        self.clients.iter().map(|c| c.test.len()).sum()
    }
}

/// Which half of a client's data a design (or shard file) belongs to.
/// The split decides the design's seed stream, so train and test data
/// can never collide even when design indices repeat across splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Training split (70% of a client's designs in Table 2).
    Train,
    /// Testing split (designs disjoint from training).
    Test,
}

impl Split {
    /// Both splits, in the fixed `(train, test)` generation order.
    pub const ALL: [Split; 2] = [Split::Train, Split::Test];

    /// Lower-case token used in shard file names (`train` / `test`).
    pub fn token(&self) -> &'static str {
        match self {
            Split::Train => "train",
            Split::Test => "test",
        }
    }
}

impl std::fmt::Display for Split {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// The RNG stream of one `(client, split, design)` triple — the only
/// place it is derived. Both netlist synthesis and every placement of
/// the design replay this derivation, so a placement's randomness is a
/// pure function of its coordinates and sharding cannot change a byte.
fn design_stream(
    config: &CorpusConfig,
    spec: &ClientSpec,
    split: Split,
    design: usize,
) -> Xoshiro256 {
    Xoshiro256::seed_from(config.seed)
        .derive(spec.index as u64)
        .derive(match split {
            Split::Train => 0,
            Split::Test => 1,
        })
        .derive(design as u64)
}

/// One design to synthesize (phase 1 work item).
pub(crate) struct DesignJob {
    pub(crate) spec_i: usize,
    pub(crate) split: Split,
    pub(crate) design: usize,
}

/// One placement to generate (phase 2 work item).
pub(crate) struct PlacementJob {
    pub(crate) spec_i: usize,
    pub(crate) split: Split,
    pub(crate) design: usize,
    /// Index into the phase-1 netlist list.
    pub(crate) netlist: usize,
    pub(crate) placement: usize,
}

/// Expands specs into the flat, fixed-order work lists both the
/// in-memory and the streaming generators walk: design jobs in
/// `(client, split, design)` order, placement jobs in
/// `(client, split, design, placement)` order. This ordering IS the
/// byte-identity contract — every consumer assembles results by walking
/// these lists front to back.
pub(crate) fn build_jobs(
    specs: &[ClientSpec],
    config: &CorpusConfig,
) -> (Vec<DesignJob>, Vec<PlacementJob>) {
    let mut design_jobs: Vec<DesignJob> = Vec::new();
    let mut placement_jobs: Vec<PlacementJob> = Vec::new();
    for (spec_i, spec) in specs.iter().enumerate() {
        let (n_train, n_test) = spec.scaled_counts(config.placement_scale);
        for (split, n_designs, n_placements) in [
            (Split::Train, spec.train_designs, n_train),
            (Split::Test, spec.test_designs, n_test),
        ] {
            for d in 0..n_designs {
                let netlist = design_jobs.len();
                design_jobs.push(DesignJob {
                    spec_i,
                    split,
                    design: d,
                });
                // Distribute placements round-robin so every design gets
                // ⌈n/designs⌉ or ⌊n/designs⌋ placements.
                let share = n_placements / n_designs + usize::from(d < n_placements % n_designs);
                for p in 0..share {
                    placement_jobs.push(PlacementJob {
                        spec_i,
                        split,
                        design: d,
                        netlist,
                        placement: p,
                    });
                }
            }
        }
    }
    (design_jobs, placement_jobs)
}

/// Phase-1 work: synthesizes the netlist of one design job, replaying
/// the job's seed stream from scratch.
pub(crate) fn synthesize_design(
    specs: &[ClientSpec],
    config: &CorpusConfig,
    job: &DesignJob,
) -> Result<Netlist, EdaError> {
    let spec = &specs[job.spec_i];
    let mut stream = design_stream(config, spec, job.split, job.design);
    let design_seed = stream.next_u64();
    generate_netlist(spec.family, design_seed)
}

/// Phase-2 work: generates one placement sample, replaying the design's
/// seed stream up to the placement's derivation point so the output is a
/// pure function of `(seed, client, split, design, placement)`.
pub(crate) fn placement_sample(
    specs: &[ClientSpec],
    config: &CorpusConfig,
    netlists: &[Netlist],
    job: &PlacementJob,
) -> Result<Sample, EdaError> {
    let spec = &specs[job.spec_i];
    let mut stream = design_stream(config, spec, job.split, job.design);
    // The design seed was consumed by phase 1; drawing (and discarding)
    // it here keeps the stream state identical to the serial schedule's
    // at the point placements were derived.
    let _ = stream.next_u64();
    let mut p_stream = stream.derive(job.placement as u64 + 1);
    let placement_seed = p_stream.next_u64();
    let profile = spec.family.profile();
    let density = profile.target_density.0
        + (profile.target_density.1 - profile.target_density.0) * p_stream.uniform();
    let placement_config = PlacementConfig {
        grid: config.grid,
        seed: placement_seed,
        target_density: density,
        spread_iterations: 2 + p_stream.range_usize(0, 5),
    };
    generate_sample(&netlists[job.netlist], &placement_config)
}

/// The sharded generation core: synthesizes every design's netlist
/// (phase 1, parallel over designs), then every placement sample
/// (phase 2, parallel over all placements of all clients), and assembles
/// the per-client datasets in fixed `(client, split, design, placement)`
/// order on the caller's thread.
fn generate_clients_sharded(
    specs: &[ClientSpec],
    config: &CorpusConfig,
    par: Parallelism,
) -> Result<Vec<ClientData>, EdaError> {
    let (design_jobs, placement_jobs) = build_jobs(specs, config);
    // Phase 1: netlist synthesis, one worker item per design.
    let netlists = map_with(
        par,
        &design_jobs,
        || (),
        |(), _, job| synthesize_design(specs, config, job),
    )
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    // Phase 2: placement + features + labels, one worker item per
    // placement across the whole corpus (the dominant cost, and the
    // best-balanced unit: Table 2 clients differ 5× in placement count).
    let samples = map_with(
        par,
        &placement_jobs,
        || (),
        |(), _, job| placement_sample(specs, config, &netlists, job),
    )
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    // Reduce: job order is (client, split, design, placement), so a
    // sequential pass rebuilds every dataset exactly as the serial loop
    // did.
    let mut clients: Vec<ClientData> = specs
        .iter()
        .map(|spec| ClientData {
            spec: *spec,
            train: Dataset::new(),
            test: Dataset::new(),
        })
        .collect();
    for (job, sample) in placement_jobs.iter().zip(samples) {
        let client = &mut clients[job.spec_i];
        match job.split {
            Split::Train => client.train.push(sample),
            Split::Test => client.test.push(sample),
        }
    }
    Ok(clients)
}

/// Generates one client's data per its Table 2 spec, sharding placement
/// generation over the process-global
/// [`rte_tensor::parallel`] thread budget.
///
/// # Errors
///
/// Propagates placement/labelling errors (e.g. a grid smaller than 4×4).
pub fn generate_client(spec: &ClientSpec, config: &CorpusConfig) -> Result<ClientData, EdaError> {
    generate_client_with(spec, config, parallel::global())
}

/// [`generate_client`] with an explicit thread budget. Output is
/// byte-identical for every budget.
///
/// # Errors
///
/// Same conditions as [`generate_client`].
pub fn generate_client_with(
    spec: &ClientSpec,
    config: &CorpusConfig,
    par: Parallelism,
) -> Result<ClientData, EdaError> {
    let mut clients = generate_clients_sharded(std::slice::from_ref(spec), config, par)?;
    Ok(clients.pop().expect("one spec in, one client out"))
}

/// Generates the full nine-client corpus of the paper's Table 2,
/// sharding generation over designs and placements on the process-global
/// [`rte_tensor::parallel`] thread budget.
///
/// # Errors
///
/// Propagates per-client generation errors.
///
/// # Example
///
/// ```
/// use rte_eda::corpus::{generate_corpus, CorpusConfig};
///
/// let corpus = generate_corpus(&CorpusConfig::tiny())?;
/// assert_eq!(corpus.clients.len(), 9);
/// // Table 2: client 9 holds ISPD'15 designs.
/// assert_eq!(corpus.clients[8].spec.family.name(), "ISPD'15");
/// # Ok::<(), rte_eda::EdaError>(())
/// ```
pub fn generate_corpus(config: &CorpusConfig) -> Result<Corpus, EdaError> {
    generate_corpus_with(config, parallel::global())
}

/// [`generate_corpus`] with an explicit thread budget. Output is
/// byte-identical for every budget
/// (`tests/parallel_determinism.rs` pins corpus tensors between 1 and 4
/// threads).
///
/// # Errors
///
/// Same conditions as [`generate_corpus`].
pub fn generate_corpus_with(config: &CorpusConfig, par: Parallelism) -> Result<Corpus, EdaError> {
    let clients = generate_clients_sharded(&PAPER_CLIENTS, config, par)?;
    Ok(Corpus {
        clients,
        grid: config.grid,
    })
}

/// Generates a corpus for an explicit client list (e.g. a synthesized
/// universe from [`universe_specs`]) with an explicit thread budget.
/// Output is byte-identical for every budget, exactly like
/// [`generate_corpus_with`].
///
/// # Errors
///
/// [`EdaError::InvalidConfig`] for an empty spec list; otherwise the
/// same conditions as [`generate_corpus`].
pub fn generate_corpus_for_specs_with(
    specs: &[ClientSpec],
    config: &CorpusConfig,
    par: Parallelism,
) -> Result<Corpus, EdaError> {
    if specs.is_empty() {
        return Err(EdaError::InvalidConfig {
            reason: "corpus generation needs at least one client spec".into(),
        });
    }
    let clients = generate_clients_sharded(specs, config, par)?;
    Ok(Corpus {
        clients,
        grid: config.grid,
    })
}

/// Settings of a synthesized client universe (the `--clients N
/// --designs D` scaling mode): how many clients to invent, how many
/// designs the population shares, and the family mix heterogeneity is
/// drawn from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniverseConfig {
    /// Number of clients to synthesize (1-based indices `1..=clients`).
    pub clients: usize,
    /// Total designs across the population (train + test, all clients).
    /// Every client owns at least one train and one test design, so this
    /// must be at least `2 × clients`.
    pub designs: usize,
    /// Family sampling weights — the source of inter-client
    /// heterogeneity and label skew.
    pub mix: FamilyMix,
}

impl UniverseConfig {
    /// A universe with the paper's family proportions.
    pub fn new(clients: usize, designs: usize) -> Self {
        UniverseConfig {
            clients,
            designs,
            mix: FamilyMix::paper(),
        }
    }
}

/// Salt separating the universe-synthesis RNG stream from every
/// generation stream (clients derive `seed → client → split → design`;
/// this must never collide with a client index).
const UNIVERSE_SALT: u64 = 0x5EED_u64 << 32;

/// Synthesizes `universe.clients` client specs from the seeded
/// heterogeneity model: per-client families drawn from the mix,
/// design counts skewed by per-client weight draws (largest-remainder
/// allocation of the shared design pool), ~70/30 train/test splits, and
/// per-client placement intensities echoing Table 2's spread.
///
/// The result is a pure function of `(config.seed, universe)` — every
/// draw comes from one salted stream consumed in fixed client order —
/// so the same universe can be regenerated for provenance checks, and
/// corpora built from it inherit the full determinism contract.
///
/// # Errors
///
/// [`EdaError::InvalidConfig`] for zero clients, fewer than
/// `2 × clients` designs, or an unusable mix.
pub fn universe_specs(
    config: &CorpusConfig,
    universe: &UniverseConfig,
) -> Result<Vec<ClientSpec>, EdaError> {
    if universe.clients == 0 {
        return Err(EdaError::InvalidConfig {
            reason: "universe needs at least one client".into(),
        });
    }
    if universe.designs < 2 * universe.clients {
        return Err(EdaError::InvalidConfig {
            reason: format!(
                "universe of {} clients needs at least {} designs (1 train + 1 test \
                 each), got {}",
                universe.clients,
                2 * universe.clients,
                universe.designs
            ),
        });
    }
    if !universe.mix.is_valid() {
        return Err(EdaError::InvalidConfig {
            reason: "family mix weights must be finite, non-negative and not all zero".into(),
        });
    }
    let mut stream = Xoshiro256::seed_from(config.seed).derive(UNIVERSE_SALT);
    // Per-client draws, in fixed client order: family, design-count
    // weight, placement intensity. One loop = one derivation point.
    let mut families = Vec::with_capacity(universe.clients);
    let mut weights = Vec::with_capacity(universe.clients);
    let mut intensities = Vec::with_capacity(universe.clients);
    for _ in 0..universe.clients {
        families.push(universe.mix.sample(stream.uniform_f64()));
        // Design-count skew: a 3× spread between the lightest and
        // heaviest clients, echoing Table 2 (3 designs vs 13).
        weights.push(0.5 + stream.uniform_f64());
        // Placements per design, echoing Table 2's ~20 (ISPD'15) to
        // ~115 (ITC'99/ISCAS'89) per-design placement intensities.
        intensities.push(20 + stream.range_usize(0, 96));
    }
    // Largest-remainder allocation of the design pool over the weight
    // draws, with a floor of 2 designs per client.
    let floor_total = 2 * universe.clients;
    let spare = universe.designs - floor_total;
    let weight_sum: f64 = weights.iter().sum();
    let quotas: Vec<f64> = weights
        .iter()
        .map(|w| spare as f64 * w / weight_sum)
        .collect();
    let mut extra: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let assigned: usize = extra.iter().sum();
    // Hand the leftovers to the largest fractional parts; ties resolve
    // to the lower client index (sort_by on the residual only is stable).
    let mut order: Vec<usize> = (0..universe.clients).collect();
    order.sort_by(|&a, &b| {
        let ra = quotas[a] - quotas[a].floor();
        let rb = quotas[b] - quotas[b].floor();
        rb.partial_cmp(&ra).expect("finite residuals")
    });
    for &i in order.iter().take(spare - assigned) {
        extra[i] += 1;
    }
    let specs = (0..universe.clients)
        .map(|i| {
            let designs = 2 + extra[i];
            // ~30% of designs test, at least one on each side.
            let test_designs = ((designs as f64 * 0.3).round() as usize).clamp(1, designs - 1);
            let train_designs = designs - test_designs;
            ClientSpec {
                index: i + 1,
                family: families[i],
                train_designs,
                test_designs,
                train_placements: train_designs * intensities[i],
                test_placements: test_designs * intensities[i].div_ceil(2),
            }
        })
        .collect();
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table2_totals_match_paper() {
        let train: usize = PAPER_CLIENTS.iter().map(|c| c.train_placements).sum();
        let test: usize = PAPER_CLIENTS.iter().map(|c| c.test_placements).sum();
        assert_eq!(train + test, 7131, "paper reports 7,131 placements");
        let designs: usize = PAPER_CLIENTS
            .iter()
            .map(|c| c.train_designs + c.test_designs)
            .sum();
        assert_eq!(designs, 74, "paper reports 74 designs");
    }

    #[test]
    fn family_assignment_matches_paper() {
        assert!(PAPER_CLIENTS[..3].iter().all(|c| c.family == Family::Itc99));
        assert!(PAPER_CLIENTS[3..6]
            .iter()
            .all(|c| c.family == Family::Iscas89));
        assert!(PAPER_CLIENTS[6..8]
            .iter()
            .all(|c| c.family == Family::Iwls05));
        assert_eq!(PAPER_CLIENTS[8].family, Family::Ispd15);
    }

    #[test]
    fn scaled_counts_floor_at_design_count() {
        let c9 = PAPER_CLIENTS[8];
        let (train, test) = c9.scaled_counts(0.0);
        assert_eq!(train, c9.train_designs);
        assert_eq!(test, c9.test_designs);
        let (train, _) = c9.scaled_counts(1.0);
        assert_eq!(train, 175);
    }

    #[test]
    fn tiny_corpus_generates_all_clients() {
        let corpus = generate_corpus(&CorpusConfig::tiny()).unwrap();
        assert_eq!(corpus.clients.len(), 9);
        for (client, spec) in corpus.clients.iter().zip(PAPER_CLIENTS.iter()) {
            assert_eq!(client.spec, *spec);
            assert_eq!(client.train.len(), spec.train_designs);
            assert_eq!(client.test.len(), spec.test_designs);
            assert!(client.train.hotspot_rate() > 0.0);
        }
    }

    #[test]
    fn designs_are_disjoint_across_clients_and_splits() {
        let corpus = generate_corpus(&CorpusConfig::tiny()).unwrap();
        let mut seen: HashSet<String> = HashSet::new();
        for client in &corpus.clients {
            for s in client
                .train
                .samples()
                .iter()
                .chain(client.test.samples().iter())
            {
                // Every design name may repeat within a split (several
                // placements) but never across splits or clients. In the
                // tiny corpus each design appears exactly once.
                assert!(seen.insert(s.design.clone()), "design {} reused", s.design);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_client(&PAPER_CLIENTS[1], &CorpusConfig::tiny()).unwrap();
        let b = generate_client(&PAPER_CLIENTS[1], &CorpusConfig::tiny()).unwrap();
        assert_eq!(a, b);
        let mut other = CorpusConfig::tiny();
        other.seed ^= 1;
        let c = generate_client(&PAPER_CLIENTS[1], &other).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn placement_distribution_is_balanced() {
        let mut config = CorpusConfig::tiny();
        config.placement_scale = 0.02; // a handful of placements
        let client = generate_client(&PAPER_CLIENTS[0], &config).unwrap();
        // 462 × 0.02 ≈ 9 placements over 4 designs → shares of 2 or 3.
        let mut per_design: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        for s in client.train.samples() {
            *per_design.entry(s.design.clone()).or_insert(0) += 1;
        }
        assert_eq!(per_design.len(), 4);
        let max = per_design.values().max().unwrap();
        let min = per_design.values().min().unwrap();
        assert!(max - min <= 1, "unbalanced shares {per_design:?}");
    }

    #[test]
    fn sharded_generation_is_byte_identical_to_serial() {
        let mut config = CorpusConfig::tiny();
        config.placement_scale = 0.02; // several placements per design
        let spec = &PAPER_CLIENTS[3];
        let serial = generate_client_with(spec, &config, Parallelism::serial()).unwrap();
        for threads in [2, 3, 8] {
            let sharded = generate_client_with(spec, &config, Parallelism::new(threads)).unwrap();
            assert_eq!(serial, sharded, "{threads} threads");
        }
    }

    #[test]
    fn universe_specs_are_deterministic_and_well_formed() {
        let config = CorpusConfig::tiny();
        let universe = UniverseConfig::new(100, 400);
        let specs = universe_specs(&config, &universe).unwrap();
        assert_eq!(specs.len(), 100);
        assert_eq!(specs, universe_specs(&config, &universe).unwrap());
        let total: usize = specs.iter().map(|s| s.train_designs + s.test_designs).sum();
        assert_eq!(total, 400, "design pool fully allocated");
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.index, i + 1);
            assert!(s.train_designs >= 1 && s.test_designs >= 1);
            assert!(s.train_placements >= s.train_designs);
            assert!(s.test_placements >= s.test_designs);
        }
        // Heterogeneity actually materializes: multiple families, spread
        // design counts.
        let families: HashSet<Family> = specs.iter().map(|s| s.family).collect();
        assert!(families.len() >= 3, "{families:?}");
        let counts: Vec<usize> = specs.iter().map(|s| s.train_designs).collect();
        assert!(counts.iter().max() > counts.iter().min());
        // A different seed synthesizes a different universe.
        let mut other = config;
        other.seed ^= 1;
        assert_ne!(specs, universe_specs(&other, &universe).unwrap());
    }

    #[test]
    fn universe_specs_validate_inputs() {
        let config = CorpusConfig::tiny();
        assert!(universe_specs(&config, &UniverseConfig::new(0, 10)).is_err());
        assert!(universe_specs(&config, &UniverseConfig::new(6, 11)).is_err());
        let mut bad = UniverseConfig::new(2, 8);
        bad.mix = FamilyMix { weights: [0.0; 4] };
        assert!(universe_specs(&config, &bad).is_err());
        // The minimal universe (2 designs each) is fine.
        let specs = universe_specs(&config, &UniverseConfig::new(6, 12)).unwrap();
        assert!(specs
            .iter()
            .all(|s| s.train_designs == 1 && s.test_designs == 1));
    }

    #[test]
    fn universe_corpus_generates_end_to_end() {
        let config = CorpusConfig::tiny();
        let universe = UniverseConfig::new(5, 12);
        let specs = universe_specs(&config, &universe).unwrap();
        let corpus =
            generate_corpus_for_specs_with(&specs, &config, Parallelism::serial()).unwrap();
        assert_eq!(corpus.clients.len(), 5);
        for (c, spec) in corpus.clients.iter().zip(&specs) {
            assert_eq!(c.spec, *spec);
            // tiny scale: one placement per design.
            assert_eq!(c.train.len(), spec.train_designs);
            assert_eq!(c.test.len(), spec.test_designs);
        }
        assert!(generate_corpus_for_specs_with(&[], &config, Parallelism::serial()).is_err());
    }

    #[test]
    fn corpus_totals_scale() {
        let corpus = generate_corpus(&CorpusConfig::tiny()).unwrap();
        assert_eq!(corpus.total_train(), 50); // Σ train designs
        assert_eq!(corpus.total_test(), 24); // Σ test designs
    }
}
