//! Synthetic netlist generation.
//!
//! Generates clustered random netlists that honor a [`FamilyProfile`]:
//! cells are partitioned into logical clusters (modules), each net picks a
//! home cluster and stays inside it with probability `cluster_tightness`,
//! escaping to the whole design otherwise. Together with the Rent-style
//! fanout distribution this produces the locality structure placers and
//! routers see in real designs: mostly short nets plus a heavy tail of
//! global nets.

use rte_tensor::rng::Xoshiro256;

use crate::{EdaError, Family, FamilyProfile};

/// Index of a cell within its [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// Index of a net within its [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// A standard cell or macro instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// This cell's id (its index in [`Netlist::cells`]).
    pub id: CellId,
    /// Number of physical pins.
    pub pins: u8,
    /// True for macro blocks (placed as rectangular blockages).
    pub is_macro: bool,
    /// Logical cluster (module) this cell belongs to.
    pub cluster: u16,
}

/// A multi-pin net connecting two or more cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// This net's id (its index in [`Netlist::nets`]).
    pub id: NetId,
    /// Connected cells (first entry is the driver). At least two entries,
    /// all distinct.
    pub cells: Vec<CellId>,
}

impl Net {
    /// Number of pins on the net.
    pub fn degree(&self) -> usize {
        self.cells.len()
    }
}

/// A synthetic design: cells plus connectivity.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    /// Synthetic design name, unique per (family, seed).
    pub name: String,
    /// The benchmark family this design imitates.
    pub family: Family,
    /// All cells; `cells[i].id == CellId(i)`.
    pub cells: Vec<Cell>,
    /// All nets; `nets[i].id == NetId(i)`.
    pub nets: Vec<Net>,
    /// Number of logical clusters.
    pub cluster_count: usize,
}

impl Netlist {
    /// Total pin count over all cells.
    pub fn total_pins(&self) -> usize {
        self.cells.iter().map(|c| c.pins as usize).sum()
    }

    /// Number of macro cells.
    pub fn macro_count(&self) -> usize {
        self.cells.iter().filter(|c| c.is_macro).count()
    }

    /// Mean net degree.
    pub fn avg_net_degree(&self) -> f64 {
        if self.nets.is_empty() {
            return 0.0;
        }
        self.nets.iter().map(|n| n.degree()).sum::<usize>() as f64 / self.nets.len() as f64
    }
}

/// Generates a netlist for `family` from a design seed.
///
/// Distinct seeds give distinct designs; the same `(family, seed)` pair is
/// bit-reproducible. Seeds therefore play the role of design identity in
/// the Table 2 corpus (no two clients share a seed).
///
/// # Errors
///
/// Currently infallible in practice; returns [`EdaError::InvalidConfig`]
/// if the family profile is degenerate (defensive).
pub fn generate_netlist(family: Family, design_seed: u64) -> Result<Netlist, EdaError> {
    let profile = family.profile();
    validate_profile(&profile)?;
    let mut rng = Xoshiro256::seed_from(design_seed ^ 0xDE51_6E5E_EDDA_7A00);

    let n_cells = rng.range_usize(profile.cell_count.0, profile.cell_count.1 + 1);
    let n_clusters = rng.range_usize(profile.cluster_count.0, profile.cluster_count.1 + 1);

    // Cluster sizes via random proportions (Dirichlet-ish through
    // normalized uniforms) so modules have uneven, realistic sizes.
    let weights: Vec<f64> = (0..n_clusters).map(|_| 0.2 + rng.uniform_f64()).collect();
    let total_w: f64 = weights.iter().sum();
    let mut cluster_of_cell = Vec::with_capacity(n_cells);
    for (ci, w) in weights.iter().enumerate() {
        let share = ((w / total_w) * n_cells as f64).round() as usize;
        for _ in 0..share {
            cluster_of_cell.push(ci as u16);
        }
    }
    while cluster_of_cell.len() < n_cells {
        cluster_of_cell.push(rng.range_usize(0, n_clusters) as u16);
    }
    cluster_of_cell.truncate(n_cells);
    rng.shuffle(&mut cluster_of_cell);

    let n_macros = (n_cells as f64 * profile.macro_fraction * 0.02).round() as usize;
    let mut cells: Vec<Cell> = (0..n_cells)
        .map(|i| Cell {
            id: CellId(i as u32),
            pins: rng.range_usize(
                profile.pins_per_cell.0 as usize,
                profile.pins_per_cell.1 as usize + 1,
            ) as u8,
            is_macro: false,
            cluster: cluster_of_cell[i],
        })
        .collect();
    // Promote a few cells to macros (they get many pins).
    for _ in 0..n_macros {
        let i = rng.range_usize(0, n_cells);
        cells[i].is_macro = true;
        cells[i].pins = cells[i].pins.saturating_mul(4).max(12);
    }

    // Cells per cluster, for intra-cluster net sampling.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_clusters];
    for c in &cells {
        members[c.cluster as usize].push(c.id.0);
    }

    let n_nets = (n_cells as f64 * profile.nets_per_cell).round() as usize;
    let mut nets = Vec::with_capacity(n_nets);
    for ni in 0..n_nets {
        // Degree: 2 + Poisson tail shaped by avg_fanout and the Rent
        // exponent (heavier tail for higher exponents).
        let extra = rng.poisson((profile.avg_fanout - 2.0).max(0.0));
        let tail_boost = if rng.uniform_f64() < (profile.rent_exponent - 0.5) {
            rng.range_usize(0, 6)
        } else {
            0
        };
        let degree = 2 + extra + tail_boost;
        let local = rng.uniform_f64() < profile.cluster_tightness;
        let home = rng.range_usize(0, n_clusters);
        let pool: &[u32] = if local && members[home].len() >= degree {
            &members[home]
        } else {
            &[]
        };
        let mut chosen: Vec<CellId> = Vec::with_capacity(degree);
        if pool.is_empty() {
            // Global net: sample from the whole design.
            for idx in rng.sample_indices(n_cells, degree.min(n_cells)) {
                chosen.push(CellId(idx as u32));
            }
        } else {
            for idx in rng.sample_indices(pool.len(), degree) {
                chosen.push(CellId(pool[idx]));
            }
        }
        if chosen.len() >= 2 {
            nets.push(Net {
                id: NetId(ni as u32),
                cells: chosen,
            });
        }
    }
    // Re-index after any skips so `nets[i].id == NetId(i)` holds.
    for (i, net) in nets.iter_mut().enumerate() {
        net.id = NetId(i as u32);
    }

    Ok(Netlist {
        name: format!("{}_{design_seed:08x}", family_slug(family)),
        family,
        cells,
        nets,
        cluster_count: n_clusters,
    })
}

fn family_slug(family: Family) -> &'static str {
    match family {
        Family::Iscas89 => "s",
        Family::Itc99 => "b",
        Family::Iwls05 => "iwls",
        Family::Ispd15 => "ispd",
    }
}

fn validate_profile(p: &FamilyProfile) -> Result<(), EdaError> {
    if p.cell_count.0 == 0 || p.cell_count.0 > p.cell_count.1 {
        return Err(EdaError::InvalidConfig {
            reason: format!("bad cell count range {:?}", p.cell_count),
        });
    }
    if p.cluster_count.0 == 0 {
        return Err(EdaError::InvalidConfig {
            reason: "zero clusters".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_per_seed() {
        let a = generate_netlist(Family::Itc99, 42).unwrap();
        let b = generate_netlist(Family::Itc99, 42).unwrap();
        assert_eq!(a, b);
        let c = generate_netlist(Family::Itc99, 43).unwrap();
        assert_ne!(a.cells.len(), 0);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_family_cell_range() {
        for family in Family::ALL {
            let p = family.profile();
            for seed in 0..5 {
                let nl = generate_netlist(family, seed).unwrap();
                assert!(
                    (p.cell_count.0..=p.cell_count.1).contains(&nl.cells.len()),
                    "{family}: {} cells",
                    nl.cells.len()
                );
            }
        }
    }

    #[test]
    fn nets_are_valid() {
        let nl = generate_netlist(Family::Iwls05, 7).unwrap();
        for (i, net) in nl.nets.iter().enumerate() {
            assert_eq!(net.id, NetId(i as u32));
            assert!(net.degree() >= 2, "net degree {}", net.degree());
            let distinct: HashSet<_> = net.cells.iter().collect();
            assert_eq!(distinct.len(), net.degree(), "duplicate pins");
            for c in &net.cells {
                assert!((c.0 as usize) < nl.cells.len());
            }
        }
    }

    #[test]
    fn average_degree_tracks_profile() {
        for family in Family::ALL {
            let p = family.profile();
            let mut total = 0.0;
            let n = 4;
            for seed in 0..n {
                total += generate_netlist(family, seed).unwrap().avg_net_degree();
            }
            let avg = total / n as f64;
            assert!(
                (avg - p.avg_fanout).abs() < 1.2,
                "{family}: avg degree {avg} vs profile {}",
                p.avg_fanout
            );
        }
    }

    #[test]
    fn clusters_are_used() {
        let nl = generate_netlist(Family::Ispd15, 3).unwrap();
        let used: HashSet<u16> = nl.cells.iter().map(|c| c.cluster).collect();
        assert!(used.len() > 1, "cells should span clusters");
        assert!(used.len() <= nl.cluster_count);
    }

    #[test]
    fn most_nets_are_intra_cluster() {
        // The locality knob must actually bias connectivity.
        let nl = generate_netlist(Family::Iscas89, 11).unwrap();
        let intra = nl
            .nets
            .iter()
            .filter(|n| {
                let c0 = nl.cells[n.cells[0].0 as usize].cluster;
                n.cells.iter().all(|c| nl.cells[c.0 as usize].cluster == c0)
            })
            .count();
        let frac = intra as f64 / nl.nets.len() as f64;
        assert!(frac > 0.3, "intra-cluster fraction {frac}");
    }

    #[test]
    fn ispd_family_has_macros() {
        let nl = generate_netlist(Family::Ispd15, 1).unwrap();
        assert!(nl.macro_count() > 0);
        let nl2 = generate_netlist(Family::Iscas89, 1).unwrap();
        assert_eq!(nl2.macro_count(), 0);
    }

    #[test]
    fn names_encode_family_and_seed() {
        let nl = generate_netlist(Family::Itc99, 0xAB).unwrap();
        assert!(nl.name.starts_with("b_"));
        assert!(nl.name.contains("000000ab"));
    }
}
