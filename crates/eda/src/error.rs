//! Error type for the EDA substrate.

use std::error::Error;
use std::fmt;

use rte_tensor::TensorError;

/// Error produced while generating synthetic EDA data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdaError {
    /// A generation configuration was invalid.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for EdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdaError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            EdaError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for EdaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EdaError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for EdaError {
    fn from(e: TensorError) -> Self {
        EdaError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EdaError::InvalidConfig {
            reason: "zero grid".into(),
        };
        assert!(e.to_string().contains("zero grid"));
        assert!(Error::source(&e).is_none());
        let t: EdaError = TensorError::LengthMismatch {
            expected: 1,
            got: 2,
        }
        .into();
        assert!(Error::source(&t).is_some());
    }
}
