//! Error type for the EDA substrate.

use std::error::Error;
use std::fmt;

use rte_tensor::TensorError;

/// Error produced while generating synthetic EDA data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdaError {
    /// A generation configuration was invalid.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A corpus shard file could not be written, opened or decoded.
    Shard(ShardError),
}

impl fmt::Display for EdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdaError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            EdaError::Tensor(e) => write!(f, "tensor error: {e}"),
            EdaError::Shard(e) => write!(f, "shard error: {e}"),
        }
    }
}

impl Error for EdaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EdaError::Tensor(e) => Some(e),
            EdaError::Shard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for EdaError {
    fn from(e: TensorError) -> Self {
        EdaError::Tensor(e)
    }
}

impl From<ShardError> for EdaError {
    fn from(e: ShardError) -> Self {
        EdaError::Shard(e)
    }
}

/// Typed failure modes of the binary corpus shard format
/// ([`crate::shard`]). Every variant names the offending file (or
/// directory), so a failing out-of-core run points straight at the bad
/// shard instead of panicking mid-stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// An underlying I/O operation failed (message carries the OS error).
    Io {
        /// File or directory the operation targeted.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The file does not start with the shard magic — not a shard file.
    WrongMagic {
        /// The offending file.
        path: String,
    },
    /// The shard was written by an unknown format version.
    UnsupportedVersion {
        /// The offending file.
        path: String,
        /// Version number found in the file.
        found: u32,
    },
    /// The file ends before the bytes its header promises.
    Truncated {
        /// The offending file.
        path: String,
        /// What was being read when the file ran out.
        context: String,
    },
    /// A checksum did not match — the file was corrupted in transit or
    /// on disk.
    CrcMismatch {
        /// The offending file.
        path: String,
        /// Which checksummed region failed (`header` or `record N`).
        what: String,
    },
    /// The shard holds zero samples — structurally valid but useless,
    /// and always a generation bug upstream.
    EmptyShard {
        /// The offending file.
        path: String,
    },
    /// The shard decoded but violates its own invariants (bad design
    /// index, inconsistent geometry, …).
    Corrupt {
        /// The offending file.
        path: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A corpus directory is not a coherent shard set (missing splits,
    /// mixed seeds, no shards at all).
    Layout {
        /// The corpus directory.
        dir: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io { path, message } => write!(f, "{path}: i/o error: {message}"),
            ShardError::WrongMagic { path } => {
                write!(f, "{path}: not a corpus shard (bad magic)")
            }
            ShardError::UnsupportedVersion { path, found } => {
                write!(f, "{path}: unsupported shard version {found}")
            }
            ShardError::Truncated { path, context } => {
                write!(f, "{path}: truncated while reading {context}")
            }
            ShardError::CrcMismatch { path, what } => {
                write!(f, "{path}: CRC mismatch in {what}")
            }
            ShardError::EmptyShard { path } => write!(f, "{path}: shard holds zero samples"),
            ShardError::Corrupt { path, reason } => write!(f, "{path}: corrupt shard: {reason}"),
            ShardError::Layout { dir, reason } => {
                write!(f, "{dir}: bad corpus layout: {reason}")
            }
        }
    }
}

impl Error for ShardError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EdaError::InvalidConfig {
            reason: "zero grid".into(),
        };
        assert!(e.to_string().contains("zero grid"));
        assert!(Error::source(&e).is_none());
        let t: EdaError = TensorError::LengthMismatch {
            expected: 1,
            got: 2,
        }
        .into();
        assert!(Error::source(&t).is_some());
    }
}
