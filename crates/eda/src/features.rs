//! Input feature extraction (§4.4 of the paper).
//!
//! Produces the `c`-channel tensor a routability estimator consumes. The
//! channels follow the paper's menu — *cell density features* (cell
//! density, pin density, macro/routing blockage) and *wire density
//! features* (RUDY, directional fly-line demand):
//!
//! | # | channel | kind |
//! |---|---------|------|
//! | 0 | standard-cell density | cell density |
//! | 1 | pin density | cell density |
//! | 2 | macro / routing blockage mask | cell density |
//! | 3 | RUDY | wire density |
//! | 4 | horizontal fly-lines (directional RUDY) | wire density |
//! | 5 | vertical fly-lines (directional RUDY) | wire density |
//!
//! The directional channels are bounding-box estimates, deliberately
//! weaker than the L-routed demand that drives the DRC labels: the
//! estimator has to learn both the fly-line → real-congestion mapping and
//! each family's direction weighting — neither is readable off a single
//! channel.
//!
//! Each channel is squashed with `x / (x + k)` (a saturating soft
//! normalizer with channel-specific scale `k`). Unlike per-sample max
//! normalization this keeps *absolute* scale differences between designs
//! and families visible — the inter-client heterogeneity the federated
//! experiments need.

use rte_tensor::Tensor;

use crate::congestion::{rudy, rudy_directional};
use crate::netlist::Netlist;
use crate::placement::Placement;
use crate::EdaError;

/// Number of feature channels produced by [`extract_features`].
pub const FEATURE_CHANNELS: usize = 6;

/// Soft normalization scales per channel (`x / (x + k)`), chosen so typical
/// gcell values land mid-range.
const CHANNEL_SCALES: [f64; FEATURE_CHANNELS] = [4.0, 12.0, 1.0, 25.0, 14.0, 14.0];

/// Extracts the `(FEATURE_CHANNELS, H, W)` input tensor for one placement.
///
/// # Errors
///
/// Returns [`EdaError::Tensor`] only on internal shape inconsistencies
/// (defensive; the geometry is derived from the placement itself).
pub fn extract_features(netlist: &Netlist, placement: &Placement) -> Result<Tensor, EdaError> {
    let (w, h) = (placement.grid.width, placement.grid.height);
    let (fly_h, fly_v) = rudy_directional(netlist, placement);
    let channels: [Vec<f64>; FEATURE_CHANNELS] = [
        placement.cell_density(netlist),
        placement.pin_density(netlist),
        placement.blockage_mask(),
        rudy(netlist, placement),
        fly_h,
        fly_v,
    ];
    let mut data = Vec::with_capacity(FEATURE_CHANNELS * h * w);
    for (ci, channel) in channels.iter().enumerate() {
        debug_assert_eq!(channel.len(), h * w);
        let k = CHANNEL_SCALES[ci];
        data.extend(channel.iter().map(|&v| (v / (v + k)) as f32));
    }
    Ok(Tensor::from_vec(data, &[FEATURE_CHANNELS, h, w])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::generate_netlist;
    use crate::placement::{place, PlacementConfig};
    use crate::Family;

    fn sample(family: Family, seed: u64) -> Tensor {
        let nl = generate_netlist(family, seed).unwrap();
        let pl = place(&nl, &PlacementConfig::new(16, 16, seed ^ 0xF00)).unwrap();
        extract_features(&nl, &pl).unwrap()
    }

    #[test]
    fn shape_and_range() {
        let f = sample(Family::Itc99, 1);
        assert_eq!(f.shape().dims(), &[FEATURE_CHANNELS, 16, 16]);
        assert!(f.data().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn channels_are_informative() {
        // Every channel except blockage must vary across the die for a
        // typical design; the blockage channel may be all-zero for
        // macro-free families.
        let f = sample(Family::Ispd15, 2);
        for c in 0..FEATURE_CHANNELS {
            let hw = 256;
            let slice = &f.data()[c * hw..(c + 1) * hw];
            let min = slice.iter().copied().fold(f32::INFINITY, f32::min);
            let max = slice.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if c == 2 {
                continue;
            }
            assert!(max > min, "channel {c} is constant");
        }
    }

    #[test]
    fn macro_family_has_blockage_channel() {
        let f = sample(Family::Ispd15, 3);
        let hw = 256;
        let blockage = &f.data()[2 * hw..3 * hw];
        assert!(blockage.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn families_have_different_feature_statistics() {
        // The heterogeneity check: mean RUDY differs strongly between the
        // lightest and heaviest family.
        let hw = 256;
        let mean_rudy =
            |f: &Tensor| -> f32 { f.data()[3 * hw..4 * hw].iter().sum::<f32>() / hw as f32 };
        let light = mean_rudy(&sample(Family::Iscas89, 4));
        let heavy = mean_rudy(&sample(Family::Ispd15, 4));
        assert!(
            heavy > light * 1.3,
            "ISPD'15 RUDY {heavy} vs ISCAS'89 {light}"
        );
    }

    #[test]
    fn deterministic() {
        let a = sample(Family::Iwls05, 5);
        let b = sample(Family::Iwls05, 5);
        assert_eq!(a, b);
    }
}
