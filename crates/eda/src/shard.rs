//! Streaming binary corpus shards — the out-of-core data substrate.
//!
//! The paper's clients train on placement corpora that in a real
//! deployment far exceed any single machine's memory; this module stores
//! a generated corpus as one **shard file per `(client, split)`** so
//! training and evaluation can stream bounded-memory chunks instead of
//! materializing every tensor up front:
//!
//! - [`ShardWriter`] / [`ShardReader`] — one shard file: a versioned,
//!   CRC'd header carrying full provenance (master seed, client, split,
//!   family, grid, placement scale, design-name table) followed by
//!   **fixed-size sample records**, so record `i` lives at a computable
//!   offset and any chunk is one seek away.
//! - [`CorpusWriter`] — generates the Table 2 corpus *directly into
//!   shard files* in bounded-memory chunks: placement jobs are processed
//!   `chunk` at a time on the [`rte_tensor::parallel`] pool and appended
//!   in fixed `(client, split, design, placement)` order, so peak memory
//!   is proportional to the chunk size, not the corpus, and the bytes
//!   written are **identical for every thread count and chunk size**.
//! - [`CorpusReader`] — opens a shard directory back into per-client
//!   [`ShardReader`] pairs, validating that the files form one coherent
//!   corpus (same seed, grid and channel count everywhere).
//!
//! # Shard file layout (version 1, all integers little-endian)
//!
//! ```text
//! offset 0   magic      "RTESHRD\0"                      8 bytes
//!        8   version    u32 = 1
//!       12   header_len u32   (length of the header body)
//!       16   header_crc u32   (CRC-32/IEEE of the header body)
//!       20   header body:
//!              seed u64 · client u32 · split u8 · family u8
//!              grid_w u32 · grid_h u32 · channels u32
//!              placement_scale f64 · n_samples u64
//!              n_designs u32 · (name_len u16 + utf-8 name)*
//!       20+header_len   records, each exactly record_len bytes:
//!              design_idx u32
//!              features   channels·H·W f32
//!              label      H·W f32
//!              record_crc u32   (CRC-32 of the record bytes above)
//! ```
//!
//! The header is written twice: once at create time with `n_samples = 0`
//! and once at [`ShardWriter::finish`] with the real count (a single
//! seek-back — the header length never changes because the design table
//! is fixed at create time). A shard that was never finished therefore
//! fails to open with a typed error instead of yielding partial data.
//!
//! # Shard file layout (version 2, compressed)
//!
//! Version 2 replaces the raw record region with compressed frames; the
//! header body gains a codec tag (u8) and a records-per-frame count
//! (u32), and a CRC'd chunk directory maps frames to file offsets:
//!
//! ```text
//! prelude (version = 2) · header body (v1 fields + codec + chunk)
//! chunk directory: n_frames x comp_len u64, then dir_crc u32
//! frames: each = delta+bitpacked payload, then frame_crc u32
//! ```
//!
//! Frames hold `chunk` records each (the last may be shorter); the
//! codec ([`compress_shard`]) is exact, so decompressed record bytes —
//! per-record CRCs included — are bit-identical to the raw layout.
//! [`ShardWriter`] always emits version 1; version 2 is produced by
//! [`compress_shard`] / [`compact_dir`] and read transparently by
//! [`ShardReader`].
//!
//! Every failure mode is a typed [`ShardError`] — truncation, wrong
//! magic, unknown version, CRC mismatch, zero samples — never a panic;
//! `crates/eda/tests/shard_format.rs` pins each one. Hostile inputs are
//! the design center: every length field a reader consumes is bounded
//! by a documented validation limit ([`MAX_HEADER_LEN`],
//! [`MAX_GRID_DIM`], [`MAX_CHANNELS`], [`MAX_DESIGNS`],
//! [`MAX_COMPRESS_CHUNK`]) or by the real on-disk file length *before*
//! it is used to allocate or do arithmetic.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use rte_tensor::parallel::{map_with, Parallelism};
use rte_tensor::Tensor;

use crate::corpus::{build_jobs, placement_sample, synthesize_design};
use crate::corpus::{ClientSpec, CorpusConfig, Split, PAPER_CLIENTS};
use crate::dataset::Sample;
use crate::placement::GridDims;
use crate::{EdaError, Family, ShardError};

/// First eight bytes of every shard file.
pub const SHARD_MAGIC: [u8; 8] = *b"RTESHRD\0";

/// The raw (uncompressed, fixed-size-record) shard format version.
/// [`ShardWriter`] always writes this version; readers accept it and
/// [`SHARD_VERSION_COMPRESSED`].
pub const SHARD_VERSION: u32 = 1;

/// The compressed shard format version: the same header fields plus a
/// codec tag and frame size, a CRC'd chunk directory, and delta+bitpacked
/// record frames instead of raw fixed-size records. Produced by
/// [`compress_shard`] / [`compact_dir`], never by [`ShardWriter`].
pub const SHARD_VERSION_COMPRESSED: u32 = 2;

/// File extension of shard files (`client03.train.rtes`).
pub const SHARD_EXTENSION: &str = "rtes";

/// Default samples per streamed generation chunk — small enough that a
/// chunk of 16×16×6-channel samples stays well under a megabyte, large
/// enough to amortize the fork/join of one parallel map.
pub const DEFAULT_CHUNK: usize = 64;

/// Default records per compressed frame: large enough for the bitpacker
/// to amortize its group headers, small enough that decompressing one
/// frame to serve a minibatch stays cheap.
pub const DEFAULT_COMPRESS_CHUNK: usize = 256;

// -----------------------------------------------------------------
// Validation limits — the "never trust a length field" contract.
//
// Every size a reader takes from the file is checked against one of
// these documented caps (or against the real on-disk file length)
// *before* it is used to allocate, multiply, or divide, so a hostile
// or damaged shard yields a typed `ShardError` instead of a wrapped
// size check, a multi-GB allocation, or a panic. The caps are listed
// in the "validation limits" table of docs/ARCHITECTURE.md.
// -----------------------------------------------------------------

/// Upper bound on the header body length claimed by the prelude. The
/// header is ~50 fixed bytes plus the design-name table, so even a
/// maximal table ([`MAX_DESIGNS`] short names) fits comfortably; the
/// prelude field is read *before* the header CRC can be checked, so it
/// must be capped before the header buffer is allocated.
pub const MAX_HEADER_LEN: u32 = 1 << 20;

/// Upper bound on either gcell grid dimension (the paper uses 16×16).
pub const MAX_GRID_DIM: usize = 1024;

/// Upper bound on feature channels per sample.
pub const MAX_CHANNELS: usize = 64;

/// Upper bound on design-table entries per shard.
pub const MAX_DESIGNS: usize = 65_536;

/// Upper bound on records per compressed frame.
pub const MAX_COMPRESS_CHUNK: usize = 1 << 20;

pub(crate) const PRELUDE_LEN: usize = 20;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven, no deps.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32/IEEE of `bytes` (the zlib `crc32`, init `!0`, final xor `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------
// Little-endian encode/decode helpers over byte buffers.
// ---------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Byte-slice cursor whose reads fail with [`ShardError::Truncated`]
/// instead of panicking.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: &'a str,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, context: &str) -> Result<&'a [u8], ShardError> {
        if self.pos + n > self.bytes.len() {
            return Err(ShardError::Truncated {
                path: self.path.to_owned(),
                context: context.to_owned(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, context: &str) -> Result<u8, ShardError> {
        Ok(self.take(1, context)?[0])
    }

    fn u16(&mut self, context: &str) -> Result<u16, ShardError> {
        Ok(u16::from_le_bytes(
            self.take(2, context)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self, context: &str) -> Result<u32, ShardError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, context: &str) -> Result<u64, ShardError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }
}

fn family_code(family: Family) -> u8 {
    match family {
        Family::Iscas89 => 0,
        Family::Itc99 => 1,
        Family::Iwls05 => 2,
        Family::Ispd15 => 3,
    }
}

fn family_from_code(code: u8) -> Option<Family> {
    match code {
        0 => Some(Family::Iscas89),
        1 => Some(Family::Itc99),
        2 => Some(Family::Iwls05),
        3 => Some(Family::Ispd15),
        _ => None,
    }
}

fn split_code(split: Split) -> u8 {
    match split {
        Split::Train => 0,
        Split::Test => 1,
    }
}

fn split_from_code(code: u8) -> Option<Split> {
    match code {
        0 => Some(Split::Train),
        1 => Some(Split::Test),
        _ => None,
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> ShardError {
    ShardError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

// ---------------------------------------------------------------------
// Shard metadata (the provenance header).
// ---------------------------------------------------------------------

/// Provenance carried by every shard header: enough to regenerate the
/// shard from scratch and to verify a directory of shards belongs to one
/// corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMeta {
    /// Master corpus seed the samples derive from.
    pub seed: u64,
    /// 1-based client index (Table 2 numbering).
    pub client_index: usize,
    /// Which split of the client's data this shard holds.
    pub split: Split,
    /// Benchmark family of the client's designs.
    pub family: Family,
    /// Gcell grid of every sample.
    pub grid: GridDims,
    /// Feature channels per sample (currently
    /// [`crate::features::FEATURE_CHANNELS`]).
    pub channels: usize,
    /// Placement-count scale the corpus was generated at.
    pub placement_scale: f64,
    /// Design-name table; records reference designs by index into this
    /// list, keeping records fixed-size.
    pub designs: Vec<String>,
}

impl ShardMeta {
    /// Bytes of one sample record (design index + features + label +
    /// record CRC). Cannot overflow for any metadata a reader accepts:
    /// `ShardMeta::decode_body` bounds the geometry by
    /// [`MAX_GRID_DIM`] / [`MAX_CHANNELS`] first.
    pub fn record_len(&self) -> usize {
        let cells = self.grid.width * self.grid.height;
        4 + (self.channels * cells + cells) * 4 + 4
    }

    /// The canonical shard file name for this meta:
    /// `client{NN}.{split}.rtes`.
    pub fn file_name(&self) -> String {
        format!(
            "client{:02}.{}.{}",
            self.client_index,
            self.split.token(),
            SHARD_EXTENSION
        )
    }

    fn encode_body(&self, n_samples: u64) -> Vec<u8> {
        let mut body = Vec::new();
        put_u64(&mut body, self.seed);
        put_u32(&mut body, self.client_index as u32);
        body.push(split_code(self.split));
        body.push(family_code(self.family));
        put_u32(&mut body, self.grid.width as u32);
        put_u32(&mut body, self.grid.height as u32);
        put_u32(&mut body, self.channels as u32);
        put_u64(&mut body, self.placement_scale.to_bits());
        put_u64(&mut body, n_samples);
        put_u32(&mut body, self.designs.len() as u32);
        for name in &self.designs {
            put_u16(&mut body, name.len() as u16);
            body.extend_from_slice(name.as_bytes());
        }
        body
    }

    /// The version-2 header body: the version-1 fields followed by the
    /// codec tag and the records-per-frame count.
    fn encode_body_compressed(&self, n_samples: u64, compression: CompressionInfo) -> Vec<u8> {
        let mut body = self.encode_body(n_samples);
        body.push(CODEC_DELTA_BITPACK);
        put_u32(&mut body, compression.chunk_records as u32);
        body
    }

    fn decode_body(
        bytes: &[u8],
        path: &str,
        version: u32,
    ) -> Result<(ShardMeta, u64, Option<CompressionInfo>), ShardError> {
        let mut c = Cursor {
            bytes,
            pos: 0,
            path,
        };
        let seed = c.u64("header seed")?;
        let client_index = c.u32("header client index")? as usize;
        let split_byte = c.u8("header split")?;
        let split = split_from_code(split_byte).ok_or_else(|| ShardError::Corrupt {
            path: path.to_owned(),
            reason: format!("unknown split code {split_byte}"),
        })?;
        let family_byte = c.u8("header family")?;
        let family = family_from_code(family_byte).ok_or_else(|| ShardError::Corrupt {
            path: path.to_owned(),
            reason: format!("unknown family code {family_byte}"),
        })?;
        let width = c.u32("header grid width")? as usize;
        let height = c.u32("header grid height")? as usize;
        let channels = c.u32("header channels")? as usize;
        let placement_scale = f64::from_bits(c.u64("header placement scale")?);
        let n_samples = c.u64("header sample count")?;
        let n_designs = c.u32("header design count")? as usize;
        if width == 0 || height == 0 || channels == 0 {
            return Err(ShardError::Corrupt {
                path: path.to_owned(),
                reason: format!("degenerate geometry {channels}x{height}x{width}"),
            });
        }
        if width > MAX_GRID_DIM || height > MAX_GRID_DIM || channels > MAX_CHANNELS {
            return Err(ShardError::Corrupt {
                path: path.to_owned(),
                reason: format!(
                    "geometry {channels}x{height}x{width} exceeds the validation limits \
                     ({MAX_CHANNELS} channels, {MAX_GRID_DIM}x{MAX_GRID_DIM} grid)"
                ),
            });
        }
        if n_designs == 0 {
            return Err(ShardError::Corrupt {
                path: path.to_owned(),
                reason: "empty design table".into(),
            });
        }
        if n_designs > MAX_DESIGNS {
            return Err(ShardError::Corrupt {
                path: path.to_owned(),
                reason: format!(
                    "design table of {n_designs} entries exceeds the {MAX_DESIGNS} limit"
                ),
            });
        }
        let mut designs = Vec::with_capacity(n_designs.min(4096));
        for i in 0..n_designs {
            let len = c.u16("design name length")? as usize;
            let raw = c.take(len, "design name")?;
            let name = std::str::from_utf8(raw).map_err(|_| ShardError::Corrupt {
                path: path.to_owned(),
                reason: format!("design name {i} is not utf-8"),
            })?;
            designs.push(name.to_owned());
        }
        let compression = if version == SHARD_VERSION_COMPRESSED {
            let codec = c.u8("header codec")?;
            if codec != CODEC_DELTA_BITPACK {
                return Err(ShardError::Corrupt {
                    path: path.to_owned(),
                    reason: format!("unknown compression codec {codec}"),
                });
            }
            let chunk_records = c.u32("header frame size")? as usize;
            if chunk_records == 0 || chunk_records > MAX_COMPRESS_CHUNK {
                return Err(ShardError::Corrupt {
                    path: path.to_owned(),
                    reason: format!(
                        "frame size of {chunk_records} records outside 1..={MAX_COMPRESS_CHUNK}"
                    ),
                });
            }
            Some(CompressionInfo { chunk_records })
        } else {
            None
        };
        if c.pos != bytes.len() {
            return Err(ShardError::Corrupt {
                path: path.to_owned(),
                reason: format!("{} trailing header bytes", bytes.len() - c.pos),
            });
        }
        Ok((
            ShardMeta {
                seed,
                client_index,
                split,
                family,
                grid: GridDims::new(width, height),
                channels,
                placement_scale,
                designs,
            },
            n_samples,
            compression,
        ))
    }
}

/// Compression parameters carried by a version-2 shard header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionInfo {
    /// Records per compressed frame (the final frame may be shorter).
    pub chunk_records: usize,
}

/// The only codec tag defined so far: XOR-delta over little-endian u32
/// words, bitpacked in 32-word groups. Exact by construction — the
/// decoder reproduces the raw record bytes bit for bit.
const CODEC_DELTA_BITPACK: u8 = 1;

fn prelude_and_body(version: u32, body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(PRELUDE_LEN + body.len());
    out.extend_from_slice(&SHARD_MAGIC);
    put_u32(&mut out, version);
    put_u32(&mut out, body.len() as u32);
    put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

fn encode_file_header(meta: &ShardMeta, n_samples: u64) -> Vec<u8> {
    prelude_and_body(SHARD_VERSION, meta.encode_body(n_samples))
}

// ---------------------------------------------------------------------
// Shared open-time validation — one hardened path for the read-based
// and the memory-mapped readers.
// ---------------------------------------------------------------------

/// Everything a reader learns from a validated prelude + header body.
#[derive(Debug)]
pub(crate) struct ValidatedHeader {
    pub(crate) meta: ShardMeta,
    pub(crate) n_samples: u64,
    /// Bytes per raw record (derived from validated geometry, so the
    /// arithmetic cannot have wrapped).
    pub(crate) record_len: u64,
    /// First byte after the header body: raw records (v1) or the chunk
    /// directory (v2).
    pub(crate) data_offset: u64,
    pub(crate) compression: Option<CompressionInfo>,
}

/// Validates the fixed 20-byte prelude: magic, supported version, and —
/// *before anything is allocated from it* — the header-length cap and
/// its fit inside the real file. Returns `(version, header_len,
/// header_crc)`.
pub(crate) fn parse_prelude(
    prelude: &[u8; PRELUDE_LEN],
    file_len: u64,
    path_str: &str,
) -> Result<(u32, u32, u32), ShardError> {
    if prelude[..8] != SHARD_MAGIC {
        return Err(ShardError::WrongMagic {
            path: path_str.to_owned(),
        });
    }
    let version = u32::from_le_bytes(prelude[8..12].try_into().expect("4 bytes"));
    if version != SHARD_VERSION && version != SHARD_VERSION_COMPRESSED {
        return Err(ShardError::UnsupportedVersion {
            path: path_str.to_owned(),
            found: version,
        });
    }
    let header_len = u32::from_le_bytes(prelude[12..16].try_into().expect("4 bytes"));
    let header_crc = u32::from_le_bytes(prelude[16..20].try_into().expect("4 bytes"));
    // The cap comes first: this field is attacker-controlled until the
    // header CRC is checked, and the CRC cannot be checked without
    // first allocating a buffer of this very size.
    if header_len > MAX_HEADER_LEN {
        return Err(ShardError::Corrupt {
            path: path_str.to_owned(),
            reason: format!("header length {header_len} exceeds the {MAX_HEADER_LEN}-byte limit"),
        });
    }
    if file_len < PRELUDE_LEN as u64 + u64::from(header_len) {
        return Err(ShardError::Truncated {
            path: path_str.to_owned(),
            context: "header body".into(),
        });
    }
    Ok((version, header_len, header_crc))
}

/// Validates a header body (CRC, decoded fields, geometry limits) and —
/// for raw shards — the advertised sample count against the real file
/// length, with overflow-checked arithmetic throughout.
pub(crate) fn validate_header(
    version: u32,
    body: &[u8],
    header_crc: u32,
    file_len: u64,
    path_str: &str,
) -> Result<ValidatedHeader, ShardError> {
    if crc32(body) != header_crc {
        return Err(ShardError::CrcMismatch {
            path: path_str.to_owned(),
            what: "header".into(),
        });
    }
    let (meta, n_samples, compression) = ShardMeta::decode_body(body, path_str, version)?;
    if n_samples == 0 {
        return Err(ShardError::EmptyShard {
            path: path_str.to_owned(),
        });
    }
    let record_len = meta.record_len() as u64;
    let data_offset = PRELUDE_LEN as u64 + body.len() as u64;
    if compression.is_none() {
        // Raw layout: the records span the rest of the file exactly.
        // A huge claimed count must not wrap the multiply into passing
        // the size check.
        let expected = n_samples
            .checked_mul(record_len)
            .and_then(|bytes| data_offset.checked_add(bytes))
            .ok_or_else(|| ShardError::Corrupt {
                path: path_str.to_owned(),
                reason: format!(
                    "sample count {n_samples} x record length {record_len} overflows the \
                     file-size check"
                ),
            })?;
        if file_len < expected {
            return Err(ShardError::Truncated {
                path: path_str.to_owned(),
                context: format!(
                    "sample records ({} of {n_samples} present)",
                    (file_len.saturating_sub(data_offset)) / record_len
                ),
            });
        }
        if file_len > expected {
            return Err(ShardError::Corrupt {
                path: path_str.to_owned(),
                reason: format!(
                    "{} trailing bytes after the last record",
                    file_len - expected
                ),
            });
        }
    }
    Ok(ValidatedHeader {
        meta,
        n_samples,
        record_len,
        data_offset,
        compression,
    })
}

/// Verifies one raw record's trailing CRC-32.
pub(crate) fn check_record_crc(raw: &[u8], index: usize, path_str: &str) -> Result<(), ShardError> {
    let body_len = raw.len() - 4;
    let stored = u32::from_le_bytes(raw[body_len..].try_into().expect("4 bytes"));
    if crc32(&raw[..body_len]) != stored {
        return Err(ShardError::CrcMismatch {
            path: path_str.to_owned(),
            what: format!("record {index}"),
        });
    }
    Ok(())
}

/// Decodes one raw record's planes (CRC already checked by the caller):
/// bounds-checks the design reference, appends the f32 feature and label
/// planes, and returns the design index.
pub(crate) fn decode_record_planes(
    raw: &[u8],
    meta: &ShardMeta,
    index: usize,
    path_str: &str,
    features: &mut Vec<f32>,
    labels: &mut Vec<f32>,
) -> Result<usize, ShardError> {
    let design_idx = u32::from_le_bytes(raw[..4].try_into().expect("4 bytes")) as usize;
    if design_idx >= meta.designs.len() {
        return Err(ShardError::Corrupt {
            path: path_str.to_owned(),
            reason: format!(
                "record {index} references design {design_idx} of {}",
                meta.designs.len()
            ),
        });
    }
    let cells = meta.grid.width * meta.grid.height;
    let f_len = meta.channels * cells;
    let mut off = 4;
    for _ in 0..f_len {
        features.push(f32::from_bits(u32::from_le_bytes(
            raw[off..off + 4].try_into().expect("4 bytes"),
        )));
        off += 4;
    }
    for _ in 0..cells {
        labels.push(f32::from_bits(u32::from_le_bytes(
            raw[off..off + 4].try_into().expect("4 bytes"),
        )));
        off += 4;
    }
    Ok(design_idx)
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

/// Appends fixed-size sample records to one shard file.
///
/// Created with the full design table up front (so the header length is
/// fixed), appended to sample by sample, and sealed with
/// [`ShardWriter::finish`], which patches the real sample count into the
/// header. Dropping a writer without finishing leaves a file that
/// [`ShardReader::open`] rejects — a half-written shard can never be
/// mistaken for data.
#[derive(Debug)]
pub struct ShardWriter {
    file: BufWriter<File>,
    path: PathBuf,
    meta: ShardMeta,
    n_samples: u64,
}

impl ShardWriter {
    /// Creates (truncating) the shard file and writes a provisional
    /// header with a zero sample count.
    ///
    /// # Errors
    ///
    /// [`ShardError::Io`] on filesystem failures; [`EdaError::InvalidConfig`]
    /// for degenerate metadata (no designs, zero-sized grid, a design
    /// name longer than a `u16` length field).
    pub fn create(path: impl Into<PathBuf>, meta: ShardMeta) -> Result<Self, EdaError> {
        let path = path.into();
        if meta.designs.is_empty() {
            return Err(EdaError::InvalidConfig {
                reason: "shard with an empty design table".into(),
            });
        }
        if meta.grid.width == 0 || meta.grid.height == 0 || meta.channels == 0 {
            return Err(EdaError::InvalidConfig {
                reason: "shard with zero-sized sample geometry".into(),
            });
        }
        if meta.grid.width > MAX_GRID_DIM
            || meta.grid.height > MAX_GRID_DIM
            || meta.channels > MAX_CHANNELS
            || meta.designs.len() > MAX_DESIGNS
        {
            return Err(EdaError::InvalidConfig {
                reason: format!(
                    "shard geometry {}x{}x{} / {} designs exceeds the format's validation \
                     limits (readers would reject it)",
                    meta.channels,
                    meta.grid.height,
                    meta.grid.width,
                    meta.designs.len()
                ),
            });
        }
        if let Some(name) = meta.designs.iter().find(|n| n.len() > u16::MAX as usize) {
            return Err(EdaError::InvalidConfig {
                reason: format!(
                    "design name of {} bytes exceeds the format limit",
                    name.len()
                ),
            });
        }
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err(&path, &e))?;
        let mut writer = ShardWriter {
            file: BufWriter::new(file),
            path,
            meta,
            n_samples: 0,
        };
        let header = encode_file_header(&writer.meta, 0);
        writer
            .file
            .write_all(&header)
            .map_err(|e| io_err(&writer.path, &e))?;
        Ok(writer)
    }

    /// The provenance this shard was created with.
    pub fn meta(&self) -> &ShardMeta {
        &self.meta
    }

    /// Samples appended so far.
    pub fn len(&self) -> usize {
        self.n_samples as usize
    }

    /// True before the first [`ShardWriter::append`].
    pub fn is_empty(&self) -> bool {
        self.n_samples == 0
    }

    /// Appends one sample record.
    ///
    /// # Errors
    ///
    /// [`EdaError::InvalidConfig`] when the sample's geometry disagrees
    /// with the header or its design name is not in the design table;
    /// [`ShardError::Io`] on write failures.
    pub fn append(&mut self, sample: &Sample) -> Result<(), EdaError> {
        let (h, w) = (self.meta.grid.height, self.meta.grid.width);
        let fdims = sample.features.shape().dims();
        let ldims = sample.label.shape().dims();
        if fdims != [self.meta.channels, h, w] || ldims != [1, h, w] {
            return Err(EdaError::InvalidConfig {
                reason: format!(
                    "sample geometry {fdims:?}/{ldims:?} disagrees with shard header \
                     ({}x{h}x{w})",
                    self.meta.channels
                ),
            });
        }
        let design_idx = self
            .meta
            .designs
            .iter()
            .position(|n| *n == sample.design)
            .ok_or_else(|| EdaError::InvalidConfig {
                reason: format!(
                    "design {} missing from the shard design table",
                    sample.design
                ),
            })?;
        let mut record = Vec::with_capacity(self.meta.record_len());
        put_u32(&mut record, design_idx as u32);
        for &v in sample.features.data() {
            record.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        for &v in sample.label.data() {
            record.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let crc = crc32(&record);
        put_u32(&mut record, crc);
        debug_assert_eq!(record.len(), self.meta.record_len());
        self.file
            .write_all(&record)
            .map_err(|e| io_err(&self.path, &e))?;
        self.n_samples += 1;
        Ok(())
    }

    /// Seals the shard: rewrites the header with the final sample count
    /// and flushes to disk. Returns the number of samples written.
    ///
    /// # Errors
    ///
    /// [`ShardError::Io`] on flush/seek failures.
    pub fn finish(mut self) -> Result<u64, EdaError> {
        self.file.flush().map_err(|e| io_err(&self.path, &e))?;
        let file = self.file.get_mut();
        file.seek(SeekFrom::Start(0))
            .map_err(|e| io_err(&self.path, &e))?;
        let header = encode_file_header(&self.meta, self.n_samples);
        file.write_all(&header)
            .map_err(|e| io_err(&self.path, &e))?;
        file.sync_all().map_err(|e| io_err(&self.path, &e))?;
        Ok(self.n_samples)
    }
}

// ---------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------

/// Random-access reader over one sealed shard file.
///
/// Opening validates magic, version, header CRC, the advertised sample
/// count against the file size, and rejects zero-sample shards — all as
/// typed [`ShardError`]s. Records are fixed-size, so any sample or
/// contiguous range is one seek plus one read; per-record CRCs are
/// verified on every read. Reads take `&self` (an internal lock guards
/// the file cursor), so one reader can feed several worker threads.
#[derive(Debug)]
pub struct ShardReader {
    file: Mutex<File>,
    path: PathBuf,
    meta: ShardMeta,
    n_samples: usize,
    data_offset: u64,
    record_len: usize,
    compression: Option<CompressionInfo>,
    /// Per-frame `(file offset, compressed payload length)` for
    /// compressed shards; empty for raw shards.
    frames: Vec<(u64, usize)>,
}

impl ShardReader {
    /// Opens and validates a shard file.
    ///
    /// # Errors
    ///
    /// [`ShardError::WrongMagic`] / [`ShardError::UnsupportedVersion`]
    /// for foreign files, [`ShardError::Truncated`] when the file ends
    /// early, [`ShardError::CrcMismatch`] for a corrupted header,
    /// [`ShardError::EmptyShard`] for zero samples, and
    /// [`ShardError::Corrupt`] for structural violations.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, EdaError> {
        let path = path.into();
        let path_str = path.display().to_string();
        let mut file = File::open(&path).map_err(|e| io_err(&path, &e))?;
        let file_len = file.metadata().map_err(|e| io_err(&path, &e))?.len();
        let mut prelude = [0u8; PRELUDE_LEN];
        if file_len < PRELUDE_LEN as u64 {
            return Err(ShardError::Truncated {
                path: path_str,
                context: "file prelude".into(),
            }
            .into());
        }
        file.read_exact(&mut prelude)
            .map_err(|e| io_err(&path, &e))?;
        let (version, header_len, header_crc) = parse_prelude(&prelude, file_len, &path_str)?;
        // Allocation is safe here: `parse_prelude` capped `header_len`.
        let mut body = vec![0u8; header_len as usize];
        file.read_exact(&mut body).map_err(|e| io_err(&path, &e))?;
        let header = validate_header(version, &body, header_crc, file_len, &path_str)?;
        let frames = match header.compression {
            None => Vec::new(),
            Some(info) => read_frame_directory(&mut file, &header, info, file_len, &path_str)?,
        };
        Ok(ShardReader {
            file: Mutex::new(file),
            path,
            meta: header.meta,
            n_samples: header.n_samples as usize,
            data_offset: header.data_offset,
            record_len: header.record_len as usize,
            compression: header.compression,
            frames,
        })
    }

    /// True when the shard stores delta+bitpacked frames (version 2)
    /// instead of raw fixed-size records.
    pub fn is_compressed(&self) -> bool {
        self.compression.is_some()
    }

    /// The compression parameters, for compressed shards.
    pub fn compression(&self) -> Option<CompressionInfo> {
        self.compression
    }

    /// The provenance header.
    pub fn meta(&self) -> &ShardMeta {
        &self.meta
    }

    /// The shard file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of sample records (always ≥ 1 after a successful open).
    pub fn len(&self) -> usize {
        self.n_samples
    }

    /// Always false: zero-sample shards fail to open.
    pub fn is_empty(&self) -> bool {
        self.n_samples == 0
    }

    /// `(channels, height, width)` of every sample.
    pub fn geometry(&self) -> (usize, usize, usize) {
        (
            self.meta.channels,
            self.meta.grid.height,
            self.meta.grid.width,
        )
    }

    /// Reads the raw bytes of records `range`. Raw shards: one seek +
    /// one read under the file lock, so concurrent readers interleave
    /// cleanly. Compressed shards: decompresses the frames the range
    /// spans and concatenates the covered record bytes (bit-identical
    /// to the raw layout by codec construction).
    fn read_raw(&self, range: std::ops::Range<usize>) -> Result<Vec<u8>, EdaError> {
        let Some(info) = self.compression else {
            let mut buf = vec![0u8; (range.end - range.start) * self.record_len];
            let mut file = self.file.lock().expect("shard file lock poisoned");
            file.seek(SeekFrom::Start(
                self.data_offset + (range.start * self.record_len) as u64,
            ))
            .map_err(|e| io_err(&self.path, &e))?;
            file.read_exact(&mut buf).map_err(|e| {
                EdaError::Shard(ShardError::Truncated {
                    path: self.path.display().to_string(),
                    context: format!("records {}..{}: {e}", range.start, range.end),
                })
            })?;
            return Ok(buf);
        };
        let chunk = info.chunk_records;
        let mut out = Vec::with_capacity((range.end - range.start) * self.record_len);
        for frame_i in range.start / chunk..=(range.end - 1) / chunk {
            let frame_start = frame_i * chunk;
            let frame_records = chunk.min(self.n_samples - frame_start);
            let raw = self.read_frame(frame_i, frame_records)?;
            let lo = range.start.max(frame_start) - frame_start;
            let hi = range.end.min(frame_start + frame_records) - frame_start;
            out.extend_from_slice(&raw[lo * self.record_len..hi * self.record_len]);
        }
        Ok(out)
    }

    /// Reads and decompresses one frame of a compressed shard, verifying
    /// the frame CRC before the codec touches the payload.
    fn read_frame(&self, frame_i: usize, frame_records: usize) -> Result<Vec<u8>, EdaError> {
        let path_str = self.path.display().to_string();
        let (offset, comp_len) = self.frames[frame_i];
        let mut buf = vec![0u8; comp_len + 4];
        {
            let mut file = self.file.lock().expect("shard file lock poisoned");
            file.seek(SeekFrom::Start(offset))
                .map_err(|e| io_err(&self.path, &e))?;
            file.read_exact(&mut buf).map_err(|e| {
                EdaError::Shard(ShardError::Truncated {
                    path: path_str.clone(),
                    context: format!("compressed frame {frame_i}: {e}"),
                })
            })?;
        }
        let (payload, crc_bytes) = buf.split_at(comp_len);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(payload) != stored {
            return Err(ShardError::CrcMismatch {
                path: path_str,
                what: format!("compressed frame {frame_i}"),
            }
            .into());
        }
        let raw = pack::decompress(payload, frame_records * self.record_len, &path_str)?;
        Ok(raw)
    }

    fn check_range(&self, range: &std::ops::Range<usize>) -> Result<(), EdaError> {
        if range.start >= range.end || range.end > self.n_samples {
            return Err(EdaError::InvalidConfig {
                reason: format!(
                    "record range {range:?} invalid for shard of {} samples",
                    self.n_samples
                ),
            });
        }
        Ok(())
    }

    /// Decodes one raw record, verifying its CRC; appends the f32 planes
    /// to `features` / `labels` and returns the design index.
    fn decode_record(
        &self,
        index: usize,
        raw: &[u8],
        features: &mut Vec<f32>,
        labels: &mut Vec<f32>,
    ) -> Result<usize, EdaError> {
        let path_str = self.path.display().to_string();
        check_record_crc(raw, index, &path_str)?;
        Ok(decode_record_planes(
            raw, &self.meta, index, &path_str, features, labels,
        )?)
    }

    /// Reads records `range`, appending their feature and label planes
    /// (flat row-major f32s, record-major) to the output vectors — the
    /// zero-copy-into-`Tensor` path the streaming client set feeds on.
    ///
    /// # Errors
    ///
    /// [`EdaError::InvalidConfig`] for an empty or out-of-bounds range,
    /// [`ShardError::CrcMismatch`] / [`ShardError::Corrupt`] for damaged
    /// records, [`ShardError::Io`] on filesystem failures.
    pub fn read_batch_into(
        &self,
        range: std::ops::Range<usize>,
        features: &mut Vec<f32>,
        labels: &mut Vec<f32>,
    ) -> Result<(), EdaError> {
        self.check_range(&range)?;
        let raw = self.read_raw(range.clone())?;
        for (i, record) in raw.chunks_exact(self.record_len).enumerate() {
            self.decode_record(range.start + i, record, features, labels)?;
        }
        Ok(())
    }

    /// Reads records `range` as full [`Sample`]s (design names resolved
    /// through the header's table).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShardReader::read_batch_into`].
    pub fn read_range(&self, range: std::ops::Range<usize>) -> Result<Vec<Sample>, EdaError> {
        self.check_range(&range)?;
        let raw = self.read_raw(range.clone())?;
        let (c, h, w) = self.geometry();
        let mut out = Vec::with_capacity(range.end - range.start);
        for (i, record) in raw.chunks_exact(self.record_len).enumerate() {
            let mut features = Vec::with_capacity(c * h * w);
            let mut labels = Vec::with_capacity(h * w);
            let design_idx =
                self.decode_record(range.start + i, record, &mut features, &mut labels)?;
            out.push(Sample {
                features: Tensor::from_vec(features, &[c, h, w])?,
                label: Tensor::from_vec(labels, &[1, h, w])?,
                design: self.meta.designs[design_idx].clone(),
            });
        }
        Ok(out)
    }

    /// Reads one sample record.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShardReader::read_range`].
    pub fn read_sample(&self, index: usize) -> Result<Sample, EdaError> {
        let mut samples = self.read_range(index..index + 1)?;
        Ok(samples.pop().expect("one-record range"))
    }
}

/// Reads and validates a compressed shard's chunk directory, returning
/// per-frame `(offset, compressed payload length)` pairs. Every size is
/// bounded by the real file length before it is allocated or summed.
fn read_frame_directory(
    file: &mut File,
    header: &ValidatedHeader,
    info: CompressionInfo,
    file_len: u64,
    path_str: &str,
) -> Result<Vec<(u64, usize)>, EdaError> {
    let corrupt = |reason: String| ShardError::Corrupt {
        path: path_str.to_owned(),
        reason,
    };
    let n_frames = header.n_samples.div_ceil(info.chunk_records as u64);
    let dir_len = n_frames
        .checked_mul(8)
        .and_then(|b| b.checked_add(4))
        .ok_or_else(|| corrupt("chunk directory size overflows".into()))?;
    let dir_end = header
        .data_offset
        .checked_add(dir_len)
        .ok_or_else(|| corrupt("chunk directory offset overflows".into()))?;
    if dir_end > file_len {
        return Err(ShardError::Truncated {
            path: path_str.to_owned(),
            context: "chunk directory".into(),
        }
        .into());
    }
    // Allocation is safe: `dir_len` fits inside the real file.
    let mut dir = vec![0u8; dir_len as usize];
    file.seek(SeekFrom::Start(header.data_offset))
        .map_err(|e| corrupt(format!("chunk directory seek: {e}")))?;
    file.read_exact(&mut dir)
        .map_err(|e| corrupt(format!("chunk directory read: {e}")))?;
    let (lens, crc_bytes) = dir.split_at(dir.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(lens) != stored {
        return Err(ShardError::CrcMismatch {
            path: path_str.to_owned(),
            what: "chunk directory".into(),
        }
        .into());
    }
    let mut frames = Vec::with_capacity(n_frames as usize);
    let mut offset = dir_end;
    for (i, entry) in lens.chunks_exact(8).enumerate() {
        let comp_len = u64::from_le_bytes(entry.try_into().expect("8 bytes"));
        let end = comp_len
            .checked_add(4)
            .and_then(|f| offset.checked_add(f))
            .ok_or_else(|| corrupt(format!("frame {i} length overflows")))?;
        if end > file_len {
            return Err(ShardError::Truncated {
                path: path_str.to_owned(),
                context: format!("compressed frame {i}"),
            }
            .into());
        }
        frames.push((offset, comp_len as usize));
        offset = end;
    }
    if offset != file_len {
        return Err(corrupt(format!(
            "{} trailing bytes after the last frame",
            file_len - offset
        ))
        .into());
    }
    Ok(frames)
}

// ---------------------------------------------------------------------
// The delta+bitpack codec (shard format version 2).
// ---------------------------------------------------------------------

/// XOR-delta + bitpack codec over little-endian u32 words.
///
/// Record bytes are a stream of u32 words (design index, f32 bit
/// patterns, CRCs — `record_len` is always a multiple of four). Each
/// word is XORed with its predecessor, then deltas are packed in groups
/// of 32 at the group's maximum significant width. Neighbouring feature
/// cells share sign/exponent/high-mantissa bits, so deltas are narrow;
/// all-zero runs (macro planes, cold label tiles) pack to a single
/// header byte per group. The transform is exact: decoding reproduces
/// the input bit for bit, which is what lets compressed shards keep the
/// byte-identity contract.
mod pack {
    use super::ShardError;

    const GROUP: usize = 32;

    fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Compresses raw record bytes (length must be a multiple of 4).
    pub(super) fn compress(raw: &[u8]) -> Vec<u8> {
        debug_assert_eq!(raw.len() % 4, 0, "records are whole u32 words");
        let n_words = raw.len() / 4;
        let mut out = Vec::with_capacity(8 + raw.len() / 2);
        put_u32(&mut out, n_words as u32);
        let mut prev = 0u32;
        let mut deltas = [0u32; GROUP];
        let mut words = raw
            .chunks_exact(4)
            .map(|w| u32::from_le_bytes(w.try_into().expect("4 bytes")));
        let mut remaining = n_words;
        while remaining > 0 {
            let g = remaining.min(GROUP);
            let mut width = 0u32;
            for delta in deltas.iter_mut().take(g) {
                let w = words.next().expect("word count verified");
                *delta = w ^ prev;
                prev = w;
                width = width.max(32 - delta.leading_zeros());
            }
            out.push(width as u8);
            let mut acc = 0u64;
            let mut nbits = 0u32;
            for &d in deltas.iter().take(g) {
                acc |= u64::from(d) << nbits;
                nbits += width;
                while nbits >= 8 {
                    out.push(acc as u8);
                    acc >>= 8;
                    nbits -= 8;
                }
            }
            if nbits > 0 {
                out.push(acc as u8);
            }
            remaining -= g;
        }
        out
    }

    /// Decompresses a frame payload back to exactly `raw_len` record
    /// bytes. Every length field is validated; corrupt payloads yield
    /// typed errors, never a panic or an oversized allocation.
    pub(super) fn decompress(
        payload: &[u8],
        raw_len: usize,
        path_str: &str,
    ) -> Result<Vec<u8>, ShardError> {
        let corrupt = |reason: String| ShardError::Corrupt {
            path: path_str.to_owned(),
            reason,
        };
        if payload.len() < 4 {
            return Err(corrupt(
                "compressed frame shorter than its word count".into(),
            ));
        }
        let n_words = u32::from_le_bytes(payload[..4].try_into().expect("4 bytes")) as usize;
        if n_words * 4 != raw_len {
            return Err(corrupt(format!(
                "compressed frame advertises {n_words} words, expected {}",
                raw_len / 4
            )));
        }
        let mut out = Vec::with_capacity(raw_len);
        let mut pos = 4usize;
        let mut prev = 0u32;
        let mut remaining = n_words;
        while remaining > 0 {
            let g = remaining.min(GROUP);
            let width =
                u32::from(*payload.get(pos).ok_or_else(|| {
                    corrupt("compressed frame ends inside a group header".into())
                })?);
            pos += 1;
            if width > 32 {
                return Err(corrupt(format!("group width {width} exceeds 32 bits")));
            }
            let packed_len = (g * width as usize).div_ceil(8);
            let packed = payload
                .get(pos..pos + packed_len)
                .ok_or_else(|| corrupt("compressed frame ends inside a group".into()))?;
            pos += packed_len;
            let mask = if width == 0 {
                0
            } else {
                u64::MAX >> (64 - width)
            };
            let mut acc = 0u64;
            let mut nbits = 0u32;
            let mut bytes = packed.iter();
            for _ in 0..g {
                while nbits < width {
                    acc |= u64::from(*bytes.next().expect("packed_len covers the group")) << nbits;
                    nbits += 8;
                }
                let delta = (acc & mask) as u32;
                acc >>= width;
                nbits -= width;
                let word = delta ^ prev;
                prev = word;
                out.extend_from_slice(&word.to_le_bytes());
            }
            remaining -= g;
        }
        if pos != payload.len() {
            return Err(corrupt(format!(
                "{} trailing bytes in a compressed frame",
                payload.len() - pos
            )));
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Shard compression and directory compaction.
// ---------------------------------------------------------------------

/// Byte accounting from compressing one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionStats {
    /// Records in the shard.
    pub samples: u64,
    /// Bytes of the raw (version-1) file.
    pub raw_bytes: u64,
    /// Bytes of the compressed (version-2) file.
    pub compressed_bytes: u64,
}

/// Rewrites a raw shard as a version-2 compressed shard at `dst`,
/// streaming `chunk_records` records at a time (peak memory is one
/// frame, not the shard). The decompressed bytes are bit-identical to
/// the source records, so reads through the compressed shard preserve
/// the corpus byte-identity contract.
///
/// # Errors
///
/// [`EdaError::InvalidConfig`] for a zero/oversized frame size or an
/// already-compressed source; any [`ShardReader::open`] error for the
/// source; [`ShardError::Io`] on write failures.
pub fn compress_shard(
    src: impl AsRef<Path>,
    dst: impl AsRef<Path>,
    chunk_records: usize,
) -> Result<CompressionStats, EdaError> {
    let dst = dst.as_ref();
    if chunk_records == 0 || chunk_records > MAX_COMPRESS_CHUNK {
        return Err(EdaError::InvalidConfig {
            reason: format!(
                "compression frame size {chunk_records} outside 1..={MAX_COMPRESS_CHUNK}"
            ),
        });
    }
    let reader = ShardReader::open(src.as_ref())?;
    if reader.is_compressed() {
        return Err(EdaError::InvalidConfig {
            reason: format!("{} is already compressed", reader.path().display()),
        });
    }
    let raw_bytes = reader.data_offset + (reader.n_samples * reader.record_len) as u64;
    let info = CompressionInfo { chunk_records };
    let n_samples = reader.n_samples as u64;
    let n_frames = reader.n_samples.div_ceil(chunk_records);
    let header = prelude_and_body(
        SHARD_VERSION_COMPRESSED,
        reader.meta.encode_body_compressed(n_samples, info),
    );
    let file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(dst)
        .map_err(|e| io_err(dst, &e))?;
    let mut out = BufWriter::new(file);
    out.write_all(&header).map_err(|e| io_err(dst, &e))?;
    // Directory placeholder, patched once the frame lengths are known.
    let dir_offset = header.len() as u64;
    out.write_all(&vec![0u8; n_frames * 8 + 4])
        .map_err(|e| io_err(dst, &e))?;
    let mut frame_lens = Vec::with_capacity(n_frames);
    for frame_i in 0..n_frames {
        let start = frame_i * chunk_records;
        let end = (start + chunk_records).min(reader.n_samples);
        let raw = reader.read_raw(start..end)?;
        let payload = pack::compress(&raw);
        out.write_all(&payload).map_err(|e| io_err(dst, &e))?;
        out.write_all(&crc32(&payload).to_le_bytes())
            .map_err(|e| io_err(dst, &e))?;
        frame_lens.push(payload.len() as u64);
    }
    out.flush().map_err(|e| io_err(dst, &e))?;
    let file = out.get_mut();
    let compressed_bytes = file.metadata().map_err(|e| io_err(dst, &e))?.len();
    let mut dir = Vec::with_capacity(n_frames * 8 + 4);
    for len in &frame_lens {
        put_u64(&mut dir, *len);
    }
    let dir_crc = crc32(&dir);
    put_u32(&mut dir, dir_crc);
    file.seek(SeekFrom::Start(dir_offset))
        .map_err(|e| io_err(dst, &e))?;
    file.write_all(&dir).map_err(|e| io_err(dst, &e))?;
    file.sync_all().map_err(|e| io_err(dst, &e))?;
    Ok(CompressionStats {
        samples: n_samples,
        raw_bytes,
        compressed_bytes,
    })
}

/// Result of compacting a shard directory with [`compact_dir`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionSummary {
    /// Shards rewritten into compressed form.
    pub compressed: usize,
    /// Shards that were already compressed and left untouched.
    pub skipped: usize,
    /// Raw bytes of the shards before compaction (already-compressed
    /// shards contribute their current size).
    pub raw_bytes: u64,
    /// Bytes on disk after compaction.
    pub compressed_bytes: u64,
}

/// Compacts a corpus directory accumulated across generations: every
/// raw `.rtes` shard is rewritten in place (via a `.tmp` + rename) as a
/// version-2 compressed shard; already-compressed shards are skipped.
/// [`CorpusReader::open`] reads the result exactly as before — readers
/// are version-agnostic.
///
/// # Errors
///
/// See [`compress_shard`]; directory scan failures surface as
/// [`ShardError::Io`].
pub fn compact_dir(
    dir: impl AsRef<Path>,
    chunk_records: usize,
) -> Result<CompactionSummary, EdaError> {
    let dir = dir.as_ref();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, &e))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(SHARD_EXTENSION))
        .collect();
    paths.sort();
    let mut summary = CompactionSummary::default();
    for path in paths {
        let reader = ShardReader::open(&path)?;
        let file_len = std::fs::metadata(&path)
            .map_err(|e| io_err(&path, &e))?
            .len();
        if reader.is_compressed() {
            summary.skipped += 1;
            summary.raw_bytes += file_len;
            summary.compressed_bytes += file_len;
            continue;
        }
        drop(reader);
        let tmp = path.with_extension("tmp");
        let stats = compress_shard(&path, &tmp, chunk_records)?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&tmp, &e))?;
        summary.compressed += 1;
        summary.raw_bytes += stats.raw_bytes;
        summary.compressed_bytes += stats.compressed_bytes;
    }
    Ok(summary)
}

// ---------------------------------------------------------------------
// Corpus-level writer: streaming generation straight to shards.
// ---------------------------------------------------------------------

/// One shard file a [`CorpusWriter`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// Where the shard was written.
    pub path: PathBuf,
    /// 1-based client index.
    pub client_index: usize,
    /// The split the shard holds.
    pub split: Split,
    /// Samples written.
    pub samples: u64,
}

/// Generates a corpus *directly into shard files* with bounded memory.
///
/// Unlike [`crate::corpus::generate_corpus`], which materializes every
/// client's tensors before returning, this writer walks the same fixed
/// `(client, split, design, placement)` job list in chunks of
/// [`CorpusWriter::with_chunk`] placements: each chunk is generated in
/// parallel on the [`rte_tensor::parallel`] pool, appended to the
/// per-`(client, split)` [`ShardWriter`]s in job order, then dropped.
/// Peak sample residency is therefore one chunk — not the corpus — and
/// because every placement's RNG stream is a pure function of its
/// coordinates, **the shard bytes are identical for every thread count
/// and every chunk size**.
#[derive(Debug, Clone)]
pub struct CorpusWriter {
    dir: PathBuf,
    chunk: usize,
    parallelism: Parallelism,
}

impl CorpusWriter {
    /// A writer targeting `dir` with the default chunk size and the
    /// process-global thread budget.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CorpusWriter {
            dir: dir.into(),
            chunk: DEFAULT_CHUNK,
            parallelism: rte_tensor::parallel::global(),
        }
    }

    /// Sets the placements generated (and resident) per chunk.
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// Sets the worker-thread budget (a pure wall-clock knob — the
    /// output bytes do not change).
    #[must_use]
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }

    /// Writes the full nine-client Table 2 corpus.
    ///
    /// # Errors
    ///
    /// See [`CorpusWriter::write_specs`].
    pub fn write(&self, config: &CorpusConfig) -> Result<Vec<ShardSummary>, EdaError> {
        self.write_specs(&PAPER_CLIENTS, config)
    }

    /// Writes shards for an explicit client list (one train + one test
    /// shard per spec), creating the directory if needed.
    ///
    /// Shards are written under temporary `.tmp` names and renamed to
    /// their final `.rtes` names only after *every* writer has been
    /// sealed, so an interrupted or failed generation leaves no files
    /// that [`CorpusReader::open`] would try to treat as a corpus.
    /// Stale `.tmp` leftovers from a previous crash are removed first.
    ///
    /// # Errors
    ///
    /// [`EdaError::InvalidConfig`] for a zero chunk size, generation
    /// errors from the placement/labelling pipeline, or
    /// [`ShardError::Io`] on filesystem failures.
    pub fn write_specs(
        &self,
        specs: &[ClientSpec],
        config: &CorpusConfig,
    ) -> Result<Vec<ShardSummary>, EdaError> {
        if self.chunk == 0 {
            return Err(EdaError::InvalidConfig {
                reason: "streaming chunk size must be positive".into(),
            });
        }
        std::fs::create_dir_all(&self.dir).map_err(|e| io_err(&self.dir, &e))?;
        // Sweep debris from a previously interrupted generation.
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.filter_map(Result::ok) {
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) == Some("tmp") {
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        let (design_jobs, placement_jobs) = build_jobs(specs, config);
        // Phase 1: all netlists (74 at paper scale — small), parallel
        // over designs, exactly as the in-memory generator does it.
        let netlists = map_with(
            self.parallelism,
            &design_jobs,
            || (),
            |(), _, job| synthesize_design(specs, config, job),
        )
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        // One writer per (client, split), design tables drawn from the
        // phase-1 names in design order.
        let mut writers: Vec<Vec<ShardWriter>> = Vec::with_capacity(specs.len());
        for (spec_i, spec) in specs.iter().enumerate() {
            let mut per_split = Vec::with_capacity(2);
            for split in Split::ALL {
                let designs: Vec<String> = design_jobs
                    .iter()
                    .zip(netlists.iter())
                    .filter(|(job, _)| job.spec_i == spec_i && job.split == split)
                    .map(|(_, nl)| nl.name.clone())
                    .collect();
                let meta = ShardMeta {
                    seed: config.seed,
                    client_index: spec.index,
                    split,
                    family: spec.family,
                    grid: config.grid,
                    channels: crate::features::FEATURE_CHANNELS,
                    placement_scale: config.placement_scale,
                    designs,
                };
                let path = self.dir.join(format!("{}.tmp", meta.file_name()));
                per_split.push(ShardWriter::create(path, meta)?);
            }
            writers.push(per_split);
        }
        // Phase 2, chunked: generate `chunk` placements in parallel,
        // append them in job order, drop them. The job list is already
        // in (client, split, design, placement) order, so appends land
        // in exactly the order the in-memory path assembles datasets.
        for jobs in placement_jobs.chunks(self.chunk) {
            let samples = map_with(
                self.parallelism,
                jobs,
                || (),
                |(), _, job| placement_sample(specs, config, &netlists, job),
            )
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
            for (job, sample) in jobs.iter().zip(&samples) {
                writers[job.spec_i][split_code(job.split) as usize].append(sample)?;
            }
        }
        // Seal every shard first, then rename the whole set: a failure
        // anywhere before this loop completes leaves only `.tmp` files
        // behind, never a half-corpus of valid-looking shards.
        let mut sealed = Vec::with_capacity(specs.len() * 2);
        for per_split in writers {
            for writer in per_split {
                let tmp_path = writer.path.clone();
                let final_path = self.dir.join(writer.meta.file_name());
                let client_index = writer.meta.client_index;
                let split = writer.meta.split;
                let samples = writer.finish()?;
                sealed.push((tmp_path, final_path, client_index, split, samples));
            }
        }
        let mut summaries = Vec::with_capacity(sealed.len());
        for (tmp_path, final_path, client_index, split, samples) in sealed {
            std::fs::rename(&tmp_path, &final_path).map_err(|e| io_err(&tmp_path, &e))?;
            summaries.push(ShardSummary {
                path: final_path,
                client_index,
                split,
                samples,
            });
        }
        Ok(summaries)
    }
}

// ---------------------------------------------------------------------
// Corpus-level reader.
// ---------------------------------------------------------------------

/// One client's pair of shard readers.
#[derive(Debug)]
pub struct ClientShards {
    /// 1-based client index (Table 2 numbering).
    pub client_index: usize,
    /// Benchmark family of the client's designs.
    pub family: Family,
    /// Training-split shard.
    pub train: ShardReader,
    /// Testing-split shard.
    pub test: ShardReader,
}

/// Opens a directory of shard files back into per-client reader pairs.
///
/// Validates that the directory is one coherent corpus: every client has
/// both splits, and every shard agrees on seed, grid and channel count.
#[derive(Debug)]
pub struct CorpusReader {
    clients: Vec<ClientShards>,
    grid: GridDims,
    seed: u64,
    placement_scale: f64,
}

impl CorpusReader {
    /// Opens every `client*.{train,test}.rtes` file under `dir`.
    ///
    /// # Errors
    ///
    /// [`ShardError::Layout`] when the directory holds no shards, a
    /// client is missing a split, or shards disagree on provenance; any
    /// [`ShardReader::open`] error for individual files.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, EdaError> {
        let dir = dir.as_ref();
        let dir_str = dir.display().to_string();
        let layout_err = |reason: String| ShardError::Layout {
            dir: dir_str.clone(),
            reason,
        };
        let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, &e))?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(SHARD_EXTENSION))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(layout_err("no shard files found".into()).into());
        }
        let mut pairs: std::collections::BTreeMap<
            usize,
            (Option<ShardReader>, Option<ShardReader>),
        > = std::collections::BTreeMap::new();
        for path in paths {
            let reader = ShardReader::open(&path)?;
            let slot = pairs.entry(reader.meta().client_index).or_default();
            let split = reader.meta().split;
            let cell = match split {
                Split::Train => &mut slot.0,
                Split::Test => &mut slot.1,
            };
            if cell.is_some() {
                return Err(layout_err(format!(
                    "duplicate {split} shard for client {}",
                    reader.meta().client_index
                ))
                .into());
            }
            *cell = Some(reader);
        }
        let mut clients = Vec::with_capacity(pairs.len());
        for (client_index, (train, test)) in pairs {
            let train = train
                .ok_or_else(|| layout_err(format!("client {client_index} lacks a train shard")))?;
            let test = test
                .ok_or_else(|| layout_err(format!("client {client_index} lacks a test shard")))?;
            if train.meta().family != test.meta().family {
                return Err(layout_err(format!(
                    "client {client_index} train/test shards disagree on family"
                ))
                .into());
            }
            clients.push(ClientShards {
                client_index,
                family: train.meta().family,
                train,
                test,
            });
        }
        let first = &clients[0].train.meta().clone();
        for c in &clients {
            for shard in [&c.train, &c.test] {
                let m = shard.meta();
                if m.seed != first.seed
                    || m.grid != first.grid
                    || m.channels != first.channels
                    || m.placement_scale.to_bits() != first.placement_scale.to_bits()
                {
                    return Err(layout_err(format!(
                        "{} disagrees with the corpus provenance \
                         (seed/grid/channels/placement scale)",
                        shard.path().display()
                    ))
                    .into());
                }
            }
        }
        Ok(CorpusReader {
            grid: first.grid,
            seed: first.seed,
            placement_scale: first.placement_scale,
            clients,
        })
    }

    /// Per-client shard pairs, ordered by client index.
    pub fn clients(&self) -> &[ClientShards] {
        &self.clients
    }

    /// Consumes the reader into its per-client shard pairs (so callers
    /// can move the [`ShardReader`]s into long-lived streaming sources).
    pub fn into_clients(self) -> Vec<ClientShards> {
        self.clients
    }

    /// The gcell grid every shard was generated on.
    pub fn grid(&self) -> GridDims {
        self.grid
    }

    /// The master corpus seed every shard derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The placement-count scale every shard was generated at.
    pub fn placement_scale(&self) -> f64 {
        self.placement_scale
    }

    /// Total samples across all clients and splits.
    pub fn total_samples(&self) -> usize {
        self.clients
            .iter()
            .map(|c| c.train.len() + c.test.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn family_and_split_codes_round_trip() {
        for family in Family::ALL {
            assert_eq!(family_from_code(family_code(family)), Some(family));
        }
        for split in Split::ALL {
            assert_eq!(split_from_code(split_code(split)), Some(split));
        }
        assert_eq!(family_from_code(9), None);
        assert_eq!(split_from_code(9), None);
    }

    #[test]
    fn meta_record_len_counts_every_field() {
        let meta = ShardMeta {
            seed: 1,
            client_index: 1,
            split: Split::Train,
            family: Family::Itc99,
            grid: GridDims::new(4, 4),
            channels: 2,
            placement_scale: 0.0,
            designs: vec!["d".into()],
        };
        // 4 (design idx) + (2*16 + 16)*4 (planes) + 4 (crc).
        assert_eq!(meta.record_len(), 4 + 48 * 4 + 4);
        assert_eq!(meta.file_name(), "client01.train.rtes");
    }

    #[test]
    fn header_encode_decode_round_trips() {
        let meta = ShardMeta {
            seed: 0xDEAD_BEEF,
            client_index: 7,
            split: Split::Test,
            family: Family::Ispd15,
            grid: GridDims::new(8, 16),
            channels: 6,
            placement_scale: 0.25,
            designs: vec!["alpha".into(), "beta".into()],
        };
        let body = meta.encode_body(42);
        let (back, n, compression) = ShardMeta::decode_body(&body, "mem", SHARD_VERSION).unwrap();
        assert_eq!(back, meta);
        assert_eq!(n, 42);
        assert_eq!(compression, None);
    }

    #[test]
    fn compressed_header_round_trips() {
        let meta = ShardMeta {
            seed: 5,
            client_index: 2,
            split: Split::Train,
            family: Family::Itc99,
            grid: GridDims::new(4, 4),
            channels: 2,
            placement_scale: 1.0,
            designs: vec!["d0".into()],
        };
        let info = CompressionInfo { chunk_records: 128 };
        let body = meta.encode_body_compressed(9, info);
        let (back, n, compression) =
            ShardMeta::decode_body(&body, "mem", SHARD_VERSION_COMPRESSED).unwrap();
        assert_eq!(back, meta);
        assert_eq!(n, 9);
        assert_eq!(compression, Some(info));
        // The same bytes under version 1 have trailing fields → Corrupt.
        let err = ShardMeta::decode_body(&body, "mem", SHARD_VERSION).unwrap_err();
        assert!(matches!(err, ShardError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn decode_body_rejects_pathological_geometry() {
        let mut meta = ShardMeta {
            seed: 1,
            client_index: 1,
            split: Split::Train,
            family: Family::Itc99,
            grid: GridDims::new(4, 4),
            channels: 2,
            placement_scale: 0.0,
            designs: vec!["d".into()],
        };
        meta.grid = GridDims::new(MAX_GRID_DIM + 1, 4);
        let body = meta.encode_body(1);
        let err = ShardMeta::decode_body(&body, "mem", SHARD_VERSION).unwrap_err();
        assert!(matches!(err, ShardError::Corrupt { .. }), "{err}");

        meta.grid = GridDims::new(4, 4);
        meta.channels = MAX_CHANNELS + 1;
        let body = meta.encode_body(1);
        let err = ShardMeta::decode_body(&body, "mem", SHARD_VERSION).unwrap_err();
        assert!(matches!(err, ShardError::Corrupt { .. }), "{err}");

        meta.channels = 2;
        meta.designs.clear();
        let body = meta.encode_body(1);
        let err = ShardMeta::decode_body(&body, "mem", SHARD_VERSION).unwrap_err();
        assert!(matches!(err, ShardError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn pack_codec_round_trips_exactly() {
        // Word patterns exercising all widths: zeros, small deltas, full
        // 32-bit noise, and a partial final group.
        let mut raw = Vec::new();
        for i in 0..133u32 {
            let word = match i % 4 {
                0 => 0u32,
                1 => i,
                2 => 0xDEAD_BEEF ^ i.rotate_left(13),
                _ => 1.0f32.to_bits() + i,
            };
            raw.extend_from_slice(&word.to_le_bytes());
        }
        let payload = pack::compress(&raw);
        let back = pack::decompress(&payload, raw.len(), "mem").unwrap();
        assert_eq!(back, raw);
        // Runs of equal words compress far below raw size.
        let flat: Vec<u8> = std::iter::repeat(0.5f32.to_bits().to_le_bytes())
            .take(512)
            .flatten()
            .collect();
        let packed = pack::compress(&flat);
        assert!(
            packed.len() * 10 < flat.len(),
            "{} vs {}",
            packed.len(),
            flat.len()
        );
        assert_eq!(pack::decompress(&packed, flat.len(), "mem").unwrap(), flat);
    }

    #[test]
    fn pack_codec_rejects_hostile_payloads() {
        let raw: Vec<u8> = (0..64u8).collect();
        let good = pack::compress(&raw);
        // Wrong advertised length.
        assert!(pack::decompress(&good, raw.len() + 4, "mem").is_err());
        // Truncated payload.
        assert!(pack::decompress(&good[..good.len() - 1], raw.len(), "mem").is_err());
        // Oversized group width.
        let mut bad = good.clone();
        bad[4] = 33;
        assert!(pack::decompress(&bad, raw.len(), "mem").is_err());
        // Trailing garbage.
        let mut bad = good;
        bad.push(0);
        assert!(pack::decompress(&bad, raw.len(), "mem").is_err());
    }
}
