//! Samples and datasets.
//!
//! A [`Sample`] is one placement solution: its feature tensor and its DRC
//! hotspot label map. A [`Dataset`] is a client's train or test split and
//! knows how to assemble NCHW minibatches for `rte-nn`.

use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

use crate::congestion::route_demand;
use crate::drc::drc_hotspots;
use crate::features::{extract_features, FEATURE_CHANNELS};
use crate::netlist::Netlist;
use crate::placement::{place, PlacementConfig};
use crate::EdaError;

/// One placement solution with features and ground-truth labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Input features, `(FEATURE_CHANNELS, H, W)`.
    pub features: Tensor,
    /// Binary hotspot labels, `(1, H, W)`.
    pub label: Tensor,
    /// Name of the design this placement belongs to.
    pub design: String,
}

/// Generates one [`Sample`] by placing `netlist` with `config` and running
/// the demand model and DRC oracle.
///
/// # Errors
///
/// Propagates placement or labelling configuration errors.
pub fn generate_sample(netlist: &Netlist, config: &PlacementConfig) -> Result<Sample, EdaError> {
    let placement = place(netlist, config)?;
    let demand = route_demand(netlist, &placement);
    let features = extract_features(netlist, &placement)?;
    let mut label_rng = Xoshiro256::seed_from(config.seed ^ 0x7AB3_15D0_0C0F_FEE5);
    let label = drc_hotspots(netlist, &placement, &demand, &mut label_rng)?;
    Ok(Sample {
        features,
        label,
        design: netlist.name.clone(),
    })
}

/// An ordered collection of samples (one client's train or test split).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    samples: Vec<Sample>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Creates a dataset from samples.
    pub fn from_samples(samples: Vec<Sample>) -> Self {
        Dataset { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples, in order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Fraction of hotspot tiles over the whole dataset.
    pub fn hotspot_rate(&self) -> f64 {
        let mut hot = 0usize;
        let mut total = 0usize;
        for s in &self.samples {
            hot += s.label.data().iter().filter(|&&v| v > 0.5).count();
            total += s.label.numel();
        }
        if total == 0 {
            0.0
        } else {
            hot as f64 / total as f64
        }
    }

    /// Assembles the samples at `indices` into a `(N, C, H, W)` feature
    /// batch and `(N, 1, H, W)` label batch.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::InvalidConfig`] if `indices` is empty, out of
    /// bounds, or the samples disagree on geometry.
    pub fn batch(&self, indices: &[usize]) -> Result<(Tensor, Tensor), EdaError> {
        if indices.is_empty() {
            return Err(EdaError::InvalidConfig {
                reason: "empty batch".into(),
            });
        }
        let first = indices[0];
        let proto = self
            .samples
            .get(first)
            .ok_or_else(|| EdaError::InvalidConfig {
                reason: format!("index {first} out of bounds ({} samples)", self.len()),
            })?;
        let (h, w) = (proto.features.dim(1), proto.features.dim(2));
        let n = indices.len();
        let mut x = Tensor::zeros(&[n, FEATURE_CHANNELS, h, w]);
        let mut y = Tensor::zeros(&[n, 1, h, w]);
        let xs = FEATURE_CHANNELS * h * w;
        let ys = h * w;
        for (bi, &si) in indices.iter().enumerate() {
            let s = self
                .samples
                .get(si)
                .ok_or_else(|| EdaError::InvalidConfig {
                    reason: format!("index {si} out of bounds ({} samples)", self.len()),
                })?;
            if s.features.dim(1) != h || s.features.dim(2) != w {
                return Err(EdaError::InvalidConfig {
                    reason: "samples disagree on grid size".into(),
                });
            }
            x.data_mut()[bi * xs..(bi + 1) * xs].copy_from_slice(s.features.data());
            y.data_mut()[bi * ys..(bi + 1) * ys].copy_from_slice(s.label.data());
        }
        Ok((x, y))
    }

    /// Batch over every sample, in order.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::InvalidConfig`] for an empty dataset.
    pub fn full_batch(&self) -> Result<(Tensor, Tensor), EdaError> {
        let indices: Vec<usize> = (0..self.len()).collect();
        self.batch(&indices)
    }
}

impl FromIterator<Sample> for Dataset {
    fn from_iter<I: IntoIterator<Item = Sample>>(iter: I) -> Self {
        Dataset {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<Sample> for Dataset {
    fn extend<I: IntoIterator<Item = Sample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::generate_netlist;
    use crate::Family;

    fn tiny_dataset(n: usize) -> Dataset {
        let nl = generate_netlist(Family::Itc99, 1).unwrap();
        (0..n)
            .map(|i| generate_sample(&nl, &PlacementConfig::new(16, 16, i as u64)).unwrap())
            .collect()
    }

    #[test]
    fn sample_shapes() {
        let ds = tiny_dataset(1);
        let s = &ds.samples()[0];
        assert_eq!(s.features.shape().dims(), &[FEATURE_CHANNELS, 16, 16]);
        assert_eq!(s.label.shape().dims(), &[1, 16, 16]);
        assert!(s.design.starts_with("b_"));
    }

    #[test]
    fn placements_of_one_design_differ_but_correlate() {
        let ds = tiny_dataset(2);
        let a = &ds.samples()[0];
        let b = &ds.samples()[1];
        assert_ne!(a.features, b.features, "different seeds, different maps");
        assert_eq!(a.design, b.design);
    }

    #[test]
    fn batch_layout() {
        let ds = tiny_dataset(3);
        let (x, y) = ds.batch(&[2, 0]).unwrap();
        assert_eq!(x.shape().dims(), &[2, FEATURE_CHANNELS, 16, 16]);
        assert_eq!(y.shape().dims(), &[2, 1, 16, 16]);
        // First batch row is sample 2.
        assert_eq!(
            &x.data()[..FEATURE_CHANNELS * 256],
            ds.samples()[2].features.data()
        );
        assert_eq!(&y.data()[..256], ds.samples()[2].label.data());
    }

    #[test]
    fn batch_errors() {
        let ds = tiny_dataset(2);
        assert!(ds.batch(&[]).is_err());
        assert!(ds.batch(&[5]).is_err());
        assert!(Dataset::new().full_batch().is_err());
    }

    #[test]
    fn hotspot_rate_bounds() {
        let ds = tiny_dataset(4);
        let r = ds.hotspot_rate();
        assert!((0.0..=1.0).contains(&r));
        assert!(r > 0.0, "expected some hotspots in ITC'99 designs");
        assert_eq!(Dataset::new().hotspot_rate(), 0.0);
    }

    #[test]
    fn collect_and_extend() {
        let mut ds = tiny_dataset(1);
        let more = tiny_dataset(2);
        ds.extend(more.samples().to_vec());
        assert_eq!(ds.len(), 3);
    }
}
