//! Design and placement statistics.
//!
//! Standard physical-design quality metrics over the synthetic substrate:
//! half-perimeter wirelength (HPWL), routing demand summaries and
//! overflow rates. The placer and router tests use these to assert
//! quality relationships (e.g. clustered placements beat random ones on
//! HPWL), and the `table2_data_setup` binary reports them per client.

use crate::congestion::{route_demand, DemandMap};
use crate::netlist::Netlist;
use crate::placement::Placement;

/// Wirelength and congestion summary of one placed design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignStats {
    /// Total half-perimeter wirelength over all nets (gcell units).
    pub total_hpwl: f64,
    /// Mean HPWL per net.
    pub avg_hpwl: f64,
    /// Maximum net HPWL (the longest net).
    pub max_hpwl: f64,
    /// Mean combined routing demand per gcell.
    pub mean_demand: f64,
    /// Peak combined routing demand over all gcells.
    pub peak_demand: f64,
    /// Fraction of gcells whose demand exceeds twice the mean (a
    /// capacity-free congestion indicator).
    pub congested_fraction: f64,
}

impl DesignStats {
    /// Computes statistics for a placed design.
    pub fn compute(netlist: &Netlist, placement: &Placement) -> Self {
        let demand = route_demand(netlist, placement);
        Self::from_demand(netlist, placement, &demand)
    }

    /// Computes statistics reusing an existing demand map (avoids
    /// re-routing when the caller already has one).
    pub fn from_demand(netlist: &Netlist, placement: &Placement, demand: &DemandMap) -> Self {
        let mut total_hpwl = 0.0f64;
        let mut max_hpwl = 0.0f64;
        for net in &netlist.nets {
            let mut x0 = usize::MAX;
            let mut x1 = 0usize;
            let mut y0 = usize::MAX;
            let mut y1 = 0usize;
            for c in &net.cells {
                let px = placement.x[c.0 as usize] as usize;
                let py = placement.y[c.0 as usize] as usize;
                x0 = x0.min(px);
                x1 = x1.max(px);
                y0 = y0.min(py);
                y1 = y1.max(py);
            }
            let hpwl = (x1 - x0) as f64 + (y1 - y0) as f64;
            total_hpwl += hpwl;
            max_hpwl = max_hpwl.max(hpwl);
        }
        let n_nets = netlist.nets.len().max(1) as f64;
        let combined = demand.combined();
        let n_cells = combined.len().max(1) as f64;
        let mean_demand = combined.iter().sum::<f64>() / n_cells;
        let peak_demand = combined.iter().copied().fold(0.0, f64::max);
        let congested = combined.iter().filter(|&&d| d > 2.0 * mean_demand).count() as f64;
        DesignStats {
            total_hpwl,
            avg_hpwl: total_hpwl / n_nets,
            max_hpwl,
            mean_demand,
            peak_demand,
            congested_fraction: congested / n_cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::generate_netlist;
    use crate::placement::{place, GridDims, Placement, PlacementConfig};
    use crate::Family;
    use rte_tensor::rng::Xoshiro256;

    #[test]
    fn stats_are_finite_and_consistent() {
        let nl = generate_netlist(Family::Itc99, 1).unwrap();
        let pl = place(&nl, &PlacementConfig::new(16, 16, 1)).unwrap();
        let s = DesignStats::compute(&nl, &pl);
        assert!(s.total_hpwl > 0.0);
        assert!(s.avg_hpwl <= s.max_hpwl);
        assert!(s.mean_demand > 0.0);
        assert!(s.peak_demand >= s.mean_demand);
        assert!((0.0..=1.0).contains(&s.congested_fraction));
    }

    #[test]
    fn clustered_placement_beats_random_on_hpwl() {
        // The placer's whole job: intra-cluster nets should be shorter
        // than under a random scatter of the same netlist.
        let nl = generate_netlist(Family::Iscas89, 2).unwrap();
        let placed = place(&nl, &PlacementConfig::new(16, 16, 3)).unwrap();
        let placed_stats = DesignStats::compute(&nl, &placed);

        let mut rng = Xoshiro256::seed_from(9);
        let random = Placement {
            grid: GridDims::new(16, 16),
            x: (0..nl.cells.len())
                .map(|_| rng.range_usize(0, 16) as u16)
                .collect(),
            y: (0..nl.cells.len())
                .map(|_| rng.range_usize(0, 16) as u16)
                .collect(),
            macro_rects: vec![],
        };
        let random_stats = DesignStats::compute(&nl, &random);
        assert!(
            placed_stats.total_hpwl < random_stats.total_hpwl,
            "placed HPWL {} should beat random {}",
            placed_stats.total_hpwl,
            random_stats.total_hpwl
        );
    }

    #[test]
    fn from_demand_matches_compute() {
        let nl = generate_netlist(Family::Iwls05, 4).unwrap();
        let pl = place(&nl, &PlacementConfig::new(16, 16, 5)).unwrap();
        let demand = route_demand(&nl, &pl);
        assert_eq!(
            DesignStats::compute(&nl, &pl),
            DesignStats::from_demand(&nl, &pl, &demand)
        );
    }

    #[test]
    fn bigger_families_have_more_wirelength() {
        let small = generate_netlist(Family::Iscas89, 7).unwrap();
        let large = generate_netlist(Family::Ispd15, 7).unwrap();
        let cfg = PlacementConfig::new(16, 16, 1);
        let s = DesignStats::compute(&small, &place(&small, &cfg).unwrap());
        let l = DesignStats::compute(&large, &place(&large, &cfg).unwrap());
        assert!(l.total_hpwl > s.total_hpwl);
    }
}
