//! Dense `f32` tensor kernels for the decentralized routability estimation
//! reproduction.
//!
//! This crate is the numeric substrate of the workspace: a small, fully
//! deterministic replacement for the parts of a deep-learning tensor backend
//! that the paper's models need. It provides:
//!
//! - [`Tensor`]: an owned, row-major, N-dimensional `f32` array,
//! - [`conv`]: 2-D convolution forward/backward with stride, padding and
//!   dilation (NCHW layout), transposed convolution and max pooling,
//! - [`linalg`]: matrix multiplication primitives (thin dispatchers over
//!   [`simd`], plus the naive reference kernel),
//! - [`simd`]: the runtime-dispatched SIMD backend (AVX2 / scalar arms,
//!   `RTE_SIMD` knob) with bit-identical lane-ordered reductions,
//! - [`parallel`]: a dependency-free scoped thread pool with a
//!   bit-determinism contract (same results at any thread count),
//! - [`rng`]: a seedable xoshiro256** PRNG with SplitMix64 stream derivation
//!   so every experiment in the workspace is bit-reproducible,
//! - [`init`]: weight initializers (Kaiming/Xavier uniform & normal).
//!
//! # Example
//!
//! ```
//! use rte_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::full(&[2, 2], 0.5);
//! let c = a.add(&b)?;
//! assert_eq!(c.data(), &[1.5, 2.5, 3.5, 4.5]);
//! # Ok::<(), rte_tensor::TensorError>(())
//! ```

pub mod conv;
pub mod init;
pub mod knobs;
pub mod linalg;
pub mod parallel;
pub mod rng;
mod shape;
pub mod simd;
mod tensor;

pub use shape::Shape;
pub use tensor::{Tensor, TensorError};
