//! Weight initializers.
//!
//! All initializers draw from an explicit [`Xoshiro256`] stream so model
//! construction is deterministic given a seed — a hard requirement for the
//! federated-learning experiments, where every client must start each round
//! from bit-identical parameters.

use crate::rng::Xoshiro256;
use crate::Tensor;

/// Kaiming (He) uniform initialization for convolution weights shaped
/// `(C_out, C_in, KH, KW)` (or the transposed layout — only `fan_in`
/// matters, which the caller provides).
///
/// Samples from `U(-b, b)` with `b = sqrt(6 / fan_in)`, the PyTorch default
/// for layers followed by ReLU.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn kaiming_uniform(dims: &[usize], fan_in: usize, rng: &mut Xoshiro256) -> Tensor {
    assert!(fan_in > 0, "kaiming_uniform: fan_in must be positive");
    let bound = (6.0 / fan_in as f64).sqrt() as f32;
    Tensor::from_fn(dims, |_| rng.uniform_in(-bound, bound))
}

/// Kaiming (He) normal initialization: `N(0, sqrt(2 / fan_in))`.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn kaiming_normal(dims: &[usize], fan_in: usize, rng: &mut Xoshiro256) -> Tensor {
    assert!(fan_in > 0, "kaiming_normal: fan_in must be positive");
    let std = (2.0 / fan_in as f64).sqrt() as f32;
    Tensor::from_fn(dims, |_| rng.normal() * std)
}

/// Xavier/Glorot uniform initialization: `U(-b, b)` with
/// `b = sqrt(6 / (fan_in + fan_out))`. Used for the output layers that feed
/// a sigmoid.
///
/// # Panics
///
/// Panics if `fan_in + fan_out` is zero.
pub fn xavier_uniform(
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut Xoshiro256,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "xavier_uniform: zero fan sum");
    let bound = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    Tensor::from_fn(dims, |_| rng.uniform_in(-bound, bound))
}

/// Uniform bias initialization matching PyTorch's conv default:
/// `U(-1/sqrt(fan_in), 1/sqrt(fan_in))`.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn conv_bias(dims: &[usize], fan_in: usize, rng: &mut Xoshiro256) -> Tensor {
    assert!(fan_in > 0, "conv_bias: fan_in must be positive");
    let bound = (1.0 / (fan_in as f64).sqrt()) as f32;
    Tensor::from_fn(dims, |_| rng.uniform_in(-bound, bound))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_uniform_within_bound() {
        let mut rng = Xoshiro256::seed_from(1);
        let t = kaiming_uniform(&[16, 4, 3, 3], 4 * 9, &mut rng);
        let bound = (6.0f64 / 36.0).sqrt() as f32;
        assert!(t.data().iter().all(|&x| x.abs() <= bound));
        // Not degenerate: spread over the interval.
        assert!(t.max().unwrap() > bound * 0.5);
        assert!(t.min().unwrap() < -bound * 0.5);
    }

    #[test]
    fn kaiming_normal_std() {
        let mut rng = Xoshiro256::seed_from(2);
        let t = kaiming_normal(&[64, 8, 3, 3], 72, &mut rng);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.numel() as f32;
        let expect = 2.0 / 72.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - expect).abs() < expect * 0.2, "var {var}");
    }

    #[test]
    fn xavier_uniform_within_bound() {
        let mut rng = Xoshiro256::seed_from(3);
        let t = xavier_uniform(&[1, 64, 9, 9], 64 * 81, 81, &mut rng);
        let bound = (6.0f64 / (64.0 * 81.0 + 81.0)).sqrt() as f32;
        assert!(t.data().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Xoshiro256::seed_from(9);
        let mut b = Xoshiro256::seed_from(9);
        let ta = kaiming_uniform(&[4, 4, 3, 3], 36, &mut a);
        let tb = kaiming_uniform(&[4, 4, 3, 3], 36, &mut b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn bias_bound() {
        let mut rng = Xoshiro256::seed_from(4);
        let t = conv_bias(&[32], 100, &mut rng);
        assert!(t.data().iter().all(|&x| x.abs() <= 0.1));
    }
}
