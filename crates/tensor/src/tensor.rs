//! The owned dense tensor type.

use std::error::Error;
use std::fmt;

use crate::simd;
use crate::Shape;

/// Error produced by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two tensors were expected to have identical shapes.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Shape,
        /// Shape of the right-hand operand.
        right: Shape,
    },
    /// A buffer length did not match the number of elements of the shape.
    LengthMismatch {
        /// Elements implied by the requested shape.
        expected: usize,
        /// Elements actually provided.
        got: usize,
    },
    /// A shape was structurally invalid for the requested operation.
    InvalidShape {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left} vs {right}")
            }
            TensorError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "length mismatch: expected {expected} elements, got {got}"
                )
            }
            TensorError::InvalidShape { reason } => write!(f, "invalid shape: {reason}"),
        }
    }
}

impl Error for TensorError {}

/// An owned, row-major, N-dimensional array of `f32`.
///
/// The layout is contiguous row-major (C order); convolution kernels in
/// [`crate::conv`] interpret rank-4 tensors as NCHW.
///
/// # Example
///
/// ```
/// use rte_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.at(&[1, 2]), 6.0);
/// assert_eq!(t.sum(), 21.0);
/// # Ok::<(), rte_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the element count implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                got: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at each flat row-major index.
    pub fn from_fn(dims: &[usize], f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: (0..n).map(f).collect(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.shape.dim(i)
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Flat row-major view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds
    /// (bounds are checked in debug builds).
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// See [`Tensor::at`].
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.shape.offset(idx);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data but a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(mut self, dims: &[usize]) -> Result<Self, TensorError> {
        let new_shape = Shape::new(dims);
        if new_shape.numel() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: new_shape.numel(),
                got: self.data.len(),
            });
        }
        self.shape = new_shape;
        Ok(self)
    }

    fn check_same_shape(&self, other: &Tensor) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok(())
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other)?;
        Ok(self.zip_with(other, |a, b| a + b))
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other)?;
        Ok(self.zip_with(other, |a, b| a - b))
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other)?;
        Ok(self.zip_with(other, |a, b| a * b))
    }

    /// In-place elementwise sum: `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(other)?;
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (BLAS `axpy`), on the
    /// process-global [`crate::simd`] arm (bit-identical per arm).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(other)?;
        simd::axpy(alpha, &other.data, &mut self.data);
        Ok(())
    }

    /// Returns `self` scaled by a constant (vectorized via
    /// [`crate::simd`]).
    pub fn scale(&self, alpha: f32) -> Tensor {
        let mut out = self.clone();
        simd::scale(alpha, &mut out.data);
        out
    }

    /// Scales in place (vectorized via [`crate::simd`]).
    pub fn scale_in_place(&mut self, alpha: f32) {
        simd::scale(alpha, &mut self.data);
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ (callers inside this crate check shapes
    /// first; use the fallible [`Tensor::add`]-family externally).
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_with shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of all elements (f64 accumulation).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    ///
    /// Returns `0.0` for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Minimum element, or `None` for an empty tensor.
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::min)
    }

    /// Maximum element, or `None` for an empty tensor.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::max)
    }

    /// Dot product of the flattened tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32, TensorError> {
        self.check_same_shape(other)?;
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum::<f64>() as f32)
    }

    /// Squared L2 norm of the tensor.
    pub fn norm_sq(&self) -> f32 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>() as f32
    }

    /// L2 norm of the tensor.
    pub fn norm(&self) -> f32 {
        (self.norm_sq() as f64).sqrt() as f32
    }

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|x| format!("{x:.4}"))
            .collect();
        write!(f, "[{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[2, 2]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[3]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[4], 2.5).data().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[2]).is_ok());
        let err = Tensor::from_vec(vec![1.0, 2.0], &[3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 7.0);
        assert_eq!(t.at(&[1, 2, 3]), 7.0);
        assert_eq!(t.data()[23], 7.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
        assert!(matches!(a.dot(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-1.0, 0.0, 3.0, 2.0], &[4]).unwrap();
        assert_eq!(t.sum(), 4.0);
        assert_eq!(t.mean(), 1.0);
        assert_eq!(t.min(), Some(-1.0));
        assert_eq!(t.max(), Some(3.0));
        assert_eq!(t.norm_sq(), 14.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let r = t.reshape(&[2, 2]).unwrap();
        assert_eq!(r.at(&[1, 0]), 3.0);
        assert!(r.clone().reshape(&[5]).is_err());
    }

    #[test]
    fn dot_and_norm() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 2.0], &[3]).unwrap();
        assert_eq!(a.dot(&a).unwrap(), 9.0);
        assert_eq!(a.norm(), 3.0);
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::zeros(&[10]);
        let s = t.to_string();
        assert!(s.contains("Tensor[10]"));
        assert!(s.contains('…'));
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut t = Tensor::zeros(&[2]);
        assert!(t.is_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(!t.is_finite());
    }
}
