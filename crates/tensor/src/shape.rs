//! Tensor shape handling.

use std::fmt;

/// The dimensions of a [`Tensor`](crate::Tensor).
///
/// Stored as a small vector of extents, outermost dimension first
/// (row-major). Shapes compare equal when all extents match.
///
/// # Example
///
/// ```
/// use rte_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; `1` for rank-0).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// All extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major strides for this shape.
    ///
    /// ```
    /// use rte_tensor::Shape;
    /// assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != self.rank()` or any coordinate is out of
    /// bounds (debug builds check bounds).
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.rank());
        let mut off = 0;
        let mut stride = 1;
        for i in (0..self.0.len()).rev() {
            debug_assert!(idx[i] < self.0[i], "index out of bounds");
            off += idx[i] * stride;
            stride *= self.0[i];
        }
        off
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dims(), &[4, 3, 2]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 1, 1]), 5);
    }

    #[test]
    fn display_formats_like_slice() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }

    #[test]
    fn conversions() {
        let a: Shape = [1, 2, 3].into();
        let b: Shape = vec![1, 2, 3].into();
        assert_eq!(a, b);
    }
}
