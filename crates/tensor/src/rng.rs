//! Deterministic pseudo-random number generation.
//!
//! All stochastic components of the workspace (netlist synthesis, placement
//! perturbation, label noise, weight initialization, batch shuffling, client
//! scheduling) draw from [`Xoshiro256`] streams derived from a single
//! experiment seed via [`SplitMix64`], making every reported number
//! bit-reproducible across runs and machines.

/// SplitMix64 generator, used to seed and to derive independent
/// [`Xoshiro256`] streams from one master seed.
///
/// # Example
///
/// ```
/// use rte_tensor::rng::SplitMix64;
///
/// let mut sm = SplitMix64::new(42);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** generator: the workhorse PRNG of the workspace.
///
/// Fast, high-quality and fully deterministic. Use [`Xoshiro256::derive`] to
/// obtain statistically independent sub-streams for different components so
/// that adding randomness consumption in one module does not perturb another.
///
/// # Example
///
/// ```
/// use rte_tensor::rng::Xoshiro256;
///
/// let mut rng = Xoshiro256::seed_from(7);
/// let x = rng.uniform(); // in [0, 1)
/// assert!((0.0..1.0).contains(&x));
/// let die = rng.range_usize(1, 7); // in [1, 7)
/// assert!((1..7).contains(&die));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Xoshiro256 {
    s: [u64; 4],
    /// Cached second normal variate from Box-Muller.
    spare_normal: Option<f64>,
}

impl Xoshiro256 {
    /// Creates a generator seeded by expanding `seed` with SplitMix64, as
    /// recommended by the xoshiro authors.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // xoshiro must not be seeded with all zeros; SplitMix64 of any seed
        // can in principle emit four zeros only with negligible probability,
        // but guard anyway.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 {
            s,
            spare_normal: None,
        }
    }

    /// Derives an independent sub-stream labelled by `label`.
    ///
    /// The sub-stream's seed mixes this generator's *current* state with the
    /// label, so two different labels (or the same label at different points
    /// of the parent stream) give unrelated streams.
    pub fn derive(&self, label: u64) -> Xoshiro256 {
        let mut sm = SplitMix64::new(self.s[0] ^ label.wrapping_mul(0xA076_1D64_78BD_642F));
        let mut mixed = sm.next_u64() ^ self.s[3];
        mixed = mixed.wrapping_add(sm.next_u64());
        Xoshiro256::seed_from(mixed)
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.uniform_f64() as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform_in: lo must be <= hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal variate via Box-Muller (mean 0, std 1).
    pub fn normal(&mut self) -> f32 {
        self.normal_f64() as f32
    }

    /// Standard normal `f64` variate.
    pub fn normal_f64(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box-Muller transform; u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.uniform_f64();
        let u2 = self.uniform_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// Uses Lemire-style multiply-shift rejection-free mapping, adequate for
    /// simulation workloads (bias is at most 2^-32 relative for ranges used
    /// here).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range_usize: empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        let x = self.next_u64();
        lo + ((x as u128 * span as u128) >> 64) as usize
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform_f64() < p
    }

    /// Poisson-distributed count with mean `lambda` (Knuth's algorithm;
    /// intended for small lambda as used in netlist synthesis).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    pub fn poisson(&mut self, lambda: f64) -> usize {
        assert!(lambda.is_finite() && lambda >= 0.0, "invalid lambda");
        if lambda == 0.0 {
            return 0;
        }
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= self.uniform_f64();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                // Numerical safety valve for very large lambda.
                return k;
            }
        }
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (partial Fisher-Yates).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range_usize(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Samples an index according to unnormalized non-negative `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index: empty weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index: non-positive total weight");
        let mut target = self.uniform_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(1);
        let mut c = Xoshiro256::seed_from(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn derive_gives_independent_streams() {
        let parent = Xoshiro256::seed_from(9);
        let mut s1 = parent.derive(1);
        let mut s2 = parent.derive(2);
        let a: Vec<u64> = (0..4).map(|_| s1.next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|_| s2.next_u64()).collect();
        assert_ne!(a, b);
        // Deriving the same label twice from the same parent state matches.
        let mut s1b = parent.derive(1);
        let c: Vec<u64> = (0..4).map(|_| s1b.next_u64()).collect();
        assert_eq!(a, c);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from(5);
        for _ in 0..1000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = Xoshiro256::seed_from(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.uniform_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256::seed_from(13);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal_f64()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn range_usize_bounds() {
        let mut rng = Xoshiro256::seed_from(17);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.range_usize(2, 8);
            assert!((2..8).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit");
    }

    #[test]
    fn poisson_mean() {
        let mut rng = Xoshiro256::seed_from(19);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.poisson(3.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::seed_from(23);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Xoshiro256::seed_from(29);
        let sample = rng.sample_indices(100, 30);
        assert_eq!(sample.len(), 30);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Xoshiro256::seed_from(31);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = Xoshiro256::seed_from(37);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
