//! 2-D convolution, transposed convolution, pooling and pixel-shuffle
//! kernels in NCHW layout, with exact backward passes.
//!
//! Convolutions lower to [`crate::linalg`] matrix products via im2col /
//! col2im. These are the primitives that the `rte-nn` layer types wrap with
//! parameter storage; they are exposed here as free functions so they can be
//! benchmarked and property-tested in isolation.

use std::cell::RefCell;

use crate::linalg::{matmul, matmul_nt_acc, matmul_tn};
use crate::parallel::{self, Parallelism};
use crate::simd;
use crate::{Tensor, TensorError};

/// Minimum per-batch-item multiply count before the batch loop fans out
/// to worker threads; below this, thread spawn overhead dominates and the
/// kernels run inline (results are identical either way).
const PAR_MIN_ITEM_FLOPS: usize = 1 << 16;

/// Degrades `par` to serial when each batch item is too small to pay for
/// a thread spawn.
fn effective_parallelism(par: Parallelism, item_flops: usize) -> Parallelism {
    if item_flops < PAR_MIN_ITEM_FLOPS {
        Parallelism::serial()
    } else {
        par
    }
}

std::thread_local! {
    /// Per-thread im2col/col2im scratch, reused across kernel *calls* on
    /// the single-threaded paths (the training loop convolves thousands
    /// of times with identical geometry, so a per-call `Vec` is pure
    /// allocator churn). Worker threads in the batch-parallel paths keep
    /// their own per-worker buffers via the pool's `init` hook instead.
    static COL_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` on a thread-local scratch slice of exactly `len` elements.
///
/// Contents are unspecified on entry — every caller overwrites the full
/// slice (im2col writes padding explicitly; the matmuls zero their
/// output). Falls back to a fresh allocation if the scratch is already
/// borrowed (re-entrant kernels), so nesting degrades instead of
/// panicking.
fn with_col_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    COL_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            if buf.len() < len {
                buf.resize(len, 0.0);
            }
            f(&mut buf[..len])
        }
        Err(_) => f(&mut vec![0.0f32; len]),
    })
}

/// Geometry of a 2-D convolution: stride, zero padding and dilation
/// (identical in both spatial dimensions, as used by all three paper
/// models).
///
/// # Example
///
/// ```
/// use rte_tensor::conv::Conv2dSpec;
///
/// // The paper's FLNet uses 9×9 kernels with "same" padding at stride 1.
/// let spec = Conv2dSpec::same(9);
/// assert_eq!(spec.out_extent(32, 9), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Spatial stride (≥ 1).
    pub stride: usize,
    /// Symmetric zero padding.
    pub padding: usize,
    /// Kernel dilation (1 = dense kernel).
    pub dilation: usize,
}

impl Default for Conv2dSpec {
    fn default() -> Self {
        Conv2dSpec {
            stride: 1,
            padding: 0,
            dilation: 1,
        }
    }
}

impl Conv2dSpec {
    /// Stride-1, dilation-1 spec with the padding that preserves spatial
    /// size for an odd kernel (`padding = k / 2`).
    ///
    /// # Panics
    ///
    /// Panics on an even (or zero) kernel: `padding = k / 2` would *grow*
    /// the output by one position per axis instead of preserving it
    /// (`out = in + 2·(k/2) − k + 1 = in + 1` for even `k`), silently
    /// desynchronizing layer geometry downstream.
    pub fn same(kernel: usize) -> Self {
        assert!(
            kernel % 2 == 1,
            "Conv2dSpec::same requires an odd kernel (got {kernel}): \
             even kernels cannot preserve spatial extent symmetrically"
        );
        Conv2dSpec {
            stride: 1,
            padding: kernel / 2,
            dilation: 1,
        }
    }

    /// "Same"-size spec for a dilated odd kernel: the effective kernel is
    /// `d*(k-1)+1`, so padding `d*(k-1)/2` preserves the extent at stride 1.
    ///
    /// # Panics
    ///
    /// Panics on an even (or zero) kernel. For even `k` with odd `d` the
    /// required padding `d*(k-1)/2` is fractional, so flooring it shrinks
    /// the output (see [`Conv2dSpec::same`] for the mirror-image bug);
    /// even `k` with even `d` happens to preserve the extent but off-center
    /// — the kernel's reach is asymmetric around each output site. Both
    /// are rejected so "same" always means *centered* same-size.
    pub fn same_dilated(kernel: usize, dilation: usize) -> Self {
        assert!(
            kernel % 2 == 1,
            "Conv2dSpec::same_dilated requires an odd kernel (got {kernel}): \
             even kernels cannot preserve spatial extent symmetrically"
        );
        Conv2dSpec {
            stride: 1,
            padding: dilation * (kernel - 1) / 2,
            dilation,
        }
    }

    /// Effective kernel extent once dilation is applied.
    pub fn effective_kernel(&self, kernel: usize) -> usize {
        self.dilation * (kernel - 1) + 1
    }

    /// Output extent of a convolution over `input` positions with kernel
    /// size `kernel`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields no valid output positions.
    pub fn out_extent(&self, input: usize, kernel: usize) -> usize {
        let eff = self.effective_kernel(kernel);
        let padded = input + 2 * self.padding;
        assert!(
            padded >= eff,
            "conv output would be empty: input {input}, kernel {kernel}, spec {self:?}"
        );
        (padded - eff) / self.stride + 1
    }

    /// Output extent of a *transposed* convolution over `input` positions.
    pub fn transpose_out_extent(&self, input: usize, kernel: usize) -> usize {
        (input - 1) * self.stride + self.effective_kernel(kernel) - 2 * self.padding
    }
}

/// The output positions `oj ∈ [lo, hi)` whose source column
/// `jj = oj*stride + jj0` lies inside `[0, w)` — everything outside is
/// zero padding. Splitting the row this way lets the copy loops run
/// branch-free (and as a straight `memcpy` at stride 1).
fn valid_col_range(jj0: isize, stride: usize, w: usize, ow: usize) -> (usize, usize) {
    let s = stride as isize;
    let lo = if jj0 >= 0 { 0 } else { (-jj0 + s - 1) / s }.clamp(0, ow as isize) as usize;
    let limit = w as isize - jj0; // jj < w  ⇔  oj < ceil(limit / s)
    let hi = if limit <= 0 {
        0
    } else {
        ((limit + s - 1) / s).clamp(lo as isize, ow as isize) as usize
    };
    (lo, hi.max(lo))
}

/// Unfolds one image (`c × h × w`) into a column matrix
/// (`c*kh*kw × oh*ow`) for the given convolution spec.
///
/// Each output row is written as explicit zero-pad prefix/suffix around
/// a branch-free interior copy — a single `copy_from_slice` at stride 1
/// (the paper models' only stride for their large 9×9 kernels).
///
/// # Panics
///
/// Panics if `col` does not have exactly `c*kh*kw*oh*ow` elements.
pub fn im2col(
    img: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
    col: &mut [f32],
) {
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    assert_eq!(col.len(), c * kh * kw * oh * ow, "im2col: col buffer size");
    let mut row = 0usize;
    for ci in 0..c {
        let img_c = &img[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let base = row * oh * ow;
                row += 1;
                let jj0 = (kj * spec.dilation) as isize - spec.padding as isize;
                let (lo, hi) = valid_col_range(jj0, spec.stride, w, ow);
                for oi in 0..oh {
                    let ii =
                        (oi * spec.stride + ki * spec.dilation) as isize - spec.padding as isize;
                    let out_row = &mut col[base + oi * ow..base + (oi + 1) * ow];
                    if ii < 0 || ii >= h as isize {
                        out_row.iter_mut().for_each(|x| *x = 0.0);
                        continue;
                    }
                    let src = &img_c[ii as usize * w..(ii as usize + 1) * w];
                    out_row[..lo].iter_mut().for_each(|x| *x = 0.0);
                    out_row[hi..].iter_mut().for_each(|x| *x = 0.0);
                    if lo >= hi {
                        // Kernel column entirely in padding: the fills
                        // above already wrote the whole row (and
                        // jj0 + lo could be negative here).
                        continue;
                    }
                    if spec.stride == 1 {
                        let j_start = (jj0 + lo as isize) as usize;
                        out_row[lo..hi].copy_from_slice(&src[j_start..j_start + (hi - lo)]);
                    } else {
                        let mut jj = (jj0 + (lo * spec.stride) as isize) as usize;
                        for o in out_row[lo..hi].iter_mut() {
                            *o = src[jj];
                            jj += spec.stride;
                        }
                    }
                }
            }
        }
    }
}

/// Folds a column matrix back into an image, accumulating overlapping
/// contributions (the adjoint of [`im2col`]).
///
/// `img` is zeroed before accumulation.
///
/// # Panics
///
/// Panics if buffer sizes are inconsistent with the given geometry.
pub fn col2im(
    col: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
    img: &mut [f32],
) {
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    assert_eq!(col.len(), c * kh * kw * oh * ow, "col2im: col buffer size");
    assert_eq!(img.len(), c * h * w, "col2im: img buffer size");
    img.iter_mut().for_each(|x| *x = 0.0);
    let mut row = 0usize;
    for ci in 0..c {
        let img_c = &mut img[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let base = row * oh * ow;
                row += 1;
                let jj0 = (kj * spec.dilation) as isize - spec.padding as isize;
                let (lo, hi) = valid_col_range(jj0, spec.stride, w, ow);
                if lo >= hi {
                    // Kernel column entirely in padding: nothing to
                    // fold back (and jj0 + lo could be negative).
                    continue;
                }
                for oi in 0..oh {
                    let ii =
                        (oi * spec.stride + ki * spec.dilation) as isize - spec.padding as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    let ii = ii as usize;
                    let src = &col[base + oi * ow..base + (oi + 1) * ow];
                    if spec.stride == 1 {
                        let j_start = (jj0 + lo as isize) as usize;
                        let dst = &mut img_c[ii * w + j_start..ii * w + j_start + (hi - lo)];
                        for (d, &s) in dst.iter_mut().zip(src[lo..hi].iter()) {
                            *d += s;
                        }
                    } else {
                        let mut jj = (jj0 + (lo * spec.stride) as isize) as usize;
                        for &s in src[lo..hi].iter() {
                            img_c[ii * w + jj] += s;
                            jj += spec.stride;
                        }
                    }
                }
            }
        }
    }
}

fn expect_rank4(t: &Tensor, what: &str) -> Result<(), TensorError> {
    if t.shape().rank() != 4 {
        return Err(TensorError::InvalidShape {
            reason: format!("{what} must be rank-4 (NCHW), got {}", t.shape()),
        });
    }
    Ok(())
}

/// 2-D convolution forward pass with the process-global [`Parallelism`]
/// (see [`crate::parallel::set_global`]); equivalent to [`conv2d_with`].
///
/// * `x`: input `(N, C_in, H, W)`
/// * `w`: kernels `(C_out, C_in, KH, KW)`
/// * `bias`: optional `(C_out)` bias
///
/// Returns `(N, C_out, OH, OW)`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] when ranks or channel counts are
/// inconsistent.
pub fn conv2d(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Result<Tensor, TensorError> {
    conv2d_with(x, w, bias, spec, parallel::global())
}

/// [`conv2d`] with an explicit thread budget: batch items fan out to
/// worker threads, each with its own im2col scratch buffer. Results are
/// bit-identical for every `par` (each item's arithmetic is independent
/// and written to a disjoint output slice).
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] when ranks or channel counts are
/// inconsistent.
pub fn conv2d_with(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    par: Parallelism,
) -> Result<Tensor, TensorError> {
    expect_rank4(x, "conv2d input")?;
    expect_rank4(w, "conv2d weight")?;
    let (n, c_in, h, w_in) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (c_out, wc_in, kh, kw) = (w.dim(0), w.dim(1), w.dim(2), w.dim(3));
    if c_in != wc_in {
        return Err(TensorError::InvalidShape {
            reason: format!("conv2d: input has {c_in} channels but weight expects {wc_in}"),
        });
    }
    if let Some(b) = bias {
        if b.shape().dims() != [c_out] {
            return Err(TensorError::InvalidShape {
                reason: format!("conv2d: bias shape {} != [{c_out}]", b.shape()),
            });
        }
    }
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w_in, kw);
    let ckk = c_in * kh * kw;
    let ohw = oh * ow;
    let mut y = Tensor::zeros(&[n, c_out, oh, ow]);
    if n == 0 || c_out == 0 {
        return Ok(y);
    }
    let x_data = x.data();
    let w_data = w.data();
    let b_data = bias.map(|b| b.data());
    let par = effective_parallelism(par, c_out * ckk * ohw);
    let item = |col: &mut [f32], ni: usize, y_n: &mut [f32]| {
        let x_n = &x_data[ni * c_in * h * w_in..(ni + 1) * c_in * h * w_in];
        im2col(x_n, c_in, h, w_in, kh, kw, spec, col);
        matmul(w_data, col, c_out, ckk, ohw, y_n);
        if let Some(b) = b_data {
            for co in 0..c_out {
                let bv = b[co];
                for v in &mut y_n[co * ohw..(co + 1) * ohw] {
                    *v += bv;
                }
            }
        }
    };
    if par.workers_for(n) <= 1 {
        // Single-threaded: reuse the thread-local scratch across calls
        // instead of allocating a fresh im2col buffer per forward pass.
        with_col_scratch(ckk * ohw, |col| {
            for (ni, y_n) in y.data_mut().chunks_mut(c_out * ohw).enumerate() {
                item(col, ni, y_n);
            }
        });
    } else {
        parallel::for_each_chunk_mut(
            par,
            y.data_mut(),
            c_out * ohw,
            || vec![0.0f32; ckk * ohw],
            |col, ni, y_n| item(col, ni, y_n),
        );
    }
    Ok(y)
}

/// Gradients of [`conv2d`] with respect to input, weight and bias.
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, shaped like `x`.
    pub dx: Tensor,
    /// Gradient w.r.t. the weight, shaped like `w`.
    pub dw: Tensor,
    /// Gradient w.r.t. the bias, shape `(C_out)`.
    pub db: Tensor,
}

/// 2-D convolution backward pass with the process-global [`Parallelism`];
/// equivalent to [`conv2d_backward_with`].
///
/// `dy` must be shaped `(N, C_out, OH, OW)` as produced by [`conv2d`] on
/// `x`/`w` with the same `spec`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] when shapes are inconsistent.
pub fn conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    dy: &Tensor,
    spec: Conv2dSpec,
) -> Result<Conv2dGrads, TensorError> {
    conv2d_backward_with(x, w, dy, spec, parallel::global())
}

/// [`conv2d_backward`] with an explicit thread budget.
///
/// Batch items fan out to workers: `dx` is written to disjoint per-item
/// slices, while the batch-summed `dw`/`db` are computed as per-item
/// partials and reduced on the caller's thread *in batch order* — the
/// summation tree is therefore fixed, and the gradients are bit-identical
/// for every `par` (including serial).
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] when shapes are inconsistent.
pub fn conv2d_backward_with(
    x: &Tensor,
    w: &Tensor,
    dy: &Tensor,
    spec: Conv2dSpec,
    par: Parallelism,
) -> Result<Conv2dGrads, TensorError> {
    expect_rank4(x, "conv2d input")?;
    expect_rank4(w, "conv2d weight")?;
    expect_rank4(dy, "conv2d output grad")?;
    let (n, c_in, h, w_in) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (c_out, _, kh, kw) = (w.dim(0), w.dim(1), w.dim(2), w.dim(3));
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w_in, kw);
    if dy.shape().dims() != [n, c_out, oh, ow] {
        return Err(TensorError::InvalidShape {
            reason: format!(
                "conv2d_backward: dy shape {} != [{n}, {c_out}, {oh}, {ow}]",
                dy.shape()
            ),
        });
    }
    let ckk = c_in * kh * kw;
    let ohw = oh * ow;
    let mut dx = Tensor::zeros(&[n, c_in, h, w_in]);
    let mut dw = Tensor::zeros(&[c_out, c_in, kh, kw]);
    let mut db = Tensor::zeros(&[c_out]);
    if n == 0 || c_out == 0 {
        return Ok(Conv2dGrads { dx, dw, db });
    }
    let x_data = x.data();
    let w_data = w.data();
    let dy_data = dy.data();
    let par = effective_parallelism(par, c_out * ckk * ohw);

    // Input gradient: dX_n = col2im(Wᵀ · dY_n), one disjoint slice per
    // batch item, per-worker dcol scratch (thread-local scratch reused
    // across calls when single-threaded). A zero-channel input (dx has
    // no elements) trivially has no input gradient to compute.
    if c_in * h * w_in > 0 {
        let item = |dcol: &mut [f32], ni: usize, dx_n: &mut [f32]| {
            let dy_n = &dy_data[ni * c_out * ohw..(ni + 1) * c_out * ohw];
            matmul_tn(w_data, dy_n, ckk, c_out, ohw, dcol);
            col2im(dcol, c_in, h, w_in, kh, kw, spec, dx_n);
        };
        if par.workers_for(n) <= 1 {
            with_col_scratch(ckk * ohw, |dcol| {
                for (ni, dx_n) in dx.data_mut().chunks_mut(c_in * h * w_in).enumerate() {
                    item(dcol, ni, dx_n);
                }
            });
        } else {
            parallel::for_each_chunk_mut(
                par,
                dx.data_mut(),
                c_in * h * w_in,
                || vec![0.0f32; ckk * ohw],
                |dcol, ni, dx_n| item(dcol, ni, dx_n),
            );
        }
    }

    // Weight/bias gradients sum over the batch. Serially, accumulate in
    // place in batch order (no extra buffers). In parallel, compute exact
    // per-item contributions concurrently and reduce them in batch order
    // on this thread. Both paths add the same per-item accumulators in
    // the same order, so they are bit-identical — `matmul_nt_acc`
    // computes each item's contribution into a local `acc` before the
    // `+=`, whether the target is `dw` directly or a zeroed partial.
    if par.workers_for(n) <= 1 {
        with_col_scratch(ckk * ohw, |col| {
            for ni in 0..n {
                let x_n = &x_data[ni * c_in * h * w_in..(ni + 1) * c_in * h * w_in];
                let dy_n = &dy_data[ni * c_out * ohw..(ni + 1) * c_out * ohw];
                // dW += dY_n · colᵀ; matmul_nt_acc needs dw flattened as
                // (c_out, ckk), which is exactly the tensor's storage
                // layout.
                im2col(x_n, c_in, h, w_in, kh, kw, spec, col);
                matmul_nt_acc(dy_n, col, c_out, ohw, ckk, dw.data_mut());
                for co in 0..c_out {
                    let s = simd::sum(&dy_n[co * ohw..(co + 1) * ohw]);
                    db.data_mut()[co] += s;
                }
            }
        });
    } else {
        let batch: Vec<usize> = (0..n).collect();
        let partials = parallel::map_with(
            par,
            &batch,
            || vec![0.0f32; ckk * ohw],
            |col, _, &ni| {
                let x_n = &x_data[ni * c_in * h * w_in..(ni + 1) * c_in * h * w_in];
                let dy_n = &dy_data[ni * c_out * ohw..(ni + 1) * c_out * ohw];
                im2col(x_n, c_in, h, w_in, kh, kw, spec, col);
                let mut dw_n = vec![0.0f32; c_out * ckk];
                matmul_nt_acc(dy_n, col, c_out, ohw, ckk, &mut dw_n);
                let db_n: Vec<f32> = (0..c_out)
                    .map(|co| simd::sum(&dy_n[co * ohw..(co + 1) * ohw]))
                    .collect();
                (dw_n, db_n)
            },
        );
        for (dw_n, db_n) in &partials {
            for (acc, &v) in dw.data_mut().iter_mut().zip(dw_n.iter()) {
                *acc += v;
            }
            for (acc, &v) in db.data_mut().iter_mut().zip(db_n.iter()) {
                *acc += v;
            }
        }
    }
    Ok(Conv2dGrads { dx, dw, db })
}

/// Transposed 2-D convolution (a.k.a. deconvolution) forward pass.
///
/// * `x`: input `(N, C_in, H, W)`
/// * `w`: kernels `(C_in, C_out, KH, KW)` (PyTorch `ConvTranspose2d` layout)
/// * `bias`: optional `(C_out)`
///
/// Returns `(N, C_out, OH, OW)` with
/// `OH = (H-1)*stride + dilation*(KH-1) + 1 - 2*padding`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] when shapes are inconsistent.
pub fn conv_transpose2d(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Result<Tensor, TensorError> {
    expect_rank4(x, "conv_transpose2d input")?;
    expect_rank4(w, "conv_transpose2d weight")?;
    let (n, c_in, h, w_in) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (wc_in, c_out, kh, kw) = (w.dim(0), w.dim(1), w.dim(2), w.dim(3));
    if c_in != wc_in {
        return Err(TensorError::InvalidShape {
            reason: format!(
                "conv_transpose2d: input has {c_in} channels but weight expects {wc_in}"
            ),
        });
    }
    let oh = spec.transpose_out_extent(h, kh);
    let ow = spec.transpose_out_extent(w_in, kw);
    // Sanity: a conv over (oh, ow) with this spec must produce (h, w).
    debug_assert_eq!(spec.out_extent(oh, kh), h);
    debug_assert_eq!(spec.out_extent(ow, kw), w_in);
    if let Some(b) = bias {
        if b.shape().dims() != [c_out] {
            return Err(TensorError::InvalidShape {
                reason: format!("conv_transpose2d: bias shape {} != [{c_out}]", b.shape()),
            });
        }
    }
    let ckk = c_out * kh * kw;
    let hw = h * w_in;
    let mut y = Tensor::zeros(&[n, c_out, oh, ow]);
    with_col_scratch(ckk * hw, |col| {
        for ni in 0..n {
            let x_n = &x.data()[ni * c_in * hw..(ni + 1) * c_in * hw];
            // col = Wᵀ_flat · x_n, where W_flat is (C_in, C_out*KH*KW).
            matmul_tn(w.data(), x_n, ckk, c_in, hw, col);
            let y_n = &mut y.data_mut()[ni * c_out * oh * ow..(ni + 1) * c_out * oh * ow];
            col2im(col, c_out, oh, ow, kh, kw, spec, y_n);
            if let Some(b) = bias {
                for co in 0..c_out {
                    let bv = b.data()[co];
                    for v in &mut y_n[co * oh * ow..(co + 1) * oh * ow] {
                        *v += bv;
                    }
                }
            }
        }
    });
    Ok(y)
}

/// Transposed-convolution backward pass; field meanings mirror
/// [`Conv2dGrads`] with `dw` shaped `(C_in, C_out, KH, KW)`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] when shapes are inconsistent.
pub fn conv_transpose2d_backward(
    x: &Tensor,
    w: &Tensor,
    dy: &Tensor,
    spec: Conv2dSpec,
) -> Result<Conv2dGrads, TensorError> {
    expect_rank4(x, "conv_transpose2d input")?;
    expect_rank4(w, "conv_transpose2d weight")?;
    expect_rank4(dy, "conv_transpose2d output grad")?;
    let (n, c_in, h, w_in) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (_, c_out, kh, kw) = (w.dim(0), w.dim(1), w.dim(2), w.dim(3));
    let oh = spec.transpose_out_extent(h, kh);
    let ow = spec.transpose_out_extent(w_in, kw);
    if dy.shape().dims() != [n, c_out, oh, ow] {
        return Err(TensorError::InvalidShape {
            reason: format!(
                "conv_transpose2d_backward: dy shape {} != [{n}, {c_out}, {oh}, {ow}]",
                dy.shape()
            ),
        });
    }
    let ckk = c_out * kh * kw;
    let hw = h * w_in;
    let mut dx = Tensor::zeros(&[n, c_in, h, w_in]);
    let mut dw = Tensor::zeros(&[c_in, c_out, kh, kw]);
    let mut db = Tensor::zeros(&[c_out]);
    with_col_scratch(ckk * hw, |col| {
        for ni in 0..n {
            let x_n = &x.data()[ni * c_in * hw..(ni + 1) * c_in * hw];
            let dy_n = &dy.data()[ni * c_out * oh * ow..(ni + 1) * c_out * oh * ow];
            // The forward was y = col2im(Wᵀ x); its adjoint is im2col.
            im2col(dy_n, c_out, oh, ow, kh, kw, spec, col);
            // dX_n = W_flat · col  (C_in × ckk)·(ckk × hw).
            let dx_n = &mut dx.data_mut()[ni * c_in * hw..(ni + 1) * c_in * hw];
            matmul(w.data(), col, c_in, ckk, hw, dx_n);
            // dW += x_n · colᵀ  (C_in × hw)·(hw × ckk).
            matmul_nt_acc(x_n, col, c_in, hw, ckk, dw.data_mut());
            for co in 0..c_out {
                let s = simd::sum(&dy_n[co * oh * ow..(co + 1) * oh * ow]);
                db.data_mut()[co] += s;
            }
        }
    });
    Ok(Conv2dGrads { dx, dw, db })
}

/// Output of [`max_pool2d`]: pooled tensor plus flat argmax indices used by
/// [`max_pool2d_backward`].
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled tensor `(N, C, OH, OW)`.
    pub y: Tensor,
    /// For each pooled element, the flat `h*W + w` offset (within its
    /// `(n, c)` image) of the selected maximum.
    pub argmax: Vec<u32>,
}

/// Max pooling with square window `kernel` and stride `stride`, no padding.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if `x` is not rank-4 or smaller
/// than the window.
pub fn max_pool2d(x: &Tensor, kernel: usize, stride: usize) -> Result<MaxPoolOutput, TensorError> {
    expect_rank4(x, "max_pool2d input")?;
    let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    if h < kernel || w < kernel {
        return Err(TensorError::InvalidShape {
            reason: format!("max_pool2d: input {h}×{w} smaller than window {kernel}"),
        });
    }
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let mut y = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = vec![0u32; n * c * oh * ow];
    let x_data = x.data();
    let y_data = y.data_mut();
    for nc in 0..n * c {
        let img = &x_data[nc * h * w..(nc + 1) * h * w];
        let out = &mut y_data[nc * oh * ow..(nc + 1) * oh * ow];
        let arg = &mut argmax[nc * oh * ow..(nc + 1) * oh * ow];
        for oi in 0..oh {
            for oj in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0u32;
                for ki in 0..kernel {
                    for kj in 0..kernel {
                        let ii = oi * stride + ki;
                        let jj = oj * stride + kj;
                        let v = img[ii * w + jj];
                        if v > best {
                            best = v;
                            best_idx = (ii * w + jj) as u32;
                        }
                    }
                }
                out[oi * ow + oj] = best;
                arg[oi * ow + oj] = best_idx;
            }
        }
    }
    Ok(MaxPoolOutput { y, argmax })
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the
/// input location that won the max.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if `input_dims` is not rank-4 or
/// is inconsistent with the pooled geometry (batch/channel mismatch,
/// pooled extent larger than the input, argmax length or indices out of
/// range), and [`TensorError::ShapeMismatch`] if `dy` does not match the
/// pooled shape. Without these checks a short or wrong `input_dims` slice
/// would panic out of bounds or silently scatter gradients into the wrong
/// locations.
pub fn max_pool2d_backward(
    input_dims: &[usize],
    pooled: &MaxPoolOutput,
    dy: &Tensor,
) -> Result<Tensor, TensorError> {
    if dy.shape() != pooled.y.shape() {
        return Err(TensorError::ShapeMismatch {
            left: dy.shape().clone(),
            right: pooled.y.shape().clone(),
        });
    }
    if input_dims.len() != 4 {
        return Err(TensorError::InvalidShape {
            reason: format!(
                "max_pool2d_backward: input dims must be rank-4 (NCHW), got {input_dims:?}"
            ),
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let (oh, ow) = (pooled.y.dim(2), pooled.y.dim(3));
    if pooled.y.dim(0) != n || pooled.y.dim(1) != c || oh > h || ow > w {
        return Err(TensorError::InvalidShape {
            reason: format!(
                "max_pool2d_backward: input dims {input_dims:?} inconsistent with pooled shape {}",
                pooled.y.shape()
            ),
        });
    }
    if pooled.argmax.len() != n * c * oh * ow {
        return Err(TensorError::InvalidShape {
            reason: format!(
                "max_pool2d_backward: argmax has {} entries, pooled geometry needs {}",
                pooled.argmax.len(),
                n * c * oh * ow
            ),
        });
    }
    if let Some(&bad) = pooled.argmax.iter().find(|&&idx| idx as usize >= h * w) {
        return Err(TensorError::InvalidShape {
            reason: format!(
                "max_pool2d_backward: argmax index {bad} outside the {h}×{w} input plane"
            ),
        });
    }
    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let dx_data = dx.data_mut();
    let dy_data = dy.data();
    for nc in 0..n * c {
        let g_in = &mut dx_data[nc * h * w..(nc + 1) * h * w];
        let g_out = &dy_data[nc * oh * ow..(nc + 1) * oh * ow];
        let arg = &pooled.argmax[nc * oh * ow..(nc + 1) * oh * ow];
        for (&g, &idx) in g_out.iter().zip(arg.iter()) {
            g_in[idx as usize] += g;
        }
    }
    Ok(dx)
}

/// Pixel shuffle (sub-pixel upsampling, depth-to-space): rearranges
/// `(N, C*r², H, W)` into `(N, C, H*r, W*r)` as used by the PROS model's
/// upsampling blocks.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if the channel count is not a
/// multiple of `r²`.
pub fn pixel_shuffle(x: &Tensor, r: usize) -> Result<Tensor, TensorError> {
    expect_rank4(x, "pixel_shuffle input")?;
    let (n, c_in, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    if r == 0 || c_in % (r * r) != 0 {
        return Err(TensorError::InvalidShape {
            reason: format!(
                "pixel_shuffle: {c_in} channels not divisible by r²={}",
                r * r
            ),
        });
    }
    let c_out = c_in / (r * r);
    let mut y = Tensor::zeros(&[n, c_out, h * r, w * r]);
    let x_data = x.data();
    let y_data = y.data_mut();
    let (ohw, ih_w) = ((h * r) * (w * r), h * w);
    for ni in 0..n {
        for co in 0..c_out {
            for di in 0..r {
                for dj in 0..r {
                    let ci = co * r * r + di * r + dj;
                    let src = &x_data[(ni * c_in + ci) * ih_w..(ni * c_in + ci + 1) * ih_w];
                    let dst = &mut y_data[(ni * c_out + co) * ohw..(ni * c_out + co + 1) * ohw];
                    for i in 0..h {
                        for j in 0..w {
                            dst[(i * r + di) * (w * r) + (j * r + dj)] = src[i * w + j];
                        }
                    }
                }
            }
        }
    }
    Ok(y)
}

/// Inverse of [`pixel_shuffle`] (space-to-depth); also its exact backward
/// pass since pixel shuffle is a permutation.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if spatial extents are not
/// multiples of `r`.
pub fn pixel_unshuffle(y: &Tensor, r: usize) -> Result<Tensor, TensorError> {
    expect_rank4(y, "pixel_unshuffle input")?;
    let (n, c_out, oh, ow) = (y.dim(0), y.dim(1), y.dim(2), y.dim(3));
    if r == 0 || oh % r != 0 || ow % r != 0 {
        return Err(TensorError::InvalidShape {
            reason: format!("pixel_unshuffle: {oh}×{ow} not divisible by r={r}"),
        });
    }
    let (h, w) = (oh / r, ow / r);
    let c_in = c_out * r * r;
    let mut x = Tensor::zeros(&[n, c_in, h, w]);
    let y_data = y.data();
    let x_data = x.data_mut();
    let (ohw, ih_w) = (oh * ow, h * w);
    for ni in 0..n {
        for co in 0..c_out {
            for di in 0..r {
                for dj in 0..r {
                    let ci = co * r * r + di * r + dj;
                    let src = &y_data[(ni * c_out + co) * ohw..(ni * c_out + co + 1) * ohw];
                    let dst = &mut x_data[(ni * c_in + ci) * ih_w..(ni * c_in + ci + 1) * ih_w];
                    for i in 0..h {
                        for j in 0..w {
                            dst[i * w + j] = src[(i * r + di) * ow + (j * r + dj)];
                        }
                    }
                }
            }
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = Xoshiro256::seed_from(seed);
        Tensor::from_fn(dims, |_| rng.normal())
    }

    #[test]
    fn out_extent_formulas() {
        let same9 = Conv2dSpec::same(9);
        assert_eq!(same9.padding, 4);
        assert_eq!(same9.out_extent(24, 9), 24);
        let strided = Conv2dSpec {
            stride: 2,
            padding: 1,
            dilation: 1,
        };
        assert_eq!(strided.out_extent(8, 3), 4);
        let dil = Conv2dSpec::same_dilated(3, 2);
        assert_eq!(dil.padding, 2);
        assert_eq!(dil.out_extent(10, 3), 10);
        assert_eq!(dil.effective_kernel(3), 5);
    }

    #[test]
    fn transpose_extent_inverts_conv_extent() {
        let spec = Conv2dSpec {
            stride: 2,
            padding: 1,
            dilation: 1,
        };
        // conv: 8 -> 4; transpose must map 4 -> back to something conv maps to 4.
        let up = spec.transpose_out_extent(4, 3);
        assert_eq!(spec.out_extent(up, 3), 4);
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1×1 kernel with unit weight reproduces the input.
        let x = rand_tensor(&[2, 3, 5, 5], 1);
        let mut w = Tensor::zeros(&[3, 3, 1, 1]);
        for c in 0..3 {
            w.set(&[c, c, 0, 0], 1.0);
        }
        let y = conv2d(&x, &w, None, Conv2dSpec::default()).unwrap();
        assert_eq!(y.shape(), x.shape());
        for (a, b) in x.data().iter().zip(y.data().iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn conv2d_known_values() {
        // 1×1×3×3 input, 3×3 sum kernel, valid padding → scalar sum.
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d(&x, &w, None, Conv2dSpec::default()).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 45.0);
    }

    #[test]
    fn conv2d_bias_added_per_channel() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let w = Tensor::zeros(&[2, 1, 1, 1]);
        let b = Tensor::from_vec(vec![1.5, -2.0], &[2]).unwrap();
        let y = conv2d(&x, &w, Some(&b), Conv2dSpec::default()).unwrap();
        assert!(y.data()[..4].iter().all(|&v| v == 1.5));
        assert!(y.data()[4..].iter().all(|&v| v == -2.0));
    }

    #[test]
    fn conv2d_rejects_channel_mismatch() {
        let x = Tensor::zeros(&[1, 2, 4, 4]);
        let w = Tensor::zeros(&[1, 3, 3, 3]);
        assert!(conv2d(&x, &w, None, Conv2dSpec::same(3)).is_err());
    }

    /// Finite-difference gradient check for a scalar loss L = Σ y∘g.
    fn check_conv2d_grads(spec: Conv2dSpec, xd: &[usize], wd: &[usize]) {
        let x = rand_tensor(xd, 11);
        let w = rand_tensor(wd, 12).scale(0.5);
        let b = rand_tensor(&[wd[0]], 13);
        let y = conv2d(&x, &w, Some(&b), spec).unwrap();
        let g = rand_tensor(y.shape().dims(), 14);
        let grads = conv2d_backward(&x, &w, &g, spec).unwrap();
        let eps = 1e-2f32;
        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| -> f64 {
            let y = conv2d(x, w, Some(b), spec).unwrap();
            y.data()
                .iter()
                .zip(g.data().iter())
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum()
        };
        // Check a scattering of coordinates in each gradient.
        for (analytic, param, which) in [
            (&grads.dx, &x, "dx"),
            (&grads.dw, &w, "dw"),
            (&grads.db, &b, "db"),
        ] {
            let stride = (param.numel() / 7).max(1);
            for i in (0..param.numel()).step_by(stride) {
                let mut plus = param.clone();
                plus.data_mut()[i] += eps;
                let mut minus = param.clone();
                minus.data_mut()[i] -= eps;
                let (lp, lm) = match which {
                    "dx" => (loss(&plus, &w, &b), loss(&minus, &w, &b)),
                    "dw" => (loss(&x, &plus, &b), loss(&x, &minus, &b)),
                    _ => (loss(&x, &w, &plus), loss(&x, &w, &minus)),
                };
                let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
                let got = analytic.data()[i];
                assert!(
                    (numeric - got).abs() < 2e-2 * (1.0 + numeric.abs().max(got.abs())),
                    "{which}[{i}]: numeric {numeric} vs analytic {got}"
                );
            }
        }
    }

    #[test]
    fn conv2d_gradients_match_finite_differences() {
        check_conv2d_grads(Conv2dSpec::same(3), &[2, 2, 5, 5], &[3, 2, 3, 3]);
    }

    #[test]
    fn conv2d_strided_dilated_gradients() {
        let spec = Conv2dSpec {
            stride: 2,
            padding: 2,
            dilation: 2,
        };
        check_conv2d_grads(spec, &[1, 2, 7, 7], &[2, 2, 3, 3]);
    }

    #[test]
    fn conv_transpose_matches_conv_adjoint() {
        // <conv(x), y> must equal <x, conv_transpose(y)> when the transpose
        // uses the same weights with swapped channel axes.
        let spec = Conv2dSpec {
            stride: 2,
            padding: 1,
            dilation: 1,
        };
        // Size chosen so (h + 2p - k) % s == 0, making the conv geometry
        // exactly invertible (otherwise PyTorch would need output_padding).
        let x = rand_tensor(&[1, 2, 5, 5], 21);
        let w = rand_tensor(&[3, 2, 3, 3], 22); // conv weight (Cout=3, Cin=2)
        let y = conv2d(&x, &w, None, spec).unwrap();
        let z = rand_tensor(y.shape().dims(), 23);
        // Build the transpose weight (Cin=3 → Cout=2) by permuting axes.
        let mut wt = Tensor::zeros(&[3, 2, 3, 3]);
        for co in 0..3 {
            for ci in 0..2 {
                for a in 0..3 {
                    for b in 0..3 {
                        wt.set(&[co, ci, a, b], w.at(&[co, ci, a, b]));
                    }
                }
            }
        }
        let xt = conv_transpose2d(&z, &wt, None, spec).unwrap();
        assert_eq!(xt.shape(), x.shape());
        let lhs: f64 = y
            .data()
            .iter()
            .zip(z.data().iter())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        let rhs: f64 = x
            .data()
            .iter()
            .zip(xt.data().iter())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn conv_transpose_upsamples() {
        let spec = Conv2dSpec {
            stride: 2,
            padding: 0,
            dilation: 1,
        };
        let x = rand_tensor(&[1, 4, 5, 5], 31);
        let w = rand_tensor(&[4, 2, 2, 2], 32);
        let y = conv_transpose2d(&x, &w, None, spec).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 10, 10]);
    }

    #[test]
    fn conv_transpose_gradients_match_finite_differences() {
        let spec = Conv2dSpec {
            stride: 2,
            padding: 1,
            dilation: 1,
        };
        let x = rand_tensor(&[1, 3, 4, 4], 41);
        let w = rand_tensor(&[3, 2, 3, 3], 42).scale(0.5);
        let y = conv_transpose2d(&x, &w, None, spec).unwrap();
        let g = rand_tensor(y.shape().dims(), 43);
        let grads = conv_transpose2d_backward(&x, &w, &g, spec).unwrap();
        let eps = 1e-2f32;
        let loss = |x: &Tensor, w: &Tensor| -> f64 {
            let y = conv_transpose2d(x, w, None, spec).unwrap();
            y.data()
                .iter()
                .zip(g.data().iter())
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum()
        };
        for i in (0..x.numel()).step_by(x.numel() / 6) {
            let mut p = x.clone();
            p.data_mut()[i] += eps;
            let mut m = x.clone();
            m.data_mut()[i] -= eps;
            let numeric = ((loss(&p, &w) - loss(&m, &w)) / (2.0 * eps as f64)) as f32;
            let got = grads.dx.data()[i];
            assert!(
                (numeric - got).abs() < 2e-2 * (1.0 + numeric.abs()),
                "dx[{i}]"
            );
        }
        for i in (0..w.numel()).step_by(w.numel() / 6) {
            let mut p = w.clone();
            p.data_mut()[i] += eps;
            let mut m = w.clone();
            m.data_mut()[i] -= eps;
            let numeric = ((loss(&x, &p) - loss(&x, &m)) / (2.0 * eps as f64)) as f32;
            let got = grads.dw.data()[i];
            assert!(
                (numeric - got).abs() < 2e-2 * (1.0 + numeric.abs()),
                "dw[{i}]"
            );
        }
    }

    #[test]
    fn max_pool_forward_and_backward() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 4.0, //
                3.0, 0.0, 1.0, 2.0, //
                7.0, 1.0, 0.0, 1.0, //
                2.0, 8.0, 3.0, 4.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let out = max_pool2d(&x, 2, 2).unwrap();
        assert_eq!(out.y.data(), &[3.0, 5.0, 8.0, 4.0]);
        let dy = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let dx = max_pool2d_backward(&[1, 1, 4, 4], &out, &dy).unwrap();
        assert_eq!(dx.at(&[0, 0, 1, 0]), 1.0); // 3.0 won
        assert_eq!(dx.at(&[0, 0, 0, 2]), 2.0); // 5.0 won
        assert_eq!(dx.at(&[0, 0, 3, 1]), 3.0); // 8.0 won
        assert_eq!(dx.at(&[0, 0, 3, 3]), 4.0); // 4.0 won
        assert_eq!(dx.sum(), 10.0);
    }

    #[test]
    fn pixel_shuffle_round_trip() {
        let x = rand_tensor(&[2, 8, 3, 3], 51);
        let y = pixel_shuffle(&x, 2).unwrap();
        assert_eq!(y.shape().dims(), &[2, 2, 6, 6]);
        let back = pixel_unshuffle(&y, 2).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn pixel_shuffle_layout() {
        // One output 2×2 block comes from the r² channels at one spatial site.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4, 1, 1]).unwrap();
        let y = pixel_shuffle(&x, 2).unwrap();
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn pixel_shuffle_rejects_bad_channels() {
        let x = Tensor::zeros(&[1, 3, 2, 2]);
        assert!(pixel_shuffle(&x, 2).is_err());
    }

    /// Per-element reference im2col (the pre-fast-path logic), for
    /// cross-checking the split-row rewrite on pathological geometry.
    fn im2col_reference(
        img: &[f32],
        c: usize,
        h: usize,
        w: usize,
        kh: usize,
        kw: usize,
        spec: Conv2dSpec,
        col: &mut [f32],
    ) {
        let oh = spec.out_extent(h, kh);
        let ow = spec.out_extent(w, kw);
        let mut row = 0usize;
        for ci in 0..c {
            let img_c = &img[ci * h * w..(ci + 1) * h * w];
            for ki in 0..kh {
                for kj in 0..kw {
                    let base = row * oh * ow;
                    row += 1;
                    for oi in 0..oh {
                        let ii = (oi * spec.stride + ki * spec.dilation) as isize
                            - spec.padding as isize;
                        for oj in 0..ow {
                            let jj = (oj * spec.stride + kj * spec.dilation) as isize
                                - spec.padding as isize;
                            let inside = ii >= 0 && ii < h as isize && jj >= 0 && jj < w as isize;
                            col[base + oi * ow + oj] = if inside {
                                img_c[ii as usize * w + jj as usize]
                            } else {
                                0.0
                            };
                        }
                    }
                }
            }
        }
    }

    /// Regression: a kernel column that lies *entirely* in padding
    /// (valid output range empty, e.g. w=1 with kw=6, padding=3) must
    /// produce zeros, not a wrapped negative slice index. Covers both
    /// the im2col fast path and col2im (via the backward pass).
    #[test]
    fn fully_padded_kernel_columns_are_zero() {
        for (h, w, kh, kw, stride, padding, dilation) in [
            (1usize, 1usize, 6usize, 6usize, 1usize, 3usize, 1usize),
            (4, 1, 3, 6, 1, 3, 1),
            (1, 2, 5, 7, 2, 4, 1),
            (3, 1, 3, 5, 1, 4, 2),
        ] {
            let spec = Conv2dSpec {
                stride,
                padding,
                dilation,
            };
            let oh = spec.out_extent(h, kh);
            let ow = spec.out_extent(w, kw);
            let c = 2;
            let x = rand_tensor(&[c, h, w], 97);
            let mut got = vec![0.0f32; c * kh * kw * oh * ow];
            im2col(x.data(), c, h, w, kh, kw, spec, &mut got);
            let mut want = vec![f32::NAN; c * kh * kw * oh * ow];
            im2col_reference(x.data(), c, h, w, kh, kw, spec, &mut want);
            assert_eq!(got, want, "im2col {h}x{w} k{kh}x{kw} s{stride} p{padding}");

            // The backward pass exercises col2im on the same geometry.
            let xb = rand_tensor(&[1, c, h, w], 98);
            let wt = rand_tensor(&[1, c, kh, kw], 99);
            let y = conv2d(&xb, &wt, None, spec).unwrap();
            let grads = conv2d_backward(&xb, &wt, &y, spec).unwrap();
            assert!(grads.dx.data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), c> == <x, col2im(c)> — adjointness of unfold/fold.
        let spec = Conv2dSpec::same(3);
        let (c, h, w) = (2, 5, 5);
        let oh = spec.out_extent(h, 3);
        let ow = spec.out_extent(w, 3);
        let x = rand_tensor(&[c, h, w], 61);
        let cvec = rand_tensor(&[c * 9 * oh * ow], 62);
        let mut col = vec![0.0f32; c * 9 * oh * ow];
        im2col(x.data(), c, h, w, 3, 3, spec, &mut col);
        let mut img = vec![0.0f32; c * h * w];
        col2im(cvec.data(), c, h, w, 3, 3, spec, &mut img);
        let lhs: f64 = col
            .iter()
            .zip(cvec.data().iter())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        let rhs: f64 = x
            .data()
            .iter()
            .zip(img.iter())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn same_rejects_even_kernel() {
        // Regression: padding = k/2 for even k grows the extent by one
        // (e.g. k=4: 10 + 2·2 − 4 + 1 = 11), so "same" must refuse it.
        let _ = Conv2dSpec::same(4);
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn same_dilated_rejects_even_kernel() {
        let _ = Conv2dSpec::same_dilated(2, 3);
    }

    #[test]
    fn odd_same_specs_preserve_extent() {
        for k in [1, 3, 5, 7, 9] {
            assert_eq!(Conv2dSpec::same(k).out_extent(17, k), 17, "kernel {k}");
        }
        for d in [1, 2, 3] {
            assert_eq!(
                Conv2dSpec::same_dilated(3, d).out_extent(17, 3),
                17,
                "dilation {d}"
            );
        }
    }

    #[test]
    fn max_pool_backward_rejects_bad_input_dims() {
        let x = rand_tensor(&[1, 2, 4, 4], 71);
        let out = max_pool2d(&x, 2, 2).unwrap();
        let dy = Tensor::ones(&[1, 2, 2, 2]);
        // Short slice (rank ≠ 4).
        assert!(matches!(
            max_pool2d_backward(&[1, 2, 4], &out, &dy),
            Err(TensorError::InvalidShape { .. })
        ));
        // Batch/channel mismatch with the pooled tensor.
        assert!(matches!(
            max_pool2d_backward(&[2, 2, 4, 4], &out, &dy),
            Err(TensorError::InvalidShape { .. })
        ));
        // Input plane smaller than the pooled output.
        assert!(matches!(
            max_pool2d_backward(&[1, 2, 1, 1], &out, &dy),
            Err(TensorError::InvalidShape { .. })
        ));
        // Argmax indices outside the claimed (smaller but ≥ pooled) plane.
        assert!(matches!(
            max_pool2d_backward(&[1, 2, 3, 3], &out, &dy),
            Err(TensorError::InvalidShape { .. })
        ));
        // Corrupted argmax length.
        let mut truncated = out.clone();
        truncated.argmax.pop();
        assert!(matches!(
            max_pool2d_backward(&[1, 2, 4, 4], &truncated, &dy),
            Err(TensorError::InvalidShape { .. })
        ));
        // The valid call still works.
        assert!(max_pool2d_backward(&[1, 2, 4, 4], &out, &dy).is_ok());
    }

    #[test]
    fn backward_handles_zero_channel_input() {
        // Regression: a zero-channel input (dx has zero elements) must
        // produce empty dx/dw and a well-defined db, not a chunking panic.
        let x = Tensor::zeros(&[1, 0, 4, 4]);
        let w = Tensor::zeros(&[2, 0, 3, 3]);
        let y = conv2d(&x, &w, None, Conv2dSpec::default()).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 2, 2]);
        let dy = Tensor::ones(&[1, 2, 2, 2]);
        let grads = conv2d_backward(&x, &w, &dy, Conv2dSpec::default()).unwrap();
        assert_eq!(grads.dx.numel(), 0);
        assert_eq!(grads.dw.numel(), 0);
        assert_eq!(grads.db.data(), &[4.0, 4.0]);
    }

    #[test]
    fn parallel_conv2d_is_bit_identical_to_serial() {
        use crate::parallel::Parallelism;
        let spec = Conv2dSpec {
            stride: 2,
            padding: 2,
            dilation: 1,
        };
        // Large enough that the per-item work clears the spawn threshold,
        // so the multi-thread runs genuinely take the parallel path.
        let x = rand_tensor(&[7, 8, 21, 19], 81);
        let w = rand_tensor(&[16, 8, 5, 5], 82);
        let b = rand_tensor(&[16], 83);
        let serial = conv2d_with(&x, &w, Some(&b), spec, Parallelism::serial()).unwrap();
        for threads in [2, 4, 16] {
            let par = conv2d_with(&x, &w, Some(&b), spec, Parallelism::new(threads)).unwrap();
            assert_eq!(par, serial, "{threads} threads");
        }
    }

    #[test]
    fn parallel_conv2d_backward_is_bit_identical_to_serial() {
        use crate::parallel::Parallelism;
        let spec = Conv2dSpec::same(3);
        let x = rand_tensor(&[5, 6, 14, 14], 91);
        let w = rand_tensor(&[8, 6, 3, 3], 92);
        let y = conv2d(&x, &w, None, spec).unwrap();
        let g = rand_tensor(y.shape().dims(), 93);
        let serial = conv2d_backward_with(&x, &w, &g, spec, Parallelism::serial()).unwrap();
        for threads in [2, 3, 8] {
            let par = conv2d_backward_with(&x, &w, &g, spec, Parallelism::new(threads)).unwrap();
            assert_eq!(par.dx, serial.dx, "{threads} threads dx");
            assert_eq!(par.dw, serial.dw, "{threads} threads dw");
            assert_eq!(par.db, serial.db, "{threads} threads db");
        }
    }
}
