//! Dependency-free scoped parallel execution.
//!
//! The workspace is forbidden from pulling runtime dependencies, so this
//! module implements the small slice of a data-parallel runtime the
//! kernels and the federated round loop need on top of
//! [`std::thread::scope`]: fork worker threads for one bounded batch of
//! work, join them before returning. There is no persistent pool or work
//! registry — every call owns its threads for its own lifetime, which
//! keeps the module trivially correct under nested use. Nested use is
//! also budget-safe: on worker threads the [`global`] default degrades
//! to serial, so an outer fan-out (e.g. the federated round loop) never
//! multiplies into `threads²` kernel workers.
//!
//! # Determinism contract
//!
//! Every helper here guarantees **bit-identical results for any thread
//! count**, including 1. The rules that make this hold:
//!
//! - work items are independent: item `i` reads shared inputs and writes
//!   only its own output slot (or disjoint chunk),
//! - per-item floating-point evaluation is the same code path whether it
//!   runs inline or on a worker,
//! - reductions are never performed concurrently — callers combine
//!   per-item partial results on their own thread, in item order.
//!
//! `tests/determinism.rs` and the workspace property tests pin this
//! contract down for the federated pipeline end to end.
//!
//! # Example
//!
//! ```
//! use rte_tensor::parallel::{map_with, Parallelism};
//!
//! let squares = map_with(
//!     Parallelism::new(4),
//!     &[1, 2, 3, 4, 5],
//!     || (),              // per-worker scratch state (none here)
//!     |(), _i, &x| x * x, // runs on a worker thread
//! );
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many threads a parallel region may use.
///
/// `threads == 0` means "ask the OS" ([`std::thread::available_parallelism`]);
/// any other value is used as-is. The value is a *cap*: regions never spawn
/// more workers than they have work items.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    /// Worker-thread cap. `0` resolves to the machine's available
    /// parallelism at use time.
    pub threads: usize,
}

impl Default for Parallelism {
    /// Defaults to automatic thread count (`threads == 0`).
    fn default() -> Self {
        Parallelism::auto()
    }
}

impl Parallelism {
    /// Exactly `threads` workers (`0` = automatic).
    pub const fn new(threads: usize) -> Self {
        Parallelism { threads }
    }

    /// Single-threaded execution (runs inline, never spawns).
    pub const fn serial() -> Self {
        Parallelism { threads: 1 }
    }

    /// Use all available hardware parallelism.
    pub const fn auto() -> Self {
        Parallelism { threads: 0 }
    }

    /// Reads the `RTE_THREADS` environment variable (the workspace-wide
    /// thread knob, also honored by CI): unset or empty means
    /// [`Parallelism::auto`].
    ///
    /// # Panics
    ///
    /// Panics on an unparsable value (e.g. `RTE_THREADS=four`). An
    /// explicit knob that cannot be honored must fail loudly, not
    /// silently fall back to a different thread count — the same policy
    /// [`crate::simd::SimdBackend::from_env`] applies to `RTE_SIMD`.
    pub fn from_env() -> Self {
        match crate::knobs::raw("RTE_THREADS") {
            Some(v) => Self::parse(&v),
            None => Parallelism::auto(),
        }
    }

    /// [`Parallelism::from_env`]'s parsing rule, factored out for tests:
    /// empty means auto, otherwise a non-negative integer (`0` = auto).
    ///
    /// # Panics
    ///
    /// See [`Parallelism::from_env`].
    pub fn parse(value: &str) -> Self {
        let v = value.trim();
        if v.is_empty() {
            return Parallelism::auto();
        }
        match v.parse::<usize>() {
            Ok(n) => Parallelism::new(n),
            Err(_) => panic!(
                "RTE_THREADS={v:?} is not a valid thread count; accepted values: \
                 a non-negative integer (0 = all cores) or unset/empty for auto"
            ),
        }
    }

    /// The concrete thread count this configuration resolves to (≥ 1).
    pub fn resolve(self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Worker count for `jobs` work items: the resolved thread count,
    /// never more than the number of jobs, never less than 1.
    pub fn workers_for(self, jobs: usize) -> usize {
        self.resolve().min(jobs).max(1)
    }
}

/// Process-wide default used by kernels whose public signatures predate
/// the parallel subsystem (e.g. [`crate::conv::conv2d`]). Stored as the
/// raw `threads` value; the sentinel means "not yet initialized", in
/// which case the first [`global`] read resolves it from `RTE_THREADS`
/// (unset = auto) — so the environment knob governs both the federated
/// round loop and the kernels, exactly as the README documents.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(GLOBAL_UNSET);

/// Sentinel for "read `RTE_THREADS` on first use".
const GLOBAL_UNSET: usize = usize::MAX;

std::thread_local! {
    /// Worker threads spawned by this module force nested global-default
    /// regions to serial (see [`global`]): an outer fan-out already owns
    /// the thread budget, so inner kernels spawning `threads²` workers
    /// would only add churn. Explicit `_with` calls are unaffected.
    static NESTED_SERIAL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Sets the process-wide default [`Parallelism`] for kernels that are not
/// called through an explicit `_with` variant.
///
/// Results are bit-identical for every setting; this knob only trades
/// wall-clock for threads.
pub fn set_global(par: Parallelism) {
    GLOBAL_THREADS.store(par.threads, Ordering::Relaxed);
}

/// The current default [`Parallelism`] for this thread: serial on worker
/// threads spawned by this module (no oversubscription from nesting),
/// otherwise the [`set_global`] process default — initialized from
/// `RTE_THREADS` (unset = auto) on first use.
pub fn global() -> Parallelism {
    if NESTED_SERIAL.with(|flag| flag.get()) {
        return Parallelism::serial();
    }
    let raw = GLOBAL_THREADS.load(Ordering::Relaxed);
    if raw == GLOBAL_UNSET {
        let par = Parallelism::from_env();
        // Benign race: concurrent first readers compute the same value.
        GLOBAL_THREADS.store(par.threads, Ordering::Relaxed);
        return par;
    }
    Parallelism::new(raw)
}

/// Maps `f` over `items` on up to `par` worker threads, returning results
/// **in item order** regardless of scheduling.
///
/// `init` builds one scratch state per worker *on that worker's thread*
/// (so the state type does not need to be `Send`); `f` receives the
/// worker's state, the item index and the item. Items are handed out
/// dynamically (atomic cursor), so uneven item costs still balance.
///
/// With one worker (or ≤ 1 item) everything runs inline on the caller's
/// thread — same code path, no spawn.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn map_with<T, R, S, I, F>(par: Parallelism, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let workers = par.workers_for(items.len());
    if workers <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (cursor, init, f) = (&cursor, &init, &f);
            handles.push(scope.spawn(move || {
                NESTED_SERIAL.with(|flag| flag.set(true));
                let mut state = init();
                let mut produced: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    produced.push((i, f(&mut state, i, &items[i])));
                }
                produced
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(produced) => {
                    for (i, r) in produced {
                        slots[i] = Some(r);
                    }
                }
                // Re-raise the worker's own panic payload so the original
                // assertion message reaches the caller.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every item is claimed exactly once"))
        .collect()
}

/// Splits `data` into consecutive `chunk_len` pieces and runs `f` on each,
/// distributing chunks across up to `par` worker threads.
///
/// Chunk `i` covers `data[i*chunk_len .. (i+1)*chunk_len]`; chunks are
/// disjoint, so workers write concurrently without synchronization. `init`
/// builds per-worker scratch (e.g. an im2col buffer) on the worker thread.
/// Assignment is static (round-robin by chunk index), which is ideal for
/// the uniform per-chunk cost of batched kernels.
///
/// # Panics
///
/// Panics if `chunk_len` is zero or does not divide `data.len()`;
/// propagates worker panics.
pub fn for_each_chunk_mut<T, S, I, F>(
    par: Parallelism,
    data: &mut [T],
    chunk_len: usize,
    init: I,
    f: F,
) where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "for_each_chunk_mut: zero chunk length");
    assert_eq!(
        data.len() % chunk_len,
        0,
        "for_each_chunk_mut: data length {} not a multiple of chunk length {chunk_len}",
        data.len()
    );
    let n_chunks = data.len() / chunk_len;
    let workers = par.workers_for(n_chunks);
    if workers <= 1 {
        let mut state = init();
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(&mut state, i, chunk);
        }
        return;
    }
    let mut buckets: Vec<Vec<(usize, &mut [T])>> = Vec::with_capacity(workers);
    buckets.resize_with(workers, Vec::new);
    for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
        buckets[i % workers].push((i, chunk));
    }
    std::thread::scope(|scope| {
        for bucket in buckets {
            let (init, f) = (&init, &f);
            scope.spawn(move || {
                NESTED_SERIAL.with(|flag| flag.set(true));
                let mut state = init();
                for (i, chunk) in bucket {
                    f(&mut state, i, chunk);
                }
            });
        }
        // The scope's implicit joins re-raise worker panics with their
        // original payloads.
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_and_workers() {
        assert_eq!(Parallelism::serial().resolve(), 1);
        assert_eq!(Parallelism::new(3).resolve(), 3);
        assert!(Parallelism::auto().resolve() >= 1);
        assert_eq!(Parallelism::new(8).workers_for(3), 3);
        assert_eq!(Parallelism::new(2).workers_for(100), 2);
        assert_eq!(Parallelism::new(4).workers_for(0), 1);
    }

    #[test]
    fn map_with_preserves_item_order() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 4, 7] {
            let out = map_with(
                Parallelism::new(threads),
                &items,
                || (),
                |(), i, &x| {
                    assert_eq!(i, x);
                    x * 2
                },
            );
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_with_worker_state_is_reused() {
        // Each worker counts how many items it saw; the counts must sum to
        // the item count no matter how work was stolen.
        use std::sync::Mutex;
        let totals = Mutex::new(Vec::new());
        let items = [0u8; 50];
        map_with(
            Parallelism::new(4),
            &items,
            || 0usize,
            |seen, _, _| {
                *seen += 1;
                *seen
            },
        )
        .into_iter()
        .for_each(|c| totals.lock().unwrap().push(c));
        // `c` is the per-worker running count at the time each item ran;
        // the number of items is what must be conserved.
        assert_eq!(totals.lock().unwrap().len(), 50);
    }

    #[test]
    fn chunks_cover_all_data_once() {
        let mut data = vec![0u32; 60];
        for threads in [1, 3, 8] {
            data.iter_mut().for_each(|x| *x = 0);
            for_each_chunk_mut(
                Parallelism::new(threads),
                &mut data,
                5,
                || (),
                |(), i, chunk| {
                    for v in chunk.iter_mut() {
                        *v += 1 + i as u32;
                    }
                },
            );
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(v, 1 + (i / 5) as u32, "index {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_chunks_rejected() {
        let mut data = vec![0u32; 7];
        for_each_chunk_mut(Parallelism::serial(), &mut data, 2, || (), |(), _, _| {});
    }

    #[test]
    fn global_default_round_trips() {
        let before = global();
        set_global(Parallelism::new(3));
        assert_eq!(global(), Parallelism::new(3));
        set_global(before);
    }

    #[test]
    fn nested_regions_degrade_to_serial_on_workers() {
        // On a worker thread the global default must read as serial, so a
        // kernel called from inside a fan-out cannot oversubscribe.
        let items = [(); 8];
        let seen = map_with(
            Parallelism::new(4),
            &items,
            || (),
            |(), _, _| global().resolve(),
        );
        assert!(seen.iter().all(|&t| t == 1), "{seen:?}");
        // Back on the caller's thread, the nested-serial flag is unset
        // (other tests mutate the process default concurrently, so only
        // the flag itself can be asserted race-free).
        assert!(!NESTED_SERIAL.with(|flag| flag.get()));
    }

    #[test]
    fn parse_accepts_integers_and_empty() {
        assert_eq!(Parallelism::parse("4"), Parallelism::new(4));
        assert_eq!(Parallelism::parse(" 2 "), Parallelism::new(2));
        assert_eq!(Parallelism::parse("0"), Parallelism::auto());
        assert_eq!(Parallelism::parse(""), Parallelism::auto());
        assert_eq!(Parallelism::parse("  "), Parallelism::auto());
    }

    #[test]
    #[should_panic(expected = "accepted values")]
    fn parse_rejects_garbage_loudly() {
        let _ = Parallelism::parse("four");
    }

    #[test]
    fn worker_panics_keep_their_payload() {
        let items: Vec<usize> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            map_with(
                Parallelism::new(4),
                &items,
                || (),
                |(), _, &x| {
                    assert!(x < 3, "item {x} out of range");
                    x
                },
            )
        })
        .expect_err("must panic");
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("out of range"), "payload lost: {msg:?}");
    }
}
