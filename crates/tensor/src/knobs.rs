//! The single sanctioned environment-read site of the workspace.
//!
//! Every runtime knob (`RTE_THREADS`, `RTE_SIMD`, `RTE_BENCH_JSON`, …)
//! is read through [`raw`] and then handed to a *strict* parser that
//! fails loudly on unrecognized values with the accepted-values list —
//! never a silent fallback, because a knob the operator set and the
//! program ignored is a determinism bug waiting to be misdiagnosed.
//!
//! `rte-lint` rule L3 enforces the discipline mechanically: a raw
//! `std::env::var` anywhere else in library code is a hard CI failure,
//! so the full knob surface stays auditable from this one file.
//!
//! # Knob registry
//!
//! | variable | parser | accepted values |
//! |----------|--------|-----------------|
//! | `RTE_THREADS` | [`crate::parallel::Parallelism::parse`] | non-negative integer; empty/`0` = auto |
//! | `RTE_SIMD` | [`crate::simd::SimdBackend::parse`] | `auto`, `scalar`, `avx2`; empty = auto |
//! | `RTE_BENCH_JSON` | used verbatim (a path) | any path; empty = default location |

/// Reads one environment variable, treating *unset* and *set-but-empty*
/// identically as `None`.
///
/// This is the only raw environment read the determinism lints permit
/// (`rte-lint` L3). Callers must route the returned string through a
/// strict parser that panics on unrecognized values — see the knob
/// registry in the module docs.
pub fn raw(name: &str) -> Option<String> {
    match std::env::var(name) {
        Ok(v) if !v.trim().is_empty() => Some(v),
        _ => None,
    }
}
