//! Dense matrix multiplication primitives.
//!
//! The convolution kernels in [`crate::conv`] lower to these routines via
//! im2col. All routines operate on row-major slices so they can run on
//! scratch buffers without allocating.
//!
//! The production kernels are register-blocked: they process `MR` output
//! rows (or columns) per pass so every loaded element of the shared
//! operand is reused `MR` times from registers, giving the compiler `MR`
//! independent accumulation streams to vectorize. Per output element the
//! accumulation order over `k` is unchanged from the scalar reference
//! kernels, so results are bit-identical to [`matmul_naive`] — with one
//! deliberate exception: the old kernels skipped `a == 0.0` terms, which
//! silently swallowed IEEE `0 × inf = NaN` propagation. The blocked
//! kernels never skip terms, so non-finite inputs poison the output as
//! IEEE 754 requires.

/// Rows (columns for [`matmul_nt_acc`]) processed per register block.
const MR: usize = 4;

/// Splits `rows` (length `MR * n`) into `MR` disjoint row slices.
fn split_rows(rows: &mut [f32], n: usize) -> [&mut [f32]; MR] {
    let (r0, rest) = rows.split_at_mut(n);
    let (r1, rest) = rest.split_at_mut(n);
    let (r2, r3) = rest.split_at_mut(n);
    [r0, r1, r2, r3]
}

/// k-panel depth: a `KC × n` panel of `B` (≤ ~300 KB for conv-shaped `n`)
/// stays cache-resident while every row block of the output sweeps it.
const KC: usize = 128;

/// `out = A @ B` where `A` is `m×k`, `B` is `k×n`, `out` is `m×n`.
///
/// Accumulates in `f32` with a k-inner loop ordered for cache locality
/// (i-k-j), blocked over `MR` output rows and tiled over `KC`-deep
/// k-panels so `B` is streamed from cache rather than memory. Per output
/// element the `p` accumulation order is still strictly ascending, so the
/// result is bit-identical to [`matmul_naive`].
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the given dimensions.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "matmul: lhs length");
    assert_eq!(b.len(), k * n, "matmul: rhs length");
    assert_eq!(out.len(), m * n, "matmul: out length");
    out.iter_mut().for_each(|x| *x = 0.0);
    let mut p0 = 0;
    while p0 < k {
        let p1 = (p0 + KC).min(k);
        let mut i = 0;
        while i + MR <= m {
            let [r0, r1, r2, r3] = split_rows(&mut out[i * n..(i + MR) * n], n);
            for p in p0..p1 {
                let a0 = a[i * k + p];
                let a1 = a[(i + 1) * k + p];
                let a2 = a[(i + 2) * k + p];
                let a3 = a[(i + 3) * k + p];
                let b_row = &b[p * n..(p + 1) * n];
                for (j, &bv) in b_row.iter().enumerate() {
                    r0[j] += a0 * bv;
                    r1[j] += a1 * bv;
                    r2[j] += a2 * bv;
                    r3[j] += a3 * bv;
                }
            }
            i += MR;
        }
        for i in i..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for p in p0..p1 {
                let a_ip = a_row[p];
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ip * b_pj;
                }
            }
        }
        p0 = p1;
    }
}

/// Scalar i-k-j reference kernel: the pre-blocking implementation, kept
/// for correctness cross-checks and as the baseline in the kernel
/// benchmarks (`cargo bench -p rte-bench --bench kernels`).
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the given dimensions.
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "matmul_naive: lhs length");
    assert_eq!(b.len(), k * n, "matmul_naive: rhs length");
    assert_eq!(out.len(), m * n, "matmul_naive: out length");
    out.iter_mut().for_each(|x| *x = 0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// `out = Aᵀ @ B` where `A` is `k×m` (so `Aᵀ` is `m×k`), `B` is `k×n`.
///
/// Blocked over `MR` output rows; the `MR` lhs elements per step are
/// contiguous in `A`'s row-major storage (`a[p*m + i ..]`), so the block
/// load is a single cache line.
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the given dimensions.
pub fn matmul_tn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), k * m, "matmul_tn: lhs length");
    assert_eq!(b.len(), k * n, "matmul_tn: rhs length");
    assert_eq!(out.len(), m * n, "matmul_tn: out length");
    out.iter_mut().for_each(|x| *x = 0.0);
    let mut i = 0;
    while i + MR <= m {
        let [r0, r1, r2, r3] = split_rows(&mut out[i * n..(i + MR) * n], n);
        for p in 0..k {
            let ap = &a[p * m + i..p * m + i + MR];
            let (a0, a1, a2, a3) = (ap[0], ap[1], ap[2], ap[3]);
            let b_row = &b[p * n..(p + 1) * n];
            for (j, &bv) in b_row.iter().enumerate() {
                r0[j] += a0 * bv;
                r1[j] += a1 * bv;
                r2[j] += a2 * bv;
                r3[j] += a3 * bv;
            }
        }
        i += MR;
    }
    if i < m {
        for p in 0..k {
            let b_row = &b[p * n..(p + 1) * n];
            for ii in i..m {
                let a_pi = a[p * m + ii];
                let out_row = &mut out[ii * n..(ii + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_pi * b_pj;
                }
            }
        }
    }
}

/// `out += A @ Bᵀ` where `A` is `m×k`, `B` is `n×k` (so `Bᵀ` is `k×n`).
///
/// Accumulating (`+=`) because the convolution weight gradient sums over the
/// batch; zero `out` first when a plain product is needed.
///
/// Blocked over `MR` output columns: each pass runs `MR` independent dot
/// products that share every load of the `A` row, giving the out-of-order
/// core `MR` parallel accumulation chains.
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the given dimensions.
pub fn matmul_nt_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "matmul_nt_acc: lhs length");
    assert_eq!(b.len(), n * k, "matmul_nt_acc: rhs length");
    assert_eq!(out.len(), m * n, "matmul_nt_acc: out length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + MR <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for p in 0..k {
                let x = a_row[p];
                s0 += x * b0[p];
                s1 += x * b1[p];
                s2 += x * b2[p];
                s3 += x * b3[p];
            }
            out_row[j] += s0;
            out_row[j + 1] += s1;
            out_row[j + 2] += s2;
            out_row[j + 3] += s3;
            j += MR;
        }
        for j in j..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            out_row[j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn matmul_small() {
        // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0; 4];
        matmul(&a, &b, 2, 2, 2, &mut out);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        // (1x3) @ (3x2)
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut out = [0.0; 2];
        matmul(&a, &b, 1, 3, 2, &mut out);
        assert_eq!(out, [4.0, 5.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        // A is k×m = 3×2; compute Aᵀ@B with B k×n = 3×2.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // rows: [1 2],[3 4],[5 6]
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let mut got = [0.0; 4];
        matmul_tn(&a, &b, 2, 3, 2, &mut got);
        // Aᵀ = [1 3 5; 2 4 6]
        let at = [1.0, 3.0, 5.0, 2.0, 4.0, 6.0];
        let mut want = [0.0; 4];
        matmul(&at, &b, 2, 3, 2, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn matmul_nt_acc_matches_and_accumulates() {
        // A m×k = 2×3, B n×k = 2×3 → A@Bᵀ is 2×2.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.0, 1.0, 1.0, 0.0, 1.0, 0.0];
        let mut out = [10.0, 0.0, 0.0, 0.0];
        matmul_nt_acc(&a, &b, 2, 3, 2, &mut out);
        // A@Bᵀ = [[6, 2], [15, 5]]; first entry accumulates onto 10.
        assert_eq!(out, [16.0, 2.0, 15.0, 5.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = [3.0, -1.0, 0.5, 2.0];
        let eye = [1.0, 0.0, 0.0, 1.0];
        let mut out = [0.0; 4];
        matmul(&a, &eye, 2, 2, 2, &mut out);
        assert_eq!(out, a);
    }

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = Xoshiro256::seed_from(seed);
        (0..len).map(|_| rng.normal()).collect()
    }

    /// The blocked kernels preserve the per-element accumulation order of
    /// the scalar reference kernel, so all shapes — including remainder
    /// rows/columns when the dimension is not a multiple of the block —
    /// must agree bit for bit.
    #[test]
    fn blocked_kernels_match_reference_bitwise() {
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 2),
            (4, 7, 9),
            (5, 3, 6),
            (9, 4, 13),
            (8, 8, 8),
        ] {
            let a = rand_vec(m * k, 1000 + (m * k * n) as u64);
            let b = rand_vec(k * n, 2000 + (m + k + n) as u64);
            let mut want = vec![0.0f32; m * n];
            matmul_naive(&a, &b, m, k, n, &mut want);
            let mut got = vec![0.0f32; m * n];
            matmul(&a, &b, m, k, n, &mut got);
            assert_eq!(got, want, "matmul {m}x{k}x{n}");

            // matmul_tn: build Aᵀ explicitly, compare against reference.
            let at = rand_vec(k * m, 3000 + (m * n) as u64); // stored k×m
            let mut a_rowmajor = vec![0.0f32; m * k]; // m×k
            for p in 0..k {
                for i in 0..m {
                    a_rowmajor[i * k + p] = at[p * m + i];
                }
            }
            let mut want_tn = vec![0.0f32; m * n];
            matmul_naive(&a_rowmajor, &b, m, k, n, &mut want_tn);
            let mut got_tn = vec![0.0f32; m * n];
            matmul_tn(&at, &b, m, k, n, &mut got_tn);
            assert_eq!(got_tn, want_tn, "matmul_tn {m}x{k}x{n}");

            // matmul_nt_acc against a transpose-then-reference product.
            let bt = rand_vec(n * k, 4000 + (k * n) as u64); // stored n×k
            let mut b_kn = vec![0.0f32; k * n];
            for j in 0..n {
                for p in 0..k {
                    b_kn[p * n + j] = bt[j * k + p];
                }
            }
            let mut want_nt = vec![0.0f32; m * n];
            matmul_naive(&a, &b_kn, m, k, n, &mut want_nt);
            let mut got_nt = vec![0.0f32; m * n];
            matmul_nt_acc(&a, &bt, m, k, n, &mut got_nt);
            for (g, w) in got_nt.iter().zip(want_nt.iter()) {
                // Dot-product accumulation differs in rounding from the
                // i-k-j reference, so compare numerically here.
                assert!((g - w).abs() <= 1e-4 * (1.0 + w.abs()), "{g} vs {w}");
            }
        }
    }

    /// Regression for the zero-skip bug: `0 × NaN` and `0 × inf` must
    /// poison the product (IEEE 754), not be silently skipped.
    #[test]
    fn zero_times_nonfinite_propagates() {
        // A = [0 1], B = [[NaN], [2]]: out = 0·NaN + 1·2 = NaN.
        let a = [0.0f32, 1.0];
        let b = [f32::NAN, 2.0];
        let mut out = [0.0f32; 1];
        matmul(&a, &b, 1, 2, 1, &mut out);
        assert!(out[0].is_nan(), "matmul swallowed 0×NaN: {}", out[0]);

        // Same structure for Aᵀ: A is k×m = 2×1 with a zero in row 0.
        let a_t = [0.0f32, 1.0];
        let b2 = [f32::INFINITY, 2.0];
        let mut out_tn = [0.0f32; 1];
        matmul_tn(&a_t, &b2, 1, 2, 1, &mut out_tn);
        assert!(
            out_tn[0].is_nan(),
            "matmul_tn swallowed 0×inf: {}",
            out_tn[0]
        );

        // And a blocked-path (m ≥ MR) case: every row sees the NaN column.
        let m = 5;
        let a_blk: Vec<f32> = (0..m * 2)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let b_blk = [f32::NAN, 3.0];
        let mut out_blk = vec![0.0f32; m];
        matmul(&a_blk, &b_blk, m, 2, 1, &mut out_blk);
        assert!(out_blk.iter().all(|v| v.is_nan()), "{out_blk:?}");
    }
}
