//! Dense matrix multiplication primitives.
//!
//! The convolution kernels in [`crate::conv`] lower to these routines via
//! im2col. All routines operate on row-major slices so they can run on
//! scratch buffers without allocating.
//!
//! Since the SIMD backend landed, the production entry points here are
//! thin dispatchers over [`crate::simd`]: the process-global
//! [`SimdBackend`](crate::simd::SimdBackend) (env knob `RTE_SIMD`)
//! selects between a packed AVX2 micro-kernel GEMM and a blocked,
//! bounds-check-free scalar arm. The arms are **bit-identical** — see
//! the lane-ordered reduction contract in [`crate::simd`]:
//!
//! - [`matmul`] / [`matmul_tn`] accumulate each output element over `k`
//!   in strictly ascending order on every arm, so results match the
//!   scalar reference [`matmul_naive`] bit for bit — with one deliberate
//!   historical exception carried over from the register-blocking PR:
//!   no kernel skips `a == 0.0` terms, so IEEE `0 × inf = NaN`
//!   propagation is preserved.
//! - [`matmul_nt_acc`] computes each output element as an 8-lane
//!   virtual-SIMD dot product (lane `i % 8`, fixed
//!   [`reduce8`](crate::simd::reduce8) tree) — the same order on every
//!   arm, chosen so the vector arm can keep the lanes in registers.
//!
//! [`matmul_naive`] remains the untouched scalar i-k-j reference and the
//! baseline of the kernel benchmarks.

use crate::simd;

/// `out = A @ B` where `A` is `m×k`, `B` is `k×n`, `out` is `m×n`.
///
/// Dispatches to the process-global [`crate::simd`] arm. Per output
/// element the `k` accumulation order is strictly ascending on every
/// arm, so the result is bit-identical to [`matmul_naive`] (and across
/// arms, thread counts and machines).
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the given dimensions.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    simd::matmul(a, b, m, k, n, out);
}

/// Scalar i-k-j reference kernel: the original pre-blocking
/// implementation, kept for correctness cross-checks and as the baseline
/// in the kernel benchmarks (`cargo bench -p rte-bench --bench kernels`).
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the given dimensions.
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "matmul_naive: lhs length");
    assert_eq!(b.len(), k * n, "matmul_naive: rhs length");
    assert_eq!(out.len(), m * n, "matmul_naive: out length");
    out.iter_mut().for_each(|x| *x = 0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// `out = Aᵀ @ B` where `A` is `k×m` (so `Aᵀ` is `m×k`), `B` is `k×n`.
///
/// Dispatches to the process-global [`crate::simd`] arm; same
/// ascending-`k` per-element accumulation order as [`matmul`].
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the given dimensions.
pub fn matmul_tn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    simd::matmul_tn(a, b, m, k, n, out);
}

/// `out += A @ Bᵀ` where `A` is `m×k`, `B` is `n×k` (so `Bᵀ` is `k×n`).
///
/// Accumulating (`+=`) because the convolution weight gradient sums over
/// the batch; zero `out` first when a plain product is needed.
///
/// Dispatches to the process-global [`crate::simd`] arm. Each output
/// element is an 8-lane virtual-SIMD dot product over `k` with the fixed
/// [`reduce8`](crate::simd::reduce8) lane tree — identical on every arm.
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the given dimensions.
pub fn matmul_nt_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    simd::matmul_nt_acc(a, b, m, k, n, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn matmul_small() {
        // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0; 4];
        matmul(&a, &b, 2, 2, 2, &mut out);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        // (1x3) @ (3x2)
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut out = [0.0; 2];
        matmul(&a, &b, 1, 3, 2, &mut out);
        assert_eq!(out, [4.0, 5.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        // A is k×m = 3×2; compute Aᵀ@B with B k×n = 3×2.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // rows: [1 2],[3 4],[5 6]
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let mut got = [0.0; 4];
        matmul_tn(&a, &b, 2, 3, 2, &mut got);
        // Aᵀ = [1 3 5; 2 4 6]
        let at = [1.0, 3.0, 5.0, 2.0, 4.0, 6.0];
        let mut want = [0.0; 4];
        matmul(&at, &b, 2, 3, 2, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn matmul_nt_acc_matches_and_accumulates() {
        // A m×k = 2×3, B n×k = 2×3 → A@Bᵀ is 2×2.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.0, 1.0, 1.0, 0.0, 1.0, 0.0];
        let mut out = [10.0, 0.0, 0.0, 0.0];
        matmul_nt_acc(&a, &b, 2, 3, 2, &mut out);
        // A@Bᵀ = [[6, 2], [15, 5]]; first entry accumulates onto 10.
        assert_eq!(out, [16.0, 2.0, 15.0, 5.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = [3.0, -1.0, 0.5, 2.0];
        let eye = [1.0, 0.0, 0.0, 1.0];
        let mut out = [0.0; 4];
        matmul(&a, &eye, 2, 2, 2, &mut out);
        assert_eq!(out, a);
    }

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = Xoshiro256::seed_from(seed);
        (0..len).map(|_| rng.normal()).collect()
    }

    /// The dispatched kernels preserve the per-element accumulation
    /// order of the scalar reference kernel, so all shapes — including
    /// remainder rows/columns when the dimension is not a multiple of
    /// the register block — must agree bit for bit.
    #[test]
    fn dispatched_kernels_match_reference_bitwise() {
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 2),
            (4, 7, 9),
            (5, 3, 6),
            (9, 4, 13),
            (8, 8, 8),
            (17, 40, 23),
        ] {
            let a = rand_vec(m * k, 1000 + (m * k * n) as u64);
            let b = rand_vec(k * n, 2000 + (m + k + n) as u64);
            let mut want = vec![0.0f32; m * n];
            matmul_naive(&a, &b, m, k, n, &mut want);
            let mut got = vec![0.0f32; m * n];
            matmul(&a, &b, m, k, n, &mut got);
            assert_eq!(got, want, "matmul {m}x{k}x{n}");

            // matmul_tn: build Aᵀ explicitly, compare against reference.
            let at = rand_vec(k * m, 3000 + (m * n) as u64); // stored k×m
            let mut a_rowmajor = vec![0.0f32; m * k]; // m×k
            for p in 0..k {
                for i in 0..m {
                    a_rowmajor[i * k + p] = at[p * m + i];
                }
            }
            let mut want_tn = vec![0.0f32; m * n];
            matmul_naive(&a_rowmajor, &b, m, k, n, &mut want_tn);
            let mut got_tn = vec![0.0f32; m * n];
            matmul_tn(&at, &b, m, k, n, &mut got_tn);
            assert_eq!(got_tn, want_tn, "matmul_tn {m}x{k}x{n}");

            // matmul_nt_acc against a transpose-then-reference product.
            let bt = rand_vec(n * k, 4000 + (k * n) as u64); // stored n×k
            let mut b_kn = vec![0.0f32; k * n];
            for j in 0..n {
                for p in 0..k {
                    b_kn[p * n + j] = bt[j * k + p];
                }
            }
            let mut want_nt = vec![0.0f32; m * n];
            matmul_naive(&a, &b_kn, m, k, n, &mut want_nt);
            let mut got_nt = vec![0.0f32; m * n];
            matmul_nt_acc(&a, &bt, m, k, n, &mut got_nt);
            for (g, w) in got_nt.iter().zip(want_nt.iter()) {
                // The 8-lane dot-product accumulation differs in
                // rounding from the i-k-j reference, so compare
                // numerically here (cross-arm bit-identity is pinned in
                // crate::simd and tests/simd_determinism.rs).
                assert!((g - w).abs() <= 1e-4 * (1.0 + w.abs()), "{g} vs {w}");
            }
        }
    }

    /// Regression for the zero-skip bug: `0 × NaN` and `0 × inf` must
    /// poison the product (IEEE 754), not be silently skipped.
    #[test]
    fn zero_times_nonfinite_propagates() {
        // A = [0 1], B = [[NaN], [2]]: out = 0·NaN + 1·2 = NaN.
        let a = [0.0f32, 1.0];
        let b = [f32::NAN, 2.0];
        let mut out = [0.0f32; 1];
        matmul(&a, &b, 1, 2, 1, &mut out);
        assert!(out[0].is_nan(), "matmul swallowed 0×NaN: {}", out[0]);

        // Same structure for Aᵀ: A is k×m = 2×1 with a zero in row 0.
        let a_t = [0.0f32, 1.0];
        let b2 = [f32::INFINITY, 2.0];
        let mut out_tn = [0.0f32; 1];
        matmul_tn(&a_t, &b2, 1, 2, 1, &mut out_tn);
        assert!(
            out_tn[0].is_nan(),
            "matmul_tn swallowed 0×inf: {}",
            out_tn[0]
        );

        // And a register-blocked-path (m ≥ 4) case: every row sees the
        // NaN column.
        let m = 5;
        let a_blk: Vec<f32> = (0..m * 2)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let b_blk = [f32::NAN, 3.0];
        let mut out_blk = vec![0.0f32; m];
        matmul(&a_blk, &b_blk, m, 2, 1, &mut out_blk);
        assert!(out_blk.iter().all(|v| v.is_nan()), "{out_blk:?}");
    }
}
