//! Dense matrix multiplication primitives.
//!
//! The convolution kernels in [`crate::conv`] lower to these routines via
//! im2col. All routines operate on row-major slices so they can run on
//! scratch buffers without allocating.

/// `out = A @ B` where `A` is `m×k`, `B` is `k×n`, `out` is `m×n`.
///
/// Accumulates in `f32` with a k-inner loop ordered for cache locality
/// (i-k-j), which also lets the compiler vectorize the innermost loop.
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the given dimensions.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "matmul: lhs length");
    assert_eq!(b.len(), k * n, "matmul: rhs length");
    assert_eq!(out.len(), m * n, "matmul: out length");
    out.iter_mut().for_each(|x| *x = 0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// `out = Aᵀ @ B` where `A` is `k×m` (so `Aᵀ` is `m×k`), `B` is `k×n`.
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the given dimensions.
pub fn matmul_tn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), k * m, "matmul_tn: lhs length");
    assert_eq!(b.len(), k * n, "matmul_tn: rhs length");
    assert_eq!(out.len(), m * n, "matmul_tn: out length");
    out.iter_mut().for_each(|x| *x = 0.0);
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_pi * b_pj;
            }
        }
    }
}

/// `out += A @ Bᵀ` where `A` is `m×k`, `B` is `n×k` (so `Bᵀ` is `k×n`).
///
/// Accumulating (`+=`) because the convolution weight gradient sums over the
/// batch; zero `out` first when a plain product is needed.
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the given dimensions.
pub fn matmul_nt_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "matmul_nt_acc: lhs length");
    assert_eq!(b.len(), n * k, "matmul_nt_acc: rhs length");
    assert_eq!(out.len(), m * n, "matmul_nt_acc: out length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            *o += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0; 4];
        matmul(&a, &b, 2, 2, 2, &mut out);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        // (1x3) @ (3x2)
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut out = [0.0; 2];
        matmul(&a, &b, 1, 3, 2, &mut out);
        assert_eq!(out, [4.0, 5.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        // A is k×m = 3×2; compute Aᵀ@B with B k×n = 3×2.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // rows: [1 2],[3 4],[5 6]
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let mut got = [0.0; 4];
        matmul_tn(&a, &b, 2, 3, 2, &mut got);
        // Aᵀ = [1 3 5; 2 4 6]
        let at = [1.0, 3.0, 5.0, 2.0, 4.0, 6.0];
        let mut want = [0.0; 4];
        matmul(&at, &b, 2, 3, 2, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn matmul_nt_acc_matches_and_accumulates() {
        // A m×k = 2×3, B n×k = 2×3 → A@Bᵀ is 2×2.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.0, 1.0, 1.0, 0.0, 1.0, 0.0];
        let mut out = [10.0, 0.0, 0.0, 0.0];
        matmul_nt_acc(&a, &b, 2, 3, 2, &mut out);
        // A@Bᵀ = [[6, 2], [15, 5]]; first entry accumulates onto 10.
        assert_eq!(out, [16.0, 2.0, 15.0, 5.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = [3.0, -1.0, 0.5, 2.0];
        let eye = [1.0, 0.0, 0.0, 1.0];
        let mut out = [0.0; 4];
        matmul(&a, &eye, 2, 2, 2, &mut out);
        assert_eq!(out, a);
    }
}
