//! Runtime-dispatched SIMD kernel backend with bit-identical,
//! lane-ordered reductions.
//!
//! Every training method in the workspace bottoms out in a handful of
//! `f32` kernels: the im2col matrix products behind [`crate::conv`], and
//! the elementwise activation / optimizer sweeps in `rte-nn`. This module
//! multi-versions those kernels over instruction-set *arms* and picks one
//! at runtime:
//!
//! - **`Avx2`** — x86-64 AVX2 (+FMA availability is required for
//!   detection parity with common deployments, but fused contraction is
//!   deliberately **not** used; see below), 8-lane `f32` vectors,
//! - **`Scalar`** — a portable fallback that *emulates the same 8-lane
//!   schedule* so its results are bit-identical to the vector arm.
//!
//! The arm is chosen once per process from the `RTE_SIMD` environment
//! variable (`auto` | `avx2` | `scalar`, default `auto` =
//! best-available), and can be overridden programmatically with
//! [`set_global`] — the same shape as [`crate::parallel`]'s thread knob.
//! Every kernel also has a `*_with` variant taking an explicit
//! [`SimdBackend`] so tests and benches can pin arms without touching
//! process state.
//!
//! # Determinism contract: the 8-lane virtual SIMD machine
//!
//! The workspace guarantees bit-identical outputs across thread counts;
//! this module extends that guarantee across *instruction sets*. Every
//! arm implements the same **fixed 8-lane virtual-SIMD accumulation
//! order**:
//!
//! 1. **Elementwise maps** (`axpy`, `scale`, SGD/Adam steps, ReLU and
//!    sigmoid forward/backward) evaluate one fixed expression per
//!    element, built only from IEEE-exact operations (`+ - * / sqrt`,
//!    comparisons/selects). Vector lanes are independent, so any
//!    vector width reproduces the scalar expression bit for bit.
//!    **No FMA contraction is ever emitted** — a fused `a*b+c` rounds
//!    once where `mul`+`add` round twice, which would split the arms.
//! 2. **Matrix products** ([`matmul`], [`matmul_tn`]) vectorize over
//!    *output columns*: each output element accumulates its `k`
//!    products in strictly ascending `k` order on every arm (lanes are
//!    distinct outputs, never partial sums of one output). All arms are
//!    therefore bit-identical to the naive i-k-j reference kernel.
//! 3. **Reductions** ([`sum`], [`matmul_nt_acc`]'s dot products)
//!    accumulate into 8 virtual lanes — element `i` goes to lane
//!    `i % 8` in ascending `i` order — and the lanes are combined by
//!    the fixed tree [`reduce8`]: `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`
//!    evaluated as pairwise sums. The scalar arm maintains the 8 lanes
//!    in an array; the vector arm's tail elements reuse the *same
//!    scalar lane code*, so tails cannot diverge by construction.
//! 4. **Transcendentals** (the sigmoid's `exp`) never call libm:
//!    both arms evaluate one shared Cephes-style polynomial
//!    ([`exp_lane`]) with an identical operation sequence, so the
//!    vector arm is a pure 8-wide transcription of the scalar arm.
//!
//! `tests/simd_determinism.rs` pins the contract end to end: every
//! kernel bitwise across arms over randomized shapes, and a full FedProx
//! training run producing a bit-identical `MethodOutcome` per arm.
//!
//! # Safety
//!
//! The workspace denies `unsafe_code`; this module carries a scoped
//! allow because SIMD intrinsics are unsafe to call by design. The
//! invariant that makes every `unsafe` here sound is: **`Avx2` kernels
//! are only reachable through [`SimdBackend::Avx2`], and that variant is
//! only ever constructed after `is_x86_feature_detected!` confirmed
//! AVX2+FMA support** (or by a caller who explicitly forced it, which
//! [`SimdBackend::from_env`] refuses to do on unsupported CPUs).
#![allow(unsafe_code)]

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set arm used by the dispatched kernels.
///
/// All arms produce bit-identical results (see the module docs); the
/// choice only trades wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdBackend {
    /// Portable scalar arm emulating the 8-lane schedule.
    Scalar,
    /// x86-64 AVX2 arm (8-lane `f32`); constructed only after feature
    /// detection (or an explicit, checked override).
    Avx2,
}

impl SimdBackend {
    /// The best arm the running CPU supports.
    pub fn detect() -> SimdBackend {
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        {
            if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
                return SimdBackend::Avx2;
            }
        }
        SimdBackend::Scalar
    }

    /// Resolves the `RTE_SIMD` environment variable: `scalar` and `avx2`
    /// force an arm; `auto`, empty or unset mean [`SimdBackend::detect`].
    ///
    /// # Panics
    ///
    /// Panics when `RTE_SIMD=avx2` is forced on a CPU without AVX2+FMA,
    /// and on any unrecognized value — an explicit request that cannot
    /// be honored must not silently degrade to a different arm, because
    /// the caller asked for a specific arm's wall-clock.
    pub fn from_env() -> SimdBackend {
        match crate::knobs::raw("RTE_SIMD") {
            Some(v) => Self::parse(&v),
            None => SimdBackend::detect(),
        }
    }

    /// [`SimdBackend::from_env`]'s parsing rule, factored out for tests.
    ///
    /// # Panics
    ///
    /// See [`SimdBackend::from_env`].
    pub fn parse(value: &str) -> SimdBackend {
        match value.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => SimdBackend::detect(),
            "scalar" => SimdBackend::Scalar,
            "avx2" => {
                assert!(
                    SimdBackend::detect() == SimdBackend::Avx2,
                    "RTE_SIMD=avx2 requested but this CPU does not support AVX2+FMA"
                );
                SimdBackend::Avx2
            }
            other => panic!(
                "RTE_SIMD={other:?} is not a valid SIMD arm; accepted values: \
                 auto (or unset/empty), scalar, avx2"
            ),
        }
    }

    /// Stable lowercase name (`"scalar"` / `"avx2"`), used by bench
    /// output and `BENCH_kernels.json`.
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Avx2 => "avx2",
        }
    }
}

impl fmt::Display for SimdBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Process-wide arm for kernels dispatched without an explicit
/// `*_with` argument. `0` = not yet resolved from `RTE_SIMD`.
static GLOBAL_BACKEND: AtomicU8 = AtomicU8::new(0);

const BACKEND_SCALAR: u8 = 1;
const BACKEND_AVX2: u8 = 2;

fn encode(backend: SimdBackend) -> u8 {
    match backend {
        SimdBackend::Scalar => BACKEND_SCALAR,
        SimdBackend::Avx2 => BACKEND_AVX2,
    }
}

/// Sets the process-wide [`SimdBackend`] used by all dispatched kernels.
///
/// Results are bit-identical for every arm; this knob only trades
/// wall-clock, exactly like [`crate::parallel::set_global`].
pub fn set_global(backend: SimdBackend) {
    GLOBAL_BACKEND.store(encode(backend), Ordering::Relaxed);
}

/// The current process-wide [`SimdBackend`], resolved from `RTE_SIMD`
/// (unset = auto-detect) on first use.
pub fn global() -> SimdBackend {
    match GLOBAL_BACKEND.load(Ordering::Relaxed) {
        BACKEND_SCALAR => SimdBackend::Scalar,
        BACKEND_AVX2 => SimdBackend::Avx2,
        _ => {
            let backend = SimdBackend::from_env();
            // Benign race: concurrent first readers resolve identically.
            GLOBAL_BACKEND.store(encode(backend), Ordering::Relaxed);
            backend
        }
    }
}

/// Number of virtual lanes every arm schedules around.
pub const LANES: usize = 8;

/// The fixed lane-combination tree shared by every reduction on every
/// arm: `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`, evaluated pairwise.
///
/// This is exactly the shape of an AVX2 horizontal add performed as
/// `low128 + high128`, then two in-register shuffles — so the vector
/// arm can reduce in registers while the scalar arm reduces the array,
/// and both round identically.
#[inline]
pub fn reduce8(lanes: &[f32; LANES]) -> f32 {
    let s0 = lanes[0] + lanes[4];
    let s1 = lanes[1] + lanes[5];
    let s2 = lanes[2] + lanes[6];
    let s3 = lanes[3] + lanes[7];
    (s0 + s2) + (s1 + s3)
}

// ---------------------------------------------------------------------
// Shared per-lane expressions.
//
// Each scalar helper below is THE definition of one kernel's per-element
// arithmetic. The scalar arm loops them; the vector arm transcribes the
// identical operation sequence into 8-wide intrinsics and reuses the
// helper verbatim for non-multiple-of-8 tails.
// ---------------------------------------------------------------------

/// `min` with x86 `vminps` semantics: `if a < b { a } else { b }`
/// (returns `b` when `a` is NaN or both compare equal).
#[inline]
fn min_ps(a: f32, b: f32) -> f32 {
    if a < b {
        a
    } else {
        b
    }
}

/// `max` with x86 `vmaxps` semantics: `if a > b { a } else { b }`.
#[inline]
fn max_ps(a: f32, b: f32) -> f32 {
    if a > b {
        a
    } else {
        b
    }
}

/// Exponent clamp bounds: `exp` saturates to `+inf` above `EXP_HI` and
/// to the smallest normal below `EXP_LO`, keeping the `2^n` scale factor
/// constructible from exponent bits on every arm.
const EXP_HI: f32 = 88.722_84;
const EXP_LO: f32 = -87.336_55;
/// `log2(e)` for the range reduction `x = n·ln2 + r`.
const EXP_LOG2E: f32 = std::f32::consts::LOG2_E;
/// Cody–Waite split of `ln 2` (high part exactly representable).
const EXP_LN2_HI: f32 = 0.693_359_4;
/// Low-order correction of the `ln 2` split.
const EXP_LN2_LO: f32 = -2.121_944_4e-4;
/// `1.5 · 2²³`: adding and subtracting rounds to the nearest integer
/// (ties to even) with plain `+`/`-`, identically on both arms.
const EXP_MAGIC: f32 = 12_582_912.0;
/// Cephes `expf` minimax polynomial, degree 5 → constant term.
const EXP_P0: f32 = 1.987_569_1e-4;
const EXP_P1: f32 = 1.398_2e-3;
const EXP_P2: f32 = 8.333_452e-3;
const EXP_P3: f32 = 4.166_579_6e-2;
const EXP_P4: f32 = 1.666_666_5e-1;
const EXP_P5: f32 = 5.000_000_3e-1;

/// Shared polynomial `expf`: Cephes-style range reduction
/// (`x = n·ln2 + r`, `|r| ≤ ln2/2`), a degree-5 minimax polynomial and
/// an exponent-bit `2^n` scale — every step an IEEE-exact op in a fixed
/// order, so the AVX2 transcription is bit-identical per lane.
///
/// Accuracy is ~2 ulp on the reduced range (ample for the sigmoid);
/// NaN inputs pass through unchanged; out-of-range inputs saturate to
/// `+inf` / the smallest normal instead of libm's gradual underflow.
#[inline]
pub fn exp_lane(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    let xc = max_ps(min_ps(x, EXP_HI), EXP_LO);
    let n = (xc * EXP_LOG2E + EXP_MAGIC) - EXP_MAGIC;
    let r = xc - n * EXP_LN2_HI;
    let r = r - n * EXP_LN2_LO;
    let mut y = EXP_P0;
    y = y * r + EXP_P1;
    y = y * r + EXP_P2;
    y = y * r + EXP_P3;
    y = y * r + EXP_P4;
    y = y * r + EXP_P5;
    let y = ((y * r) * r + r) + 1.0;
    let scale = f32::from_bits((((n as i32) + 127) << 23) as u32);
    y * scale
}

#[inline]
fn axpy_lane(alpha: f32, x: f32, y: f32) -> f32 {
    y + alpha * x
}

#[inline]
fn scale_lane(alpha: f32, x: f32) -> f32 {
    x * alpha
}

#[inline]
fn relu_lane(x: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        0.0
    }
}

#[inline]
fn relu_backward_lane(dy: f32, x: f32) -> f32 {
    if x > 0.0 {
        dy
    } else {
        0.0
    }
}

#[inline]
fn sigmoid_lane(x: f32) -> f32 {
    1.0 / (1.0 + exp_lane(-x))
}

#[inline]
fn sigmoid_backward_lane(dy: f32, y: f32) -> f32 {
    (dy * y) * (1.0 - y)
}

#[inline]
fn sgd_lane(value: f32, grad: f32, lr: f32, wd: f32) -> f32 {
    let g = if wd != 0.0 { grad + wd * value } else { grad };
    value + (-lr) * g
}

/// Hyper-parameters of one fused Adam step (see [`adam_step`]); the
/// bias corrections are precomputed by the caller because they depend
/// on the step counter, not the parameter.
#[derive(Debug, Clone, Copy)]
pub struct AdamStep {
    /// First-moment decay (β₁).
    pub beta1: f32,
    /// Second-moment decay (β₂).
    pub beta2: f32,
    /// First-moment bias correction `1 - β₁ᵗ`.
    pub bias1: f32,
    /// Second-moment bias correction `1 - β₂ᵗ`.
    pub bias2: f32,
    /// Learning rate.
    pub lr: f32,
    /// Denominator fuzz (ε).
    pub eps: f32,
    /// L2 strength folded into the gradient (0 disables the term).
    pub weight_decay: f32,
}

/// One Adam lane: updates `(m, v)` in place and returns the new value.
#[inline]
fn adam_lane(value: f32, m: &mut f32, v: &mut f32, grad: f32, s: &AdamStep) -> f32 {
    let g = if s.weight_decay != 0.0 {
        grad + s.weight_decay * value
    } else {
        grad
    };
    let mi = s.beta1 * *m + (1.0 - s.beta1) * g;
    let vi = s.beta2 * *v + ((1.0 - s.beta2) * g) * g;
    *m = mi;
    *v = vi;
    let m_hat = mi / s.bias1;
    let v_hat = vi / s.bias2;
    value - (s.lr * m_hat) / (v_hat.sqrt() + s.eps)
}

// ---------------------------------------------------------------------
// Dispatched public kernels.
// ---------------------------------------------------------------------

macro_rules! dispatch {
    ($backend:expr, $scalar:expr, $avx2:expr) => {
        match $backend {
            SimdBackend::Scalar => $scalar,
            #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
            // SAFETY: `SimdBackend::Avx2` is only constructed after
            // `is_x86_feature_detected!("avx2") && ("fma")` succeeded
            // (detect / checked parse), so the target features the
            // callee was compiled for are present at runtime.
            SimdBackend::Avx2 => unsafe { $avx2 },
            // Unreachable in practice: `detect` never returns Avx2 off
            // x86 and `parse` refuses to construct it; tolerate a
            // hand-built value by degrading to the (bit-identical)
            // scalar arm rather than panicking.
            #[cfg(not(any(target_arch = "x86_64", target_arch = "x86")))]
            SimdBackend::Avx2 => $scalar,
        }
    };
}

/// `out = A @ B` (`A` is `m×k`, `B` is `k×n`, row-major) on the
/// process-global arm. Per output element the `k` accumulation order is
/// strictly ascending on every arm — bit-identical to the naive i-k-j
/// reference kernel.
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the dimensions.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    matmul_with(global(), a, b, m, k, n, out);
}

/// [`matmul`] with an explicit arm.
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the dimensions.
pub fn matmul_with(
    backend: SimdBackend,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "matmul: lhs length");
    assert_eq!(b.len(), k * n, "matmul: rhs length");
    assert_eq!(out.len(), m * n, "matmul: out length");
    dispatch!(
        backend,
        scalar::matmul(a, b, m, k, n, out),
        avx2::gemm(a, b, m, k, n, out, false)
    );
}

/// `out = Aᵀ @ B` (`A` stored `k×m`) on the process-global arm; same
/// ascending-`k` per-element order as [`matmul`].
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the dimensions.
pub fn matmul_tn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    matmul_tn_with(global(), a, b, m, k, n, out);
}

/// [`matmul_tn`] with an explicit arm.
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the dimensions.
pub fn matmul_tn_with(
    backend: SimdBackend,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), k * m, "matmul_tn: lhs length");
    assert_eq!(b.len(), k * n, "matmul_tn: rhs length");
    assert_eq!(out.len(), m * n, "matmul_tn: out length");
    dispatch!(
        backend,
        scalar::matmul_tn(a, b, m, k, n, out),
        avx2::gemm(a, b, m, k, n, out, true)
    );
}

/// `out += A @ Bᵀ` (`A` is `m×k`, `B` is `n×k`) on the process-global
/// arm. Each output element is an 8-lane dot product over `k` reduced
/// with [`reduce8`] — the lane-ordered reduction of the module contract.
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the dimensions.
pub fn matmul_nt_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    matmul_nt_acc_with(global(), a, b, m, k, n, out);
}

/// [`matmul_nt_acc`] with an explicit arm.
///
/// # Panics
///
/// Panics if any slice length is inconsistent with the dimensions.
pub fn matmul_nt_acc_with(
    backend: SimdBackend,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "matmul_nt_acc: lhs length");
    assert_eq!(b.len(), n * k, "matmul_nt_acc: rhs length");
    assert_eq!(out.len(), m * n, "matmul_nt_acc: out length");
    dispatch!(
        backend,
        scalar::matmul_nt_acc(a, b, m, k, n, out),
        avx2::matmul_nt_acc(a, b, m, k, n, out)
    );
}

/// `y[i] += alpha * x[i]` (BLAS `axpy`) on the process-global arm.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    axpy_with(global(), alpha, x, y);
}

/// [`axpy`] with an explicit arm.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy_with(backend: SimdBackend, alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    dispatch!(backend, scalar::axpy(alpha, x, y), avx2::axpy(alpha, x, y));
}

/// `x[i] *= alpha` on the process-global arm.
pub fn scale(alpha: f32, x: &mut [f32]) {
    scale_with(global(), alpha, x);
}

/// [`scale`] with an explicit arm.
pub fn scale_with(backend: SimdBackend, alpha: f32, x: &mut [f32]) {
    dispatch!(backend, scalar::scale(alpha, x), avx2::scale(alpha, x));
}

/// Lane-ordered sum: element `i` accumulates into virtual lane `i % 8`
/// in ascending order, and the lanes reduce via [`reduce8`] — identical
/// on every arm (and deliberately different from a plain sequential
/// fold, which no arm could vectorize).
pub fn sum(x: &[f32]) -> f32 {
    sum_with(global(), x)
}

/// [`sum`] with an explicit arm.
pub fn sum_with(backend: SimdBackend, x: &[f32]) -> f32 {
    dispatch!(backend, scalar::sum(x), avx2::sum(x))
}

/// Fused SGD step `value -= lr * (grad + wd * value)` (no momentum) on
/// the process-global arm; the `wd` term is skipped exactly when
/// `wd == 0` so the expression matches the unfused axpy pair bit for bit.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sgd_step(value: &mut [f32], grad: &[f32], lr: f32, wd: f32) {
    sgd_step_with(global(), value, grad, lr, wd);
}

/// [`sgd_step`] with an explicit arm.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sgd_step_with(backend: SimdBackend, value: &mut [f32], grad: &[f32], lr: f32, wd: f32) {
    assert_eq!(value.len(), grad.len(), "sgd_step: length mismatch");
    dispatch!(
        backend,
        scalar::sgd_step(value, grad, lr, wd),
        avx2::sgd_step(value, grad, lr, wd)
    );
}

/// Fused Adam step on the process-global arm: updates the moment
/// buffers `m`/`v` in place and applies the bias-corrected update to
/// `value`. All ops are IEEE-exact (`sqrt`/`div` included), so the arms
/// agree bitwise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn adam_step(value: &mut [f32], m: &mut [f32], v: &mut [f32], grad: &[f32], step: &AdamStep) {
    adam_step_with(global(), value, m, v, grad, step);
}

/// [`adam_step`] with an explicit arm.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn adam_step_with(
    backend: SimdBackend,
    value: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    grad: &[f32],
    step: &AdamStep,
) {
    assert_eq!(value.len(), grad.len(), "adam_step: grad length mismatch");
    assert_eq!(value.len(), m.len(), "adam_step: m length mismatch");
    assert_eq!(value.len(), v.len(), "adam_step: v length mismatch");
    dispatch!(
        backend,
        scalar::adam_step(value, m, v, grad, step),
        avx2::adam_step(value, m, v, grad, step)
    );
}

/// In-place ReLU `x = if x > 0 { x } else { 0 }` on the process-global
/// arm (NaN maps to `+0.0` on every arm).
pub fn relu(x: &mut [f32]) {
    relu_with(global(), x);
}

/// [`relu`] with an explicit arm.
pub fn relu_with(backend: SimdBackend, x: &mut [f32]) {
    dispatch!(backend, scalar::relu(x), avx2::relu(x));
}

/// In-place ReLU backward: `dy[i] = if x[i] > 0 { dy[i] } else { 0 }`
/// on the process-global arm.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn relu_backward(dy: &mut [f32], x: &[f32]) {
    relu_backward_with(global(), dy, x);
}

/// [`relu_backward`] with an explicit arm.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn relu_backward_with(backend: SimdBackend, dy: &mut [f32], x: &[f32]) {
    assert_eq!(dy.len(), x.len(), "relu_backward: length mismatch");
    dispatch!(
        backend,
        scalar::relu_backward(dy, x),
        avx2::relu_backward(dy, x)
    );
}

/// In-place logistic sigmoid `x = 1 / (1 + exp(-x))` on the
/// process-global arm, built on the shared polynomial [`exp_lane`].
pub fn sigmoid(x: &mut [f32]) {
    sigmoid_with(global(), x);
}

/// [`sigmoid`] with an explicit arm.
pub fn sigmoid_with(backend: SimdBackend, x: &mut [f32]) {
    dispatch!(backend, scalar::sigmoid(x), avx2::sigmoid(x));
}

/// In-place sigmoid backward `dy[i] = dy[i] * y[i] * (1 - y[i])` (where
/// `y` is the cached forward output) on the process-global arm.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sigmoid_backward(dy: &mut [f32], y: &[f32]) {
    sigmoid_backward_with(global(), dy, y);
}

/// [`sigmoid_backward`] with an explicit arm.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sigmoid_backward_with(backend: SimdBackend, dy: &mut [f32], y: &[f32]) {
    assert_eq!(dy.len(), y.len(), "sigmoid_backward: length mismatch");
    dispatch!(
        backend,
        scalar::sigmoid_backward(dy, y),
        avx2::sigmoid_backward(dy, y)
    );
}

// ---------------------------------------------------------------------
// Scalar arm.
// ---------------------------------------------------------------------

/// The portable arm: loops the shared lane expressions and emulates the
/// 8-lane reduction schedule. Inner loops use `zip`/`chunks_exact`
/// slicing so the compiler drops the bounds checks and autovectorizes
/// the independent accumulation streams.
mod scalar {
    use super::*;

    /// Rows processed per register block of the blocked GEMM.
    const MR: usize = 4;

    /// k-panel depth: a `KC × n` panel of `B` stays cache-resident while
    /// every row block of the output sweeps it.
    const KC: usize = 128;

    /// Splits `rows` (length `MR * n`) into `MR` disjoint row slices.
    fn split_rows(rows: &mut [f32], n: usize) -> [&mut [f32]; MR] {
        let (r0, rest) = rows.split_at_mut(n);
        let (r1, rest) = rest.split_at_mut(n);
        let (r2, r3) = rest.split_at_mut(n);
        [r0, r1, r2, r3]
    }

    /// Adds `a? * b[j]` into four output rows with a single fused
    /// iterator chain (no bounds checks; four independent accumulation
    /// streams for the autovectorizer).
    #[inline]
    fn saxpy4(rows: [&mut [f32]; MR], coeffs: [f32; MR], b_row: &[f32]) {
        let [r0, r1, r2, r3] = rows;
        let [a0, a1, a2, a3] = coeffs;
        let inner = r2.iter_mut().zip(r3.iter_mut()).zip(b_row.iter());
        for ((o0, o1), ((o2, o3), &bv)) in r0.iter_mut().zip(r1.iter_mut()).zip(inner) {
            *o0 += a0 * bv;
            *o1 += a1 * bv;
            *o2 += a2 * bv;
            *o3 += a3 * bv;
        }
    }

    pub(super) fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        out.iter_mut().for_each(|x| *x = 0.0);
        let mut p0 = 0;
        while p0 < k {
            let p1 = (p0 + KC).min(k);
            let mut i = 0;
            while i + MR <= m {
                let rows = split_rows(&mut out[i * n..(i + MR) * n], n);
                let [r0, r1, r2, r3] = rows;
                for p in p0..p1 {
                    let coeffs = [
                        a[i * k + p],
                        a[(i + 1) * k + p],
                        a[(i + 2) * k + p],
                        a[(i + 3) * k + p],
                    ];
                    saxpy4(
                        [&mut r0[..], &mut r1[..], &mut r2[..], &mut r3[..]],
                        coeffs,
                        &b[p * n..(p + 1) * n],
                    );
                }
                i += MR;
            }
            for i in i..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                for p in p0..p1 {
                    let a_ip = a_row[p];
                    let b_row = &b[p * n..(p + 1) * n];
                    for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += a_ip * b_pj;
                    }
                }
            }
            p0 = p1;
        }
    }

    pub(super) fn matmul_tn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        out.iter_mut().for_each(|x| *x = 0.0);
        let mut i = 0;
        while i + MR <= m {
            let [r0, r1, r2, r3] = split_rows(&mut out[i * n..(i + MR) * n], n);
            for p in 0..k {
                let ap = &a[p * m + i..p * m + i + MR];
                saxpy4(
                    [&mut r0[..], &mut r1[..], &mut r2[..], &mut r3[..]],
                    [ap[0], ap[1], ap[2], ap[3]],
                    &b[p * n..(p + 1) * n],
                );
            }
            i += MR;
        }
        if i < m {
            for p in 0..k {
                let b_row = &b[p * n..(p + 1) * n];
                for ii in i..m {
                    let a_pi = a[p * m + ii];
                    let out_row = &mut out[ii * n..(ii + 1) * n];
                    for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += a_pi * b_pj;
                    }
                }
            }
        }
    }

    /// 8-lane dot product: lane `i % 8` accumulates element `i` in
    /// ascending order, reduced with [`reduce8`]. This is the tail code
    /// the AVX2 arm reuses verbatim, so it *is* the cross-arm spec.
    #[inline]
    pub(super) fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
        let mut lanes = [0.0f32; LANES];
        let blocks = a.len() / LANES;
        for (ca, cb) in a
            .chunks_exact(LANES)
            .zip(b.chunks_exact(LANES))
            .take(blocks)
        {
            for l in 0..LANES {
                lanes[l] += ca[l] * cb[l];
            }
        }
        let tail = blocks * LANES;
        dot_tail(&mut lanes, &a[tail..], &b[tail..]);
        reduce8(&lanes)
    }

    /// Adds a sub-8 tail into the lane accumulators (lane = offset).
    #[inline]
    pub(super) fn dot_tail(lanes: &mut [f32; LANES], a: &[f32], b: &[f32]) {
        for (l, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            lanes[l] += x * y;
        }
    }

    pub(super) fn matmul_nt_acc(
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
    ) {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                *o += dot_lanes(a_row, &b[j * k..(j + 1) * k]);
            }
        }
    }

    pub(super) fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        for (o, &xi) in y.iter_mut().zip(x.iter()) {
            *o = axpy_lane(alpha, xi, *o);
        }
    }

    pub(super) fn scale(alpha: f32, x: &mut [f32]) {
        for o in x.iter_mut() {
            *o = scale_lane(alpha, *o);
        }
    }

    /// Lane-ordered sum; see [`super::sum`] for the schedule.
    pub(super) fn sum(x: &[f32]) -> f32 {
        let mut lanes = [0.0f32; LANES];
        let blocks = x.len() / LANES;
        for chunk in x.chunks_exact(LANES).take(blocks) {
            for l in 0..LANES {
                lanes[l] += chunk[l];
            }
        }
        sum_tail(&mut lanes, &x[blocks * LANES..]);
        reduce8(&lanes)
    }

    /// Adds a sub-8 tail into the lane accumulators (lane = offset).
    #[inline]
    pub(super) fn sum_tail(lanes: &mut [f32; LANES], x: &[f32]) {
        for (l, &v) in x.iter().enumerate() {
            lanes[l] += v;
        }
    }

    pub(super) fn sgd_step(value: &mut [f32], grad: &[f32], lr: f32, wd: f32) {
        for (v, &g) in value.iter_mut().zip(grad.iter()) {
            *v = sgd_lane(*v, g, lr, wd);
        }
    }

    pub(super) fn adam_step(
        value: &mut [f32],
        m: &mut [f32],
        v: &mut [f32],
        grad: &[f32],
        step: &AdamStep,
    ) {
        let inner = m.iter_mut().zip(v.iter_mut()).zip(grad.iter());
        for (p, ((mi, vi), &g)) in value.iter_mut().zip(inner) {
            *p = adam_lane(*p, mi, vi, g, step);
        }
    }

    pub(super) fn relu(x: &mut [f32]) {
        for v in x.iter_mut() {
            *v = relu_lane(*v);
        }
    }

    pub(super) fn relu_backward(dy: &mut [f32], x: &[f32]) {
        for (d, &xi) in dy.iter_mut().zip(x.iter()) {
            *d = relu_backward_lane(*d, xi);
        }
    }

    pub(super) fn sigmoid(x: &mut [f32]) {
        for v in x.iter_mut() {
            *v = sigmoid_lane(*v);
        }
    }

    pub(super) fn sigmoid_backward(dy: &mut [f32], y: &[f32]) {
        for (d, &yi) in dy.iter_mut().zip(y.iter()) {
            *d = sigmoid_backward_lane(*d, yi);
        }
    }
}

// ---------------------------------------------------------------------
// AVX2 arm.
// ---------------------------------------------------------------------

/// The x86 AVX2 arm: 8-wide transcriptions of the shared lane
/// expressions, a packed micro-kernel GEMM, and [`reduce8`]-ordered
/// reductions. Every function is `#[target_feature(enable = "avx2")]`;
/// callers reach them only through the [`dispatch!`] macro, whose
/// safety argument lives at the single `unsafe` site.
#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
mod avx2 {
    use super::*;
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;
    use std::cell::RefCell;

    /// Rows per GEMM micro-tile.
    const MR: usize = 4;
    /// Columns per GEMM micro-tile (two 8-lane vectors).
    const NR: usize = 16;
    /// k-panel depth of the packed B panel (`KC × NR` blocks stream
    /// through L1 while a packed A panel is broadcast against them).
    const KC: usize = 256;

    std::thread_local! {
        /// Per-thread packing scratch (A panel, B panel), reused across
        /// GEMM calls so the hot conv loops do not allocate per call.
        /// Every slot of the used region is overwritten while packing,
        /// so stale contents are never read.
        static PACK_SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> =
            const { RefCell::new((Vec::new(), Vec::new())) };
    }

    /// Below these cutoffs the unpacked [`gemm_direct`] kernel wins:
    /// with few output row-blocks there is not enough reuse to amortize
    /// packing a B panel, and a small `k×n` B already sits in cache.
    const PACK_MIN_M: usize = 32;
    /// See [`PACK_MIN_M`]: minimum `k·n` before packing pays.
    const PACK_MIN_KN: usize = 32 * 1024;

    /// `A` element `(i, p)` of the logical `m×k` operand, reading the
    /// transposed storage when `trans_a` is set.
    #[inline(always)]
    fn a_at(a: &[f32], m: usize, k: usize, trans_a: bool, i: usize, p: usize) -> f32 {
        if trans_a {
            a[p * m + i]
        } else {
            a[i * k + p]
        }
    }

    /// GEMM entry: `out = A @ B` (`trans_a == false`, `A` row-major
    /// `m×k`) or `out = Aᵀ @ B` (`trans_a == true`, `A` stored `k×m`).
    ///
    /// Large problems pack B into `NR`-wide column panels and A into
    /// `MR`-wide row panels per `KC`-deep k-tile; the micro-kernel then
    /// runs eight independent 8-lane accumulators (an `MR×NR` register
    /// tile). Small problems (the table-scale conv shapes) skip packing
    /// entirely and run the same register tile straight over the
    /// operands. Per output element the `k` accumulation order is
    /// strictly ascending in **both** paths — the same order as the
    /// scalar arm and the naive reference, so the path choice is
    /// bit-neutral.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the [`dispatch!`] invariant).
    pub(super) unsafe fn gemm(
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
        trans_a: bool,
    ) {
        out.iter_mut().for_each(|x| *x = 0.0);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        if m < PACK_MIN_M || k * n < PACK_MIN_KN {
            return gemm_direct(a, b, m, k, n, out, trans_a);
        }
        let nb = n.div_ceil(NR);
        let mb = m.div_ceil(MR);
        let kc = KC.min(k);
        PACK_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let (a_pack, b_pack) = &mut *scratch;
            a_pack.resize(mb * MR * kc, 0.0);
            b_pack.resize(nb * NR * kc, 0.0);
            let mut p0 = 0;
            while p0 < k {
                let pc = (k - p0).min(KC);
                pack_b(b, n, p0, pc, nb, b_pack);
                pack_a(a, m, k, p0, pc, mb, trans_a, a_pack);
                for ib in 0..mb {
                    let i0 = ib * MR;
                    let iw = MR.min(m - i0);
                    let a_panel = &a_pack[ib * pc * MR..(ib + 1) * pc * MR];
                    for jb in 0..nb {
                        let j0 = jb * NR;
                        let jw = NR.min(n - j0);
                        let b_panel = &b_pack[jb * pc * NR..(jb + 1) * pc * NR];
                        // SAFETY: `gemm`'s contract — the dispatcher
                        // established AVX2 support before calling in.
                        unsafe { micro_kernel(a_panel, b_panel, pc, out, n, i0, iw, j0, jw) };
                    }
                }
                p0 += pc;
            }
        });
    }

    /// Packs `B[p0..p0+pc, :]` into `NR`-wide column panels
    /// (`[jb][p][0..NR]`, zero-padded past column `n`).
    fn pack_b(b: &[f32], n: usize, p0: usize, pc: usize, nb: usize, b_pack: &mut [f32]) {
        for jb in 0..nb {
            let j0 = jb * NR;
            let jw = NR.min(n - j0);
            for p in 0..pc {
                let dst = &mut b_pack[(jb * pc + p) * NR..(jb * pc + p + 1) * NR];
                let src = &b[(p0 + p) * n + j0..(p0 + p) * n + j0 + jw];
                dst[..jw].copy_from_slice(src);
                dst[jw..].iter_mut().for_each(|x| *x = 0.0);
            }
        }
    }

    /// Packs the k-tile of A into `MR`-wide row panels
    /// (`[ib][p][0..MR]`, zero-padded past row `m`), transposing on the
    /// fly for the `Aᵀ @ B` product.
    #[allow(clippy::too_many_arguments)]
    fn pack_a(
        a: &[f32],
        m: usize,
        k: usize,
        p0: usize,
        pc: usize,
        mb: usize,
        trans_a: bool,
        a_pack: &mut [f32],
    ) {
        for ib in 0..mb {
            let i0 = ib * MR;
            let iw = MR.min(m - i0);
            for p in 0..pc {
                let dst = &mut a_pack[(ib * pc + p) * MR..(ib * pc + p + 1) * MR];
                if trans_a {
                    let src = &a[(p0 + p) * m + i0..(p0 + p) * m + i0 + iw];
                    dst[..iw].copy_from_slice(src);
                } else {
                    for (r, slot) in dst[..iw].iter_mut().enumerate() {
                        *slot = a[(i0 + r) * k + p0 + p];
                    }
                }
                dst[iw..].iter_mut().for_each(|x| *x = 0.0);
            }
        }
    }

    /// The `MR×NR` register tile: eight 8-lane accumulators swept by one
    /// packed k-panel.
    ///
    /// The accumulators are *seeded from `out`* (the partial sums of the
    /// previous k-tiles) and stored back plainly, so each output
    /// element's addition chain over `k` continues uninterrupted across
    /// tiles — exactly the ascending-`k` chain of the scalar arm. A
    /// zero-seeded tile followed by `out += tile` would re-associate the
    /// chain and split the arms bitwise. Padded rows/columns accumulate
    /// on zeros and are discarded at the store.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the [`dispatch!`] invariant, upheld by
    /// [`gemm`]), and the panel/tile geometry must be the one `gemm`
    /// computes: `a_panel`/`b_panel` hold `pc` packed `MR`/`NR`-wide
    /// rows and `out` is the full `…×n` output with `i0 + iw <= m`,
    /// `j0 + jw <= n` — every 8-lane load/store below stays in bounds
    /// under exactly those inequalities.
    #[target_feature(enable = "avx2")]
    unsafe fn micro_kernel(
        a_panel: &[f32],
        b_panel: &[f32],
        pc: usize,
        out: &mut [f32],
        n: usize,
        i0: usize,
        iw: usize,
        j0: usize,
        jw: usize,
    ) {
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        for (r, acc_r) in acc.iter_mut().enumerate().take(iw) {
            let row = &out[(i0 + r) * n..(i0 + r) * n + n];
            if jw == NR {
                let src = row.as_ptr().add(j0);
                acc_r[0] = _mm256_loadu_ps(src);
                acc_r[1] = _mm256_loadu_ps(src.add(8));
            } else {
                let mut tmp = [0.0f32; NR];
                tmp[..jw].copy_from_slice(&row[j0..j0 + jw]);
                acc_r[0] = _mm256_loadu_ps(tmp.as_ptr());
                acc_r[1] = _mm256_loadu_ps(tmp.as_ptr().add(8));
            }
        }
        let mut ap = a_panel.as_ptr();
        let mut bp = b_panel.as_ptr();
        for _ in 0..pc {
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            for r in 0..MR {
                let ar = _mm256_set1_ps(*ap.add(r));
                acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(ar, b0));
                acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(ar, b1));
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        for r in 0..iw {
            let row = &mut out[(i0 + r) * n..(i0 + r) * n + n];
            if jw == NR {
                let dst = row.as_mut_ptr().add(j0);
                _mm256_storeu_ps(dst, acc[r][0]);
                _mm256_storeu_ps(dst.add(8), acc[r][1]);
            } else {
                let mut tmp = [0.0f32; NR];
                _mm256_storeu_ps(tmp.as_mut_ptr(), acc[r][0]);
                _mm256_storeu_ps(tmp.as_mut_ptr().add(8), acc[r][1]);
                row[j0..j0 + jw].copy_from_slice(&tmp[..jw]);
            }
        }
    }

    /// Unpacked register-tile GEMM for small problems: the same `MR×NR`
    /// accumulator tile as [`micro_kernel`], fed by strided loads from
    /// the operands in place. Every output element still accumulates
    /// its `k` products in strictly ascending order (one uninterrupted
    /// chain — no k-tiling here), so this path is bit-identical to the
    /// packed path and the scalar arm.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the [`dispatch!`] invariant, upheld by
    /// [`gemm`]), and the slices must match the stated geometry (`a` is
    /// `m×k` or `k×m` per `trans_a`, `b` is `k×n`, `out` is `m×n`) —
    /// the loop bounds keep every 8/16-lane load/store inside them.
    #[target_feature(enable = "avx2")]
    unsafe fn gemm_direct(
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
        trans_a: bool,
    ) {
        let mut i0 = 0;
        while i0 + MR <= m {
            let mut j0 = 0;
            while j0 + NR <= n {
                let mut acc = [[_mm256_setzero_ps(); 2]; MR];
                for p in 0..k {
                    let bp = b.as_ptr().add(p * n + j0);
                    let b0 = _mm256_loadu_ps(bp);
                    let b1 = _mm256_loadu_ps(bp.add(8));
                    for r in 0..MR {
                        let ar = _mm256_set1_ps(a_at(a, m, k, trans_a, i0 + r, p));
                        acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(ar, b0));
                        acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(ar, b1));
                    }
                }
                for (r, acc_r) in acc.iter().enumerate() {
                    let dst = out.as_mut_ptr().add((i0 + r) * n + j0);
                    _mm256_storeu_ps(dst, acc_r[0]);
                    _mm256_storeu_ps(dst.add(8), acc_r[1]);
                }
                j0 += NR;
            }
            while j0 + 8 <= n {
                let mut acc = [_mm256_setzero_ps(); MR];
                for p in 0..k {
                    let bv = _mm256_loadu_ps(b.as_ptr().add(p * n + j0));
                    for (r, acc_r) in acc.iter_mut().enumerate() {
                        let ar = _mm256_set1_ps(a_at(a, m, k, trans_a, i0 + r, p));
                        *acc_r = _mm256_add_ps(*acc_r, _mm256_mul_ps(ar, bv));
                    }
                }
                for (r, acc_r) in acc.iter().enumerate() {
                    _mm256_storeu_ps(out.as_mut_ptr().add((i0 + r) * n + j0), *acc_r);
                }
                j0 += 8;
            }
            for j in j0..n {
                for r in 0..MR {
                    let mut s = 0.0f32;
                    for p in 0..k {
                        s += a_at(a, m, k, trans_a, i0 + r, p) * b[p * n + j];
                    }
                    out[(i0 + r) * n + j] = s;
                }
            }
            i0 += MR;
        }
        for i in i0..m {
            let mut j0 = 0;
            while j0 + 8 <= n {
                let mut acc = _mm256_setzero_ps();
                for p in 0..k {
                    let ar = _mm256_set1_ps(a_at(a, m, k, trans_a, i, p));
                    let bv = _mm256_loadu_ps(b.as_ptr().add(p * n + j0));
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(ar, bv));
                }
                _mm256_storeu_ps(out.as_mut_ptr().add(i * n + j0), acc);
                j0 += 8;
            }
            for j in j0..n {
                let mut s = 0.0f32;
                for p in 0..k {
                    s += a_at(a, m, k, trans_a, i, p) * b[p * n + j];
                }
                out[i * n + j] = s;
            }
        }
    }

    /// Spills an 8-lane accumulator register to the lane array the
    /// scalar tail/reduction code operates on.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the [`dispatch!`] invariant); the
    /// store itself targets a local array of exactly [`LANES`] floats.
    #[target_feature(enable = "avx2")]
    unsafe fn spill(acc: __m256) -> [f32; LANES] {
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        lanes
    }

    /// `out += A @ Bᵀ` (`A` is `m×k`, `B` is `n×k`, both row-major):
    /// batched 8-lane dot products, four B rows per A-row load, with
    /// the shared scalar tail folded into the lane array before the
    /// fixed-order [`reduce8`] — bit-identical to the scalar arm.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the [`dispatch!`] invariant) and the
    /// slices must match the stated `m`/`k`/`n` geometry, which keeps
    /// every 8-lane load inside its row slice.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn matmul_nt_acc(
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
    ) {
        let kb = k / LANES * LANES;
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            let mut j = 0;
            // Four dot products at a time share every load of the A row.
            while j + 4 <= n {
                let rows = [
                    &b[j * k..(j + 1) * k],
                    &b[(j + 1) * k..(j + 2) * k],
                    &b[(j + 2) * k..(j + 3) * k],
                    &b[(j + 3) * k..(j + 4) * k],
                ];
                let mut acc = [_mm256_setzero_ps(); 4];
                let mut p = 0;
                while p < kb {
                    let av = _mm256_loadu_ps(a_row.as_ptr().add(p));
                    for (c, row) in rows.iter().enumerate() {
                        let bv = _mm256_loadu_ps(row.as_ptr().add(p));
                        acc[c] = _mm256_add_ps(acc[c], _mm256_mul_ps(av, bv));
                    }
                    p += LANES;
                }
                for (c, row) in rows.iter().enumerate() {
                    let mut lanes = spill(acc[c]);
                    scalar::dot_tail(&mut lanes, &a_row[kb..], &row[kb..]);
                    out_row[j + c] += reduce8(&lanes);
                }
                j += 4;
            }
            for j in j..n {
                out_row[j] += dot_lanes(a_row, &b[j * k..(j + 1) * k]);
            }
        }
    }

    /// Single 8-lane dot product (vector body + shared scalar tail).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the [`dispatch!`] invariant) and `b`
    /// must be at least as long as `a` (the vector body reads both at
    /// the same offsets, bounded by `a.len()`).
    #[target_feature(enable = "avx2")]
    unsafe fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
        let kb = a.len() / LANES * LANES;
        let mut acc = _mm256_setzero_ps();
        let mut p = 0;
        while p < kb {
            let av = _mm256_loadu_ps(a.as_ptr().add(p));
            let bv = _mm256_loadu_ps(b.as_ptr().add(p));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(av, bv));
            p += LANES;
        }
        let mut lanes = spill(acc);
        scalar::dot_tail(&mut lanes, &a[kb..], &b[kb..]);
        reduce8(&lanes)
    }

    /// Lane-ordered sum: 8-lane strided partials, scalar tail folded
    /// into the lanes, then the fixed-order [`reduce8`] tree.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the [`dispatch!`] invariant); all
    /// loads are bounded by `x.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sum(x: &[f32]) -> f32 {
        let kb = x.len() / LANES * LANES;
        let mut acc = _mm256_setzero_ps();
        let mut p = 0;
        while p < kb {
            acc = _mm256_add_ps(acc, _mm256_loadu_ps(x.as_ptr().add(p)));
            p += LANES;
        }
        let mut lanes = spill(acc);
        scalar::sum_tail(&mut lanes, &x[kb..]);
        reduce8(&lanes)
    }

    /// `y += alpha * x`, elementwise (no cross-lane reduction, so
    /// vectorization is trivially bit-neutral).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the [`dispatch!`] invariant) and `y`
    /// must be at least as long as `x` (loads/stores are bounded by
    /// `x.len()`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        let full = x.len() / LANES * LANES;
        let av = _mm256_set1_ps(alpha);
        let mut p = 0;
        while p < full {
            let xv = _mm256_loadu_ps(x.as_ptr().add(p));
            let yv = _mm256_loadu_ps(y.as_ptr().add(p));
            _mm256_storeu_ps(
                y.as_mut_ptr().add(p),
                _mm256_add_ps(yv, _mm256_mul_ps(av, xv)),
            );
            p += LANES;
        }
        for (o, &xi) in y[full..].iter_mut().zip(x[full..].iter()) {
            *o = axpy_lane(alpha, xi, *o);
        }
    }

    /// `x *= alpha`, elementwise.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the [`dispatch!`] invariant); all
    /// loads/stores are bounded by `x.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale(alpha: f32, x: &mut [f32]) {
        let full = x.len() / LANES * LANES;
        let av = _mm256_set1_ps(alpha);
        let mut p = 0;
        while p < full {
            let xv = _mm256_loadu_ps(x.as_ptr().add(p));
            _mm256_storeu_ps(x.as_mut_ptr().add(p), _mm256_mul_ps(xv, av));
            p += LANES;
        }
        for o in x[full..].iter_mut() {
            *o = scale_lane(alpha, *o);
        }
    }

    /// SGD update `value -= lr * (grad + wd * value)`, elementwise,
    /// op-for-op the scalar [`sgd_lane`] (weight decay folded first,
    /// separate mul/add — never contracted).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the [`dispatch!`] invariant) and
    /// `grad` must be at least as long as `value` (loads/stores are
    /// bounded by `value.len()`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sgd_step(value: &mut [f32], grad: &[f32], lr: f32, wd: f32) {
        let full = value.len() / LANES * LANES;
        let neg_lr = _mm256_set1_ps(-lr);
        let wdv = _mm256_set1_ps(wd);
        let fold_wd = wd != 0.0;
        let mut p = 0;
        while p < full {
            let v = _mm256_loadu_ps(value.as_ptr().add(p));
            let mut g = _mm256_loadu_ps(grad.as_ptr().add(p));
            if fold_wd {
                g = _mm256_add_ps(g, _mm256_mul_ps(wdv, v));
            }
            _mm256_storeu_ps(
                value.as_mut_ptr().add(p),
                _mm256_add_ps(v, _mm256_mul_ps(neg_lr, g)),
            );
            p += LANES;
        }
        for (v, &g) in value[full..].iter_mut().zip(grad[full..].iter()) {
            *v = sgd_lane(*v, g, lr, wd);
        }
    }

    /// Adam update, elementwise, op-for-op the scalar [`adam_lane`]
    /// (same moment/bias-correction expression tree, separate mul/add —
    /// never contracted).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the [`dispatch!`] invariant) and
    /// `m`/`v`/`grad` must each be at least as long as `value`
    /// (loads/stores are bounded by `value.len()`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn adam_step(
        value: &mut [f32],
        m: &mut [f32],
        v: &mut [f32],
        grad: &[f32],
        s: &AdamStep,
    ) {
        let full = value.len() / LANES * LANES;
        let b1 = _mm256_set1_ps(s.beta1);
        let omb1 = _mm256_set1_ps(1.0 - s.beta1);
        let b2 = _mm256_set1_ps(s.beta2);
        let omb2 = _mm256_set1_ps(1.0 - s.beta2);
        let bias1 = _mm256_set1_ps(s.bias1);
        let bias2 = _mm256_set1_ps(s.bias2);
        let lr = _mm256_set1_ps(s.lr);
        let eps = _mm256_set1_ps(s.eps);
        let wd = _mm256_set1_ps(s.weight_decay);
        let fold_wd = s.weight_decay != 0.0;
        let mut p = 0;
        while p < full {
            let pv = _mm256_loadu_ps(value.as_ptr().add(p));
            let mut g = _mm256_loadu_ps(grad.as_ptr().add(p));
            if fold_wd {
                g = _mm256_add_ps(g, _mm256_mul_ps(wd, pv));
            }
            let mv = _mm256_loadu_ps(m.as_ptr().add(p));
            let vv = _mm256_loadu_ps(v.as_ptr().add(p));
            let mi = _mm256_add_ps(_mm256_mul_ps(b1, mv), _mm256_mul_ps(omb1, g));
            let vi = _mm256_add_ps(
                _mm256_mul_ps(b2, vv),
                _mm256_mul_ps(_mm256_mul_ps(omb2, g), g),
            );
            _mm256_storeu_ps(m.as_mut_ptr().add(p), mi);
            _mm256_storeu_ps(v.as_mut_ptr().add(p), vi);
            let m_hat = _mm256_div_ps(mi, bias1);
            let v_hat = _mm256_div_ps(vi, bias2);
            let denom = _mm256_add_ps(_mm256_sqrt_ps(v_hat), eps);
            let upd = _mm256_div_ps(_mm256_mul_ps(lr, m_hat), denom);
            _mm256_storeu_ps(value.as_mut_ptr().add(p), _mm256_sub_ps(pv, upd));
            p += LANES;
        }
        let inner = m[full..].iter_mut().zip(v[full..].iter_mut());
        for ((pv, (mi, vi)), &g) in value[full..].iter_mut().zip(inner).zip(grad[full..].iter()) {
            *pv = adam_lane(*pv, mi, vi, g, s);
        }
    }

    /// In-place ReLU via a compare-and-mask (`max` would lose the
    /// scalar arm's `-0.0`/NaN semantics).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the [`dispatch!`] invariant); all
    /// loads/stores are bounded by `x.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn relu(x: &mut [f32]) {
        let full = x.len() / LANES * LANES;
        let zero = _mm256_setzero_ps();
        let mut p = 0;
        while p < full {
            let v = _mm256_loadu_ps(x.as_ptr().add(p));
            let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(v, zero);
            _mm256_storeu_ps(x.as_mut_ptr().add(p), _mm256_and_ps(mask, v));
            p += LANES;
        }
        for o in x[full..].iter_mut() {
            *o = relu_lane(*o);
        }
    }

    /// ReLU backward: zeroes `dy` lanes where the forward input was
    /// not strictly positive, via the same compare-and-mask as [`relu`].
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the [`dispatch!`] invariant) and `dy`
    /// must be at least as long as `x` (loads/stores are bounded by
    /// `x.len()`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn relu_backward(dy: &mut [f32], x: &[f32]) {
        let full = x.len() / LANES * LANES;
        let zero = _mm256_setzero_ps();
        let mut p = 0;
        while p < full {
            let xv = _mm256_loadu_ps(x.as_ptr().add(p));
            let dv = _mm256_loadu_ps(dy.as_ptr().add(p));
            let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(xv, zero);
            _mm256_storeu_ps(dy.as_mut_ptr().add(p), _mm256_and_ps(mask, dv));
            p += LANES;
        }
        for (d, &xi) in dy[full..].iter_mut().zip(x[full..].iter()) {
            *d = relu_backward_lane(*d, xi);
        }
    }

    /// 8-wide transcription of [`exp_lane`] — op for op, including the
    /// clamp semantics (`vminps`/`vmaxps`) and the magic-number round —
    /// with NaN lanes of the input blended back at the end.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the [`dispatch!`] invariant); the
    /// body is pure register arithmetic, no memory access.
    #[target_feature(enable = "avx2")]
    unsafe fn exp_ps(x: __m256) -> __m256 {
        let xc = _mm256_max_ps(
            _mm256_min_ps(x, _mm256_set1_ps(EXP_HI)),
            _mm256_set1_ps(EXP_LO),
        );
        let magic = _mm256_set1_ps(EXP_MAGIC);
        let n = _mm256_sub_ps(
            _mm256_add_ps(_mm256_mul_ps(xc, _mm256_set1_ps(EXP_LOG2E)), magic),
            magic,
        );
        let r = _mm256_sub_ps(xc, _mm256_mul_ps(n, _mm256_set1_ps(EXP_LN2_HI)));
        let r = _mm256_sub_ps(r, _mm256_mul_ps(n, _mm256_set1_ps(EXP_LN2_LO)));
        let mut y = _mm256_set1_ps(EXP_P0);
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(EXP_P1));
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(EXP_P2));
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(EXP_P3));
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(EXP_P4));
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(EXP_P5));
        let y = _mm256_add_ps(
            _mm256_add_ps(_mm256_mul_ps(_mm256_mul_ps(y, r), r), r),
            _mm256_set1_ps(1.0),
        );
        let ni = _mm256_cvtps_epi32(n);
        let scale = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            ni,
            _mm256_set1_epi32(127),
        )));
        let result = _mm256_mul_ps(y, scale);
        // NaN inputs pass through unchanged, as in the scalar arm.
        let nan_mask = _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x);
        _mm256_blendv_ps(result, x, nan_mask)
    }

    /// In-place sigmoid `1 / (1 + exp(-x))` over [`exp_ps`], matching
    /// the scalar [`sigmoid_lane`] op for op.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the [`dispatch!`] invariant); all
    /// loads/stores are bounded by `x.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sigmoid(x: &mut [f32]) {
        let full = x.len() / LANES * LANES;
        let one = _mm256_set1_ps(1.0);
        let sign = _mm256_set1_ps(-0.0);
        let mut p = 0;
        while p < full {
            let v = _mm256_loadu_ps(x.as_ptr().add(p));
            let e = exp_ps(_mm256_xor_ps(v, sign));
            _mm256_storeu_ps(
                x.as_mut_ptr().add(p),
                _mm256_div_ps(one, _mm256_add_ps(one, e)),
            );
            p += LANES;
        }
        for o in x[full..].iter_mut() {
            *o = sigmoid_lane(*o);
        }
    }

    /// Sigmoid backward `dy *= y * (1 - y)` from the forward output,
    /// elementwise, matching the scalar [`sigmoid_backward_lane`].
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the [`dispatch!`] invariant) and `dy`
    /// must be at least as long as `y` (loads/stores are bounded by
    /// `y.len()`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sigmoid_backward(dy: &mut [f32], y: &[f32]) {
        let full = y.len() / LANES * LANES;
        let one = _mm256_set1_ps(1.0);
        let mut p = 0;
        while p < full {
            let dv = _mm256_loadu_ps(dy.as_ptr().add(p));
            let yv = _mm256_loadu_ps(y.as_ptr().add(p));
            let r = _mm256_mul_ps(_mm256_mul_ps(dv, yv), _mm256_sub_ps(one, yv));
            _mm256_storeu_ps(dy.as_mut_ptr().add(p), r);
            p += LANES;
        }
        for (d, &yi) in dy[full..].iter_mut().zip(y[full..].iter()) {
            *d = sigmoid_backward_lane(*d, yi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = Xoshiro256::seed_from(seed);
        (0..len).map(|_| rng.normal()).collect()
    }

    fn arms() -> Vec<SimdBackend> {
        let mut arms = vec![SimdBackend::Scalar];
        if SimdBackend::detect() == SimdBackend::Avx2 {
            arms.push(SimdBackend::Avx2);
        }
        arms
    }

    fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
        assert_eq!(got.len(), want.len(), "{what}: length");
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{what}[{i}]: {g} vs {w} (bits differ)"
            );
        }
    }

    #[test]
    fn parse_selects_arms() {
        assert_eq!(SimdBackend::parse("scalar"), SimdBackend::Scalar);
        assert_eq!(SimdBackend::parse(" SCALAR "), SimdBackend::Scalar);
        assert_eq!(SimdBackend::parse("auto"), SimdBackend::detect());
        assert_eq!(SimdBackend::parse(""), SimdBackend::detect());
        if SimdBackend::detect() == SimdBackend::Avx2 {
            assert_eq!(SimdBackend::parse("avx2"), SimdBackend::Avx2);
        }
        assert_eq!(SimdBackend::Scalar.to_string(), "scalar");
        assert_eq!(SimdBackend::Avx2.name(), "avx2");
    }

    #[test]
    #[should_panic(expected = "accepted values")]
    fn parse_rejects_unknown_arms_loudly() {
        let _ = SimdBackend::parse("typo");
    }

    #[test]
    fn reduce8_has_the_documented_tree() {
        // Values chosen so a different association order would round
        // differently: the documented tree must be reproduced literally.
        let lanes = [1e8f32, 1.0, -1e8, 2.0, 3.0, -4.0, 5.0, 6.0];
        let s0 = lanes[0] + lanes[4];
        let s1 = lanes[1] + lanes[5];
        let s2 = lanes[2] + lanes[6];
        let s3 = lanes[3] + lanes[7];
        let want = (s0 + s2) + (s1 + s3);
        assert_eq!(reduce8(&lanes).to_bits(), want.to_bits());
    }

    #[test]
    fn exp_lane_tracks_libm() {
        for i in -800..=800 {
            let x = i as f32 * 0.11;
            let got = exp_lane(x) as f64;
            let want = (x as f64).exp();
            let rel = if want == 0.0 {
                got.abs()
            } else {
                ((got - want) / want).abs()
            };
            // The clamp saturates to the smallest normal / inf at the
            // extremes; inside the clamp the poly stays within ~1e-6.
            if (EXP_LO..=EXP_HI).contains(&x) {
                assert!(rel < 1e-5, "exp({x}): {got} vs {want} (rel {rel})");
            }
        }
        assert_eq!(exp_lane(0.0), 1.0);
        assert!(exp_lane(f32::NAN).is_nan());
        assert_eq!(exp_lane(1000.0), f32::INFINITY);
        assert!(exp_lane(-1000.0) > 0.0, "deep negative saturates, not 0");
    }

    #[test]
    fn matmul_family_is_bitwise_identical_across_arms() {
        for (m, k, n) in [
            (0, 3, 2),
            (1, 0, 1),
            (1, 1, 1),
            (3, 5, 2),
            (4, 8, 16),
            (5, 9, 17),
            (7, 300, 33),
            (12, 17, 40),
            // Hits the packed-panel path (m ≥ 32, k·n ≥ 32768) with
            // row/column remainders and multiple k-tiles.
            (37, 300, 130),
            (40, 280, 128),
        ] {
            let a = rand_vec(m * k, 10 + (m * 31 + k * 7 + n) as u64);
            let b = rand_vec(k * n, 20 + (m + k * 13 + n * 3) as u64);
            let at = rand_vec(k * m, 30 + (m + k + n) as u64);
            let bt = rand_vec(n * k, 40 + (m * k + n) as u64);
            let mut want = vec![0.0f32; m * n];
            let mut want_tn = vec![0.0f32; m * n];
            let mut want_nt = rand_vec(m * n, 50);
            matmul_with(SimdBackend::Scalar, &a, &b, m, k, n, &mut want);
            matmul_tn_with(SimdBackend::Scalar, &at, &b, m, k, n, &mut want_tn);
            matmul_nt_acc_with(SimdBackend::Scalar, &a, &bt, m, k, n, &mut want_nt);
            for arm in arms() {
                let mut got = vec![0.0f32; m * n];
                matmul_with(arm, &a, &b, m, k, n, &mut got);
                assert_bits_eq(&got, &want, &format!("matmul[{arm}] {m}x{k}x{n}"));
                let mut got_tn = vec![0.0f32; m * n];
                matmul_tn_with(arm, &at, &b, m, k, n, &mut got_tn);
                assert_bits_eq(&got_tn, &want_tn, &format!("matmul_tn[{arm}] {m}x{k}x{n}"));
                let mut got_nt = rand_vec(m * n, 50);
                matmul_nt_acc_with(arm, &a, &bt, m, k, n, &mut got_nt);
                assert_bits_eq(
                    &got_nt,
                    &want_nt,
                    &format!("matmul_nt_acc[{arm}] {m}x{k}x{n}"),
                );
            }
        }
    }

    #[test]
    fn elementwise_ops_are_bitwise_identical_across_arms() {
        for len in [0usize, 1, 7, 8, 9, 64, 100, 1000] {
            let x = rand_vec(len, 100 + len as u64);
            let g = rand_vec(len, 200 + len as u64);
            for arm in arms() {
                let tag = format!("[{arm}] len {len}");

                let mut want = x.clone();
                super::scalar::axpy(0.37, &g, &mut want);
                let mut got = x.clone();
                axpy_with(arm, 0.37, &g, &mut got);
                assert_bits_eq(&got, &want, &format!("axpy {tag}"));

                let mut want = x.clone();
                super::scalar::scale(-1.3, &mut want);
                let mut got = x.clone();
                scale_with(arm, -1.3, &mut got);
                assert_bits_eq(&got, &want, &format!("scale {tag}"));

                let want = super::scalar::sum(&x);
                let got = sum_with(arm, &x);
                assert_eq!(got.to_bits(), want.to_bits(), "sum {tag}");

                for wd in [0.0f32, 1e-5] {
                    let mut want = x.clone();
                    super::scalar::sgd_step(&mut want, &g, 0.01, wd);
                    let mut got = x.clone();
                    sgd_step_with(arm, &mut got, &g, 0.01, wd);
                    assert_bits_eq(&got, &want, &format!("sgd(wd={wd}) {tag}"));
                }

                let step = AdamStep {
                    beta1: 0.9,
                    beta2: 0.999,
                    bias1: 0.1,
                    bias2: 0.001,
                    lr: 2e-4,
                    eps: 1e-8,
                    weight_decay: 1e-5,
                };
                let m0 = rand_vec(len, 300 + len as u64);
                let v0: Vec<f32> = rand_vec(len, 400 + len as u64)
                    .iter()
                    .map(|v| v.abs())
                    .collect();
                let (mut wp, mut wm, mut wv) = (x.clone(), m0.clone(), v0.clone());
                super::scalar::adam_step(&mut wp, &mut wm, &mut wv, &g, &step);
                let (mut gp, mut gm, mut gv) = (x.clone(), m0.clone(), v0.clone());
                adam_step_with(arm, &mut gp, &mut gm, &mut gv, &g, &step);
                assert_bits_eq(&gp, &wp, &format!("adam value {tag}"));
                assert_bits_eq(&gm, &wm, &format!("adam m {tag}"));
                assert_bits_eq(&gv, &wv, &format!("adam v {tag}"));

                let mut want = x.clone();
                super::scalar::relu(&mut want);
                let mut got = x.clone();
                relu_with(arm, &mut got);
                assert_bits_eq(&got, &want, &format!("relu {tag}"));

                let mut want = g.clone();
                super::scalar::relu_backward(&mut want, &x);
                let mut got = g.clone();
                relu_backward_with(arm, &mut got, &x);
                assert_bits_eq(&got, &want, &format!("relu_backward {tag}"));

                let mut want = x.clone();
                super::scalar::sigmoid(&mut want);
                let mut got = x.clone();
                sigmoid_with(arm, &mut got);
                assert_bits_eq(&got, &want, &format!("sigmoid {tag}"));

                let y = want;
                let mut want = g.clone();
                super::scalar::sigmoid_backward(&mut want, &y);
                let mut got = g.clone();
                sigmoid_backward_with(arm, &mut got, &y);
                assert_bits_eq(&got, &want, &format!("sigmoid_backward {tag}"));
            }
        }
    }

    #[test]
    fn special_values_are_preserved_across_arms() {
        let x = [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
            0.0,
            1.0,
            -1.0,
            f32::MIN_POSITIVE,
            100.0,
        ];
        for arm in arms() {
            let mut relu_s = x;
            super::scalar::relu(&mut relu_s);
            let mut relu_a = x;
            relu_with(arm, &mut relu_a);
            assert_bits_eq(&relu_a, &relu_s, &format!("relu specials [{arm}]"));

            let mut sig_s = x;
            super::scalar::sigmoid(&mut sig_s);
            let mut sig_a = x;
            sigmoid_with(arm, &mut sig_a);
            assert_bits_eq(&sig_a, &sig_s, &format!("sigmoid specials [{arm}]"));
            assert!(sig_a[0].is_nan(), "sigmoid must propagate NaN");
            assert_eq!(sig_a[1], 1.0, "sigmoid(+inf) = 1");
            assert_eq!(sig_a[2], 0.0, "sigmoid(-inf) = 0");
            assert_eq!(sig_a[5], sigmoid_lane(1.0));
        }
    }

    #[test]
    fn matmul_keeps_nan_propagation() {
        // The zero-skip regression from PR 2 must hold on every arm.
        for arm in arms() {
            let a = [0.0f32, 1.0];
            let b = [f32::NAN, 2.0];
            let mut out = [0.0f32; 1];
            matmul_with(arm, &a, &b, 1, 2, 1, &mut out);
            assert!(out[0].is_nan(), "[{arm}] swallowed 0×NaN: {}", out[0]);
        }
    }

    #[test]
    fn global_round_trips() {
        let before = global();
        set_global(SimdBackend::Scalar);
        assert_eq!(global(), SimdBackend::Scalar);
        set_global(before);
        assert_eq!(global(), before);
    }
}
