//! Property-based tests of the tensor kernels: the algebraic identities
//! that make backpropagation correct must hold for arbitrary geometries,
//! not just the hand-picked unit-test shapes.

use proptest::prelude::*;

use rte_tensor::conv::{
    col2im, conv2d, conv2d_backward, im2col, max_pool2d, max_pool2d_backward, Conv2dSpec,
};
use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = Xoshiro256::seed_from(seed);
    Tensor::from_fn(dims, |_| rng.normal())
}

fn inner(a: &Tensor, b: &Tensor) -> f64 {
    a.data()
        .iter()
        .zip(b.data().iter())
        .map(|(&x, &y)| x as f64 * y as f64)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The backward input gradient is the adjoint of the forward map:
    /// <conv(x), g> == <x, dx(g)> for any spec and geometry.
    #[test]
    fn conv_backward_is_adjoint(
        seed in 0u64..10_000,
        c_in in 1usize..4,
        c_out in 1usize..4,
        h in 5usize..12,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        dilation in 1usize..3,
    ) {
        let spec = Conv2dSpec { stride, padding, dilation };
        let eff = spec.effective_kernel(k);
        prop_assume!(h + 2 * padding >= eff);
        let x = rand_tensor(&[1, c_in, h, h], seed);
        let w = rand_tensor(&[c_out, c_in, k, k], seed ^ 1);
        let y = conv2d(&x, &w, None, spec).unwrap();
        let g = rand_tensor(y.shape().dims(), seed ^ 2);
        let grads = conv2d_backward(&x, &w, &g, spec).unwrap();
        let lhs = inner(&y, &g);
        let rhs = inner(&x, &grads.dx);
        prop_assert!(
            (lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
            "adjoint mismatch: {lhs} vs {rhs}"
        );
    }

    /// Weight gradient adjointness: <conv_w(x), g> is linear in w, so
    /// <y, g> == <w, dw> for bias-free convolution.
    #[test]
    fn conv_weight_gradient_is_adjoint(
        seed in 0u64..10_000,
        c_in in 1usize..3,
        c_out in 1usize..3,
        h in 5usize..10,
        k in 1usize..4,
    ) {
        // `same` padding only exists for odd kernels (even k now panics).
        prop_assume!(k % 2 == 1);
        let spec = Conv2dSpec::same(k);
        let x = rand_tensor(&[2, c_in, h, h], seed);
        let w = rand_tensor(&[c_out, c_in, k, k], seed ^ 3);
        let y = conv2d(&x, &w, None, spec).unwrap();
        let g = rand_tensor(y.shape().dims(), seed ^ 4);
        let grads = conv2d_backward(&x, &w, &g, spec).unwrap();
        let lhs = inner(&y, &g);
        let rhs = inner(&w, &grads.dw);
        prop_assert!(
            (lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
            "weight adjoint mismatch: {lhs} vs {rhs}"
        );
    }

    /// im2col and col2im are adjoint for arbitrary geometry.
    #[test]
    fn unfold_fold_adjoint(
        seed in 0u64..10_000,
        c in 1usize..4,
        h in 4usize..10,
        w in 4usize..10,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
    ) {
        let spec = Conv2dSpec { stride, padding, dilation: 1 };
        prop_assume!(h + 2 * padding >= k && w + 2 * padding >= k);
        let oh = spec.out_extent(h, k);
        let ow = spec.out_extent(w, k);
        let x = rand_tensor(&[c, h, w], seed);
        let cvec = rand_tensor(&[c * k * k * oh * ow], seed ^ 5);
        let mut col = vec![0.0f32; c * k * k * oh * ow];
        im2col(x.data(), c, h, w, k, k, spec, &mut col);
        let mut img = vec![0.0f32; c * h * w];
        col2im(cvec.data(), c, h, w, k, k, spec, &mut img);
        let lhs: f64 = col.iter().zip(cvec.data()).map(|(&a, &b)| a as f64 * b as f64).sum();
        let rhs: f64 = x.data().iter().zip(img.iter()).map(|(&a, &b)| a as f64 * b as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    /// Max pooling: every output is an element of its window, is >= all
    /// elements of the window, and the backward pass conserves gradient
    /// mass for non-overlapping windows.
    #[test]
    fn max_pool_properties(
        seed in 0u64..10_000,
        c in 1usize..4,
        h in 4usize..12,
    ) {
        let x = rand_tensor(&[1, c, h, h], seed);
        let out = max_pool2d(&x, 2, 2).unwrap();
        let oh = (h - 2) / 2 + 1;
        for ci in 0..c {
            for oi in 0..oh {
                for oj in 0..oh {
                    let m = out.y.at(&[0, ci, oi, oj]);
                    let mut found = false;
                    for di in 0..2 {
                        for dj in 0..2 {
                            let v = x.at(&[0, ci, oi * 2 + di, oj * 2 + dj]);
                            prop_assert!(m >= v);
                            if m == v {
                                found = true;
                            }
                        }
                    }
                    prop_assert!(found, "max must come from the window");
                }
            }
        }
        let dy = rand_tensor(out.y.shape().dims(), seed ^ 6);
        let dx = max_pool2d_backward(&[1, c, h, h], &out, &dy).unwrap();
        prop_assert!((dx.sum() - dy.sum()).abs() < 1e-3 * (1.0 + dy.sum().abs()));
    }

    /// Derived RNG streams do not collide for distinct labels.
    #[test]
    fn rng_streams_are_distinct(seed in 0u64..10_000, l1 in 0u64..1000, l2 in 0u64..1000) {
        prop_assume!(l1 != l2);
        let parent = Xoshiro256::seed_from(seed);
        let mut a = parent.derive(l1);
        let mut b = parent.derive(l2);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        prop_assert_ne!(xs, ys);
    }

    /// Tensor reshape round-trips preserve data for any compatible split.
    #[test]
    fn reshape_round_trip(len in 1usize..64, seed in 0u64..10_000) {
        let t = rand_tensor(&[len], seed);
        let reshaped = t.clone().reshape(&[1, len]).unwrap().reshape(&[len]).unwrap();
        prop_assert_eq!(t, reshaped);
    }
}
