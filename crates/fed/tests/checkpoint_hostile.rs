//! Hostile-bytes property tests for the checkpoint format: every class
//! of damage a crash, a flaky disk, or an attacker can inflict on a
//! checkpoint file must surface as a *typed* [`CheckpointError`] —
//! never a panic, never a silent partial resume. Mirrors
//! `frame_hostile.rs` in `rte_net`.

use proptest::prelude::*;

use rte_fed::checkpoint::{
    decode_checkpoint, encode_checkpoint, Checkpoint, CheckpointError, HEADER_LEN, MAX_STATE_LEN,
};
use rte_net::crc32;
use rte_tensor::Tensor;

/// Offset of the header CRC within the header (covers bytes 0..44).
const HEADER_CRC_OFFSET: usize = HEADER_LEN - 4;

/// Builds a checkpoint whose state shape and values are drawn from the
/// proptest inputs (the vendored proptest has no composite strategies,
/// so the narrowing happens here).
fn mk_checkpoint(round: u64, seq: u64, digest: u64, planes: &[u32]) -> Checkpoint {
    let state = planes
        .iter()
        .enumerate()
        .map(|(i, &raw)| {
            let len = (raw % 7 + 1) as usize;
            let base = raw as f32;
            (
                format!("plane{i}.w"),
                Tensor::from_fn(&[len], |j| base + j as f32),
            )
        })
        .collect();
    Checkpoint {
        round,
        seq,
        digest,
        state,
    }
}

/// Re-CRCs the header after a deliberate edit, so the field validators
/// — not the CRC — are what the decoder must rely on.
fn fix_header_crc(bytes: &mut [u8]) {
    let crc = crc32(&bytes[..HEADER_CRC_OFFSET]);
    bytes[HEADER_CRC_OFFSET..HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A single flipped byte anywhere in an encoded checkpoint is
    /// always caught, by the layer responsible for that region: magic
    /// damage → `BadMagic`, other header damage → `HeaderCrc`, state
    /// or trailer damage → `StateCrc`.
    #[test]
    fn any_single_byte_flip_is_rejected_with_the_right_error(
        round in any::<u64>(),
        seq in any::<u64>(),
        digest in any::<u64>(),
        planes in collection::vec(any::<u32>(), 1..6),
        at_raw in any::<u64>(),
        mask_raw in any::<u32>(),
    ) {
        let ckpt = mk_checkpoint(round, seq, digest, &planes);
        let mut bytes = encode_checkpoint(&ckpt).unwrap();
        let at = (at_raw % bytes.len() as u64) as usize;
        let mask = (mask_raw % 255 + 1) as u8; // any non-zero flip
        bytes[at] ^= mask;
        let err = decode_checkpoint(&bytes, Some(digest)).unwrap_err();
        if at < 8 {
            prop_assert_eq!(err, CheckpointError::BadMagic);
        } else if at < HEADER_LEN {
            prop_assert_eq!(err, CheckpointError::HeaderCrc);
        } else {
            prop_assert_eq!(err, CheckpointError::StateCrc);
        }
    }

    /// Truncation at *every* byte boundary — including every section
    /// boundary (magic end, header end, state end) — is a typed
    /// `Truncated`; the decoder never slices out of bounds and never
    /// returns partial state.
    #[test]
    fn truncation_at_every_boundary_is_typed(
        round in any::<u64>(),
        seq in any::<u64>(),
        digest in any::<u64>(),
        planes in collection::vec(any::<u32>(), 1..5),
    ) {
        let bytes = encode_checkpoint(&mk_checkpoint(round, seq, digest, &planes)).unwrap();
        for cut in 0..bytes.len() {
            let err = decode_checkpoint(&bytes[..cut], Some(digest)).unwrap_err();
            prop_assert!(
                matches!(err, CheckpointError::Truncated { .. }),
                "cut at {} of {} gave {:?}",
                cut,
                bytes.len(),
                err
            );
        }
        // The untruncated original still decodes (the loop above did
        // not depend on a damaged input).
        prop_assert!(decode_checkpoint(&bytes, Some(digest)).is_ok());
    }

    /// A consistently re-CRC'd wrong version is the typed version
    /// error, and a wrong digest expectation is the typed mismatch —
    /// both *after* CRC validation, so the fields can be trusted.
    #[test]
    fn version_and_digest_mismatches_are_typed(
        round in any::<u64>(),
        seq in any::<u64>(),
        digest in any::<u64>(),
        planes in collection::vec(any::<u32>(), 1..4),
        version_raw in any::<u32>(),
        other_digest in any::<u64>(),
    ) {
        let bytes = encode_checkpoint(&mk_checkpoint(round, seq, digest, &planes)).unwrap();

        let bad_version = version_raw.max(2); // anything but 1 (and 0 for clarity)
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&bad_version.to_le_bytes());
        fix_header_crc(&mut bad);
        prop_assert_eq!(
            decode_checkpoint(&bad, Some(digest)).unwrap_err(),
            CheckpointError::UnsupportedVersion { got: bad_version }
        );

        if other_digest != digest {
            prop_assert_eq!(
                decode_checkpoint(&bytes, Some(other_digest)).unwrap_err(),
                CheckpointError::DigestMismatch { got: digest, want: other_digest }
            );
        }
    }

    /// An oversized declared state length — consistently re-CRC'd so it
    /// reaches the cap check — is rejected before any allocation, and a
    /// shrunk declared length makes the state section fail its CRC
    /// (never a silent partial parse).
    #[test]
    fn hostile_state_lengths_are_typed(
        round in any::<u64>(),
        seq in any::<u64>(),
        digest in any::<u64>(),
        planes in collection::vec(any::<u32>(), 1..4),
        shrink_raw in any::<u32>(),
    ) {
        let bytes = encode_checkpoint(&mk_checkpoint(round, seq, digest, &planes)).unwrap();
        let state_len = bytes.len() - HEADER_LEN - 4;

        let mut huge = bytes.clone();
        huge[36..44].copy_from_slice(&(MAX_STATE_LEN + 1).to_le_bytes());
        fix_header_crc(&mut huge);
        prop_assert!(matches!(
            decode_checkpoint(&huge, Some(digest)).unwrap_err(),
            CheckpointError::Oversize { .. }
        ));

        if state_len > 1 {
            let shrunk_len = (shrink_raw as usize % (state_len - 1)) as u64;
            let mut shrunk = bytes.clone();
            shrunk[36..44].copy_from_slice(&shrunk_len.to_le_bytes());
            fix_header_crc(&mut shrunk);
            let err = decode_checkpoint(&shrunk, Some(digest)).unwrap_err();
            prop_assert!(
                matches!(err, CheckpointError::StateCrc | CheckpointError::State { .. }),
                "shrunk length {} of {} gave {:?}",
                shrunk_len,
                state_len,
                err
            );
        }
    }
}
