//! Property tests for pairwise-masked secure aggregation: for *any*
//! client subset, weights, parameters, and arrival order, the masked sum
//! must equal the unmasked (quantized) weighted mean **bit for bit** —
//! the masks are pure noise that cancels exactly in the wrapping sum —
//! and any unresolved mask (dropped, extra, or round-confused client)
//! must be a typed [`FedError::SecureAggregation`], never a silently
//! noisy model.

use proptest::prelude::*;

use rte_fed::{aggregate_masked, mask_update, plain_update, FedError, SecureConfig};
use rte_nn::StateDict;
use rte_tensor::Tensor;

/// Deterministic in-test shuffle (xorshift64*), so "any arrival order"
/// is driven by one drawn seed.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for k in (1..items.len()).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        items.swap(k, (seed % (k as u64 + 1)) as usize);
    }
}

/// Builds one client's state dict from a flat data pool: a `w` tensor of
/// `len` values and a 3-value `b`, so every client shares the structure
/// aggregation requires.
fn client_state(pool: &[f32], k: usize, len: usize) -> StateDict {
    let at = k * (len + 3);
    vec![
        (
            "w".to_string(),
            Tensor::from_vec(pool[at..at + len].to_vec(), &[len]).unwrap(),
        ),
        (
            "b".to_string(),
            Tensor::from_vec(pool[at + len..at + len + 3].to_vec(), &[3]).unwrap(),
        ),
    ]
}

/// Distinct, non-contiguous client ids (the subset need not be 0..n).
fn client_ids(raw: &[u32], n: usize) -> Vec<u32> {
    (0..n).map(|k| (raw[k] % 1000) * 8 + k as u32).collect()
}

const MAX_CLIENTS: usize = 6;
const MAX_LEN: usize = 16;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The heart of the exactness argument: masked updates, arriving in
    /// an arbitrary permutation, aggregate to the *identical bits* the
    /// unmasked quantized updates produce. Privacy costs nothing.
    #[test]
    fn masked_sum_equals_plain_sum_bitwise_for_any_subset_and_order(
        n in 2usize..(MAX_CLIENTS + 1),
        len in 4usize..(MAX_LEN + 1),
        pool in collection::vec(-1.0f32..1.0, MAX_CLIENTS * (MAX_LEN + 3)),
        raw_ids in collection::vec(any::<u32>(), MAX_CLIENTS),
        raw_weights in collection::vec(1.0f64..8.0, MAX_CLIENTS),
        round in any::<u64>(),
        seed in any::<u64>(),
        order in any::<u64>(),
    ) {
        let cfg = SecureConfig { seed, ..SecureConfig::default() };
        let ids = client_ids(&raw_ids, n);
        let weight_sum: f64 = raw_weights[..n].iter().sum();

        let mut masked = Vec::new();
        let mut plain = Vec::new();
        for (k, &id) in ids.iter().enumerate() {
            let state = client_state(&pool, k, len);
            masked.push(mask_update(&state, raw_weights[k], id, &ids, round, &cfg));
            plain.push(plain_update(&state, raw_weights[k], id, round, &cfg));
        }
        shuffle(&mut masked, order);

        let from_masked = aggregate_masked(&masked, &ids, weight_sum, &cfg).unwrap();
        let from_plain = aggregate_masked(&plain, &ids, weight_sum, &cfg).unwrap();
        prop_assert_eq!(from_masked.len(), from_plain.len());
        for ((name_m, t_m), (name_p, t_p)) in from_masked.iter().zip(from_plain.iter()) {
            prop_assert_eq!(name_m, name_p);
            prop_assert_eq!(t_m.shape().dims(), t_p.shape().dims());
            for (a, b) in t_m.data().iter().zip(t_p.data().iter()) {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "{} drifted: {} vs {}", name_m, a, b
                );
            }
        }
    }

    /// Two different arrival orders of the same masked updates produce
    /// identical bits — the coordinator's sum is order-free.
    #[test]
    fn aggregation_is_invariant_under_arrival_order(
        n in 2usize..(MAX_CLIENTS + 1),
        pool in collection::vec(-1.0f32..1.0, MAX_CLIENTS * (MAX_LEN + 3)),
        raw_ids in collection::vec(any::<u32>(), MAX_CLIENTS),
        raw_weights in collection::vec(1.0f64..8.0, MAX_CLIENTS),
        order_a in any::<u64>(),
        order_b in any::<u64>(),
    ) {
        let cfg = SecureConfig::default();
        let ids = client_ids(&raw_ids, n);
        let weight_sum: f64 = raw_weights[..n].iter().sum();
        let updates: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(k, &id)| {
                mask_update(&client_state(&pool, k, 8), raw_weights[k], id, &ids, 3, &cfg)
            })
            .collect();

        let mut a = updates.clone();
        let mut b = updates;
        shuffle(&mut a, order_a);
        shuffle(&mut b, order_b);
        let sum_a = aggregate_masked(&a, &ids, weight_sum, &cfg).unwrap();
        let sum_b = aggregate_masked(&b, &ids, weight_sum, &cfg).unwrap();
        for ((_, t_a), (_, t_b)) in sum_a.iter().zip(sum_b.iter()) {
            for (x, y) in t_a.data().iter().zip(t_b.data().iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// A client that contributed to everyone's masks but whose own
    /// update never arrives leaves unresolved masks in the sum — the
    /// coordinator must refuse with a typed error naming it, for *any*
    /// choice of dropped client.
    #[test]
    fn dropped_client_is_a_typed_error(
        n in 2usize..(MAX_CLIENTS + 1),
        pool in collection::vec(-1.0f32..1.0, MAX_CLIENTS * (MAX_LEN + 3)),
        raw_ids in collection::vec(any::<u32>(), MAX_CLIENTS),
        drop_raw in any::<u64>(),
    ) {
        let cfg = SecureConfig::default();
        let ids = client_ids(&raw_ids, n);
        let dropped = (drop_raw % n as u64) as usize;
        let updates: Vec<_> = ids
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != dropped)
            .map(|(k, &id)| mask_update(&client_state(&pool, k, 6), 1.0, id, &ids, 1, &cfg))
            .collect();

        let err = aggregate_masked(&updates, &ids, n as f64, &cfg).unwrap_err();
        match err {
            FedError::SecureAggregation { reason } => {
                prop_assert!(
                    reason.contains(&format!("missing [{}]", ids[dropped])),
                    "error must name the dropped client {}: {}", ids[dropped], reason
                );
            }
            other => prop_assert!(false, "expected SecureAggregation, got {:?}", other),
        }
    }

    /// An update from a client *outside* the mask set (its masks were
    /// never counter-applied by anyone) is refused the same way.
    #[test]
    fn unexpected_client_is_a_typed_error(
        n in 2usize..MAX_CLIENTS,
        pool in collection::vec(-1.0f32..1.0, MAX_CLIENTS * (MAX_LEN + 3)),
        raw_ids in collection::vec(any::<u32>(), MAX_CLIENTS),
    ) {
        let cfg = SecureConfig::default();
        let all = client_ids(&raw_ids, n + 1);
        let (ids, intruder) = (all[..n].to_vec(), all[n]);
        let mut updates: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(k, &id)| mask_update(&client_state(&pool, k, 6), 1.0, id, &ids, 1, &cfg))
            .collect();
        updates.push(mask_update(&client_state(&pool, n, 6), 1.0, intruder, &ids, 1, &cfg));

        let err = aggregate_masked(&updates, &ids, n as f64 + 1.0, &cfg).unwrap_err();
        prop_assert!(
            matches!(&err, FedError::SecureAggregation { reason }
                if reason.contains(&format!("unexpected [{intruder}]"))),
            "expected SecureAggregation naming {}: {:?}", intruder, err
        );
    }

    /// Updates quantized for different rounds carry different mask
    /// streams; mixing them must be refused, not summed into garbage.
    #[test]
    fn mixed_rounds_are_a_typed_error(
        pool in collection::vec(-1.0f32..1.0, MAX_CLIENTS * (MAX_LEN + 3)),
        raw_ids in collection::vec(any::<u32>(), MAX_CLIENTS),
        round in 0u64..1000,
    ) {
        let cfg = SecureConfig::default();
        let ids = client_ids(&raw_ids, 3);
        let mut updates: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(k, &id)| mask_update(&client_state(&pool, k, 6), 1.0, id, &ids, round, &cfg))
            .collect();
        updates[2] = mask_update(&client_state(&pool, 2, 6), 1.0, ids[2], &ids, round + 1, &cfg);

        let err = aggregate_masked(&updates, &ids, 3.0, &cfg).unwrap_err();
        prop_assert!(
            matches!(&err, FedError::SecureAggregation { reason } if reason.contains("round")),
            "expected a mixed-round SecureAggregation error: {:?}", err
        );
    }
}
