//! Versioned, CRC'd coordinator checkpoints — kill a run, resume it,
//! get the same bits.
//!
//! A [`Checkpoint`] captures everything the resilient round loop needs
//! to continue from a completed round: the round index (which *is* the
//! RNG stream position — participant selection and per-`(round, client)`
//! training streams are derived statelessly from the config seed, so no
//! generator state needs saving), the coordinator frame sequence, a
//! digest of the aggregation-relevant config (so a checkpoint cannot be
//! resumed under a different experiment), and the global state dict in
//! the `rte_nn::serialize` format.
//!
//! # On-disk layout (version 1)
//!
//! ```text
//! offset  size  field
//!      0     8  magic "RTECKPT\0"
//!      8     4  version (u32 LE, = 1)
//!     12     8  completed round (u64 LE)
//!     20     8  coordinator frame sequence (u64 LE)
//!     28     8  config digest (u64 LE, FNV-1a over canonical fields)
//!     36     8  state length N (u64 LE, capped at 1 GiB)
//!     44     4  header CRC-32 over bytes 0..44
//!     48     N  global state (`rte_nn::serialize` bytes, magic RTESD1)
//!   48+N     4  state CRC-32 over the N state bytes
//! ```
//!
//! Validation order mirrors the frame decoder: magic → header CRC →
//! version → length cap, all before a single state byte is trusted;
//! then state CRC → digest → the hardened state-dict parser. Every
//! failure is a typed [`CheckpointError`] — a damaged or truncated file
//! can never panic the coordinator or resume silently with partial
//! state (`checkpoint_hostile.rs` drives this with byte flips and
//! truncation at every boundary).
//!
//! Files are written atomically — temp name, then `rename` — the same
//! idiom as the corpus shard writer, so a crash mid-write leaves the
//! previous checkpoint intact and never a half-written latest.

use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};

use rte_net::crc32;
use rte_nn::serialize::{read_state_dict, write_state_dict};
use rte_nn::StateDict;

use crate::{Client, FedConfig, FedError};

/// First eight bytes of every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"RTECKPT\0";
/// The format version this build writes and accepts.
pub const CHECKPOINT_VERSION: u32 = 1;
/// Hard cap on the serialized state section (defensive, like
/// `MAX_FRAME_LEN`): rejected before any allocation.
pub const MAX_STATE_LEN: u64 = 1 << 30;
/// Fixed byte length of the header, CRC included.
pub const HEADER_LEN: usize = 48;

/// Everything a resumed run needs from a completed round.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Rounds completed when the checkpoint was taken (training resumes
    /// at `round + 1`). This is also the RNG stream position: every
    /// per-round stream is derived statelessly from `(seed, round)`.
    pub round: u64,
    /// Coordinator frame sequence counter to continue from.
    pub seq: u64,
    /// [`config_digest`] of the experiment this checkpoint belongs to.
    pub digest: u64,
    /// The aggregated global state after `round`.
    pub state: StateDict,
}

/// Typed failure modes of checkpoint encode/decode/IO — one variant per
/// hostile-bytes condition, mirroring [`rte_net::NetError`]'s
/// discipline: never a panic, never a silent partial resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The first eight bytes are not the checkpoint magic.
    BadMagic,
    /// The file speaks a format version this build does not.
    UnsupportedVersion {
        /// The version the file claimed.
        got: u32,
    },
    /// The file ended before the structure it promised was complete.
    Truncated {
        /// Which section was cut short.
        context: &'static str,
    },
    /// The header checksum does not match the header bytes: none of the
    /// header fields can be trusted.
    HeaderCrc,
    /// The state checksum does not match the state bytes.
    StateCrc,
    /// The declared state length exceeds the documented cap.
    Oversize {
        /// The declared length.
        len: u64,
        /// The documented maximum.
        max: u64,
    },
    /// The checkpoint belongs to a different experiment configuration.
    DigestMismatch {
        /// The digest stored in the file.
        got: u64,
        /// The digest of the running experiment.
        want: u64,
    },
    /// The state section passed its CRC but the hardened state-dict
    /// parser rejected it.
    State {
        /// The parser's message.
        reason: String,
    },
    /// An underlying filesystem operation failed.
    Io {
        /// The OS-level message.
        reason: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic"),
            CheckpointError::UnsupportedVersion { got } => {
                write!(f, "unsupported checkpoint version {got}")
            }
            CheckpointError::Truncated { context } => {
                write!(f, "truncated checkpoint: {context}")
            }
            CheckpointError::HeaderCrc => write!(f, "checkpoint header checksum mismatch"),
            CheckpointError::StateCrc => write!(f, "checkpoint state checksum mismatch"),
            CheckpointError::Oversize { len, max } => {
                write!(f, "declared state length {len} exceeds the {max}-byte cap")
            }
            CheckpointError::DigestMismatch { got, want } => write!(
                f,
                "checkpoint config digest {got:#018x} does not match this experiment ({want:#018x})"
            ),
            CheckpointError::State { reason } => write!(f, "checkpoint state rejected: {reason}"),
            CheckpointError::Io { reason } => write!(f, "checkpoint I/O error: {reason}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            return CheckpointError::Truncated {
                context: "file ended mid-section",
            };
        }
        CheckpointError::Io {
            reason: e.to_string(),
        }
    }
}

impl From<CheckpointError> for FedError {
    fn from(e: CheckpointError) -> Self {
        FedError::Checkpoint {
            reason: e.to_string(),
        }
    }
}

/// FNV-1a, the dependency-free 64-bit digest.
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Digest of every config field a resumed run's remaining rounds depend
/// on, plus the fleet shape (client count and weights). Parallelism is
/// deliberately excluded — results must not depend on it (rule 2) — and
/// so a checkpoint taken at `RTE_THREADS=1` resumes bit-identically at
/// `RTE_THREADS=4`.
pub fn config_digest(config: &FedConfig, clients: &[Client]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325; // FNV offset basis
    for v in [
        config.rounds as u64,
        config.local_steps as u64,
        config.batch_size as u64,
        u64::from(config.lr.to_bits()),
        u64::from(config.weight_decay.to_bits()),
        u64::from(config.mu.to_bits()),
        u64::from(config.participation.to_bits()),
        config.eval_every as u64,
        config.seed,
        aggregation_tag(config),
        u64::from(config.scenario.is_some()),
        clients.len() as u64,
    ] {
        h = fnv1a(&v.to_le_bytes(), h);
    }
    for client in clients {
        h = fnv1a(&(client.weight() as u64).to_le_bytes(), h);
    }
    h
}

/// A stable numeric tag for the aggregation rule (the trim ratio's bits
/// ride in the upper half so two trimmed means with different ratios
/// digest differently).
fn aggregation_tag(config: &FedConfig) -> u64 {
    match config.aggregation {
        crate::Aggregation::WeightedMean => 1,
        crate::Aggregation::Median => 2,
        crate::Aggregation::TrimmedMean { trim_ratio } => {
            3 | (u64::from(trim_ratio.to_bits()) << 32)
        }
    }
}

/// Encodes a checkpoint into its on-disk bytes.
///
/// # Errors
///
/// [`CheckpointError::Oversize`] when the state section exceeds the
/// cap, [`CheckpointError::Io`] when state serialization fails.
pub fn encode_checkpoint(checkpoint: &Checkpoint) -> Result<Vec<u8>, CheckpointError> {
    let mut state_bytes = Vec::new();
    write_state_dict(&mut state_bytes, &checkpoint.state)?;
    if state_bytes.len() as u64 > MAX_STATE_LEN {
        return Err(CheckpointError::Oversize {
            len: state_bytes.len() as u64,
            max: MAX_STATE_LEN,
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + state_bytes.len() + 4);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&checkpoint.round.to_le_bytes());
    out.extend_from_slice(&checkpoint.seq.to_le_bytes());
    out.extend_from_slice(&checkpoint.digest.to_le_bytes());
    out.extend_from_slice(&(state_bytes.len() as u64).to_le_bytes());
    let header_crc = crc32(&out[..HEADER_LEN - 4]);
    out.extend_from_slice(&header_crc.to_le_bytes());
    let state_crc = crc32(&state_bytes);
    out.extend_from_slice(&state_bytes);
    out.extend_from_slice(&state_crc.to_le_bytes());
    Ok(out)
}

fn le_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

fn le_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes([
        bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
    ])
}

/// Decodes and fully validates checkpoint bytes. With
/// `expected_digest`, a checkpoint from a different experiment is a
/// typed [`CheckpointError::DigestMismatch`].
///
/// # Errors
///
/// A [`CheckpointError`] naming the first validation step that failed;
/// no partial state ever escapes.
pub fn decode_checkpoint(
    bytes: &[u8],
    expected_digest: Option<u64>,
) -> Result<Checkpoint, CheckpointError> {
    if bytes.len() < 8 {
        return Err(CheckpointError::Truncated { context: "magic" });
    }
    if bytes[..8] != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(CheckpointError::Truncated { context: "header" });
    }
    // Header CRC before trusting any header field (same order as the
    // frame decoder: a flipped version byte must read as CRC damage,
    // not as a bogus version).
    let stored_header_crc = le_u32(&bytes[HEADER_LEN - 4..HEADER_LEN]);
    if crc32(&bytes[..HEADER_LEN - 4]) != stored_header_crc {
        return Err(CheckpointError::HeaderCrc);
    }
    let version = le_u32(&bytes[8..12]);
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::UnsupportedVersion { got: version });
    }
    let round = le_u64(&bytes[12..20]);
    let seq = le_u64(&bytes[20..28]);
    let digest = le_u64(&bytes[28..36]);
    let state_len = le_u64(&bytes[36..44]);
    if state_len > MAX_STATE_LEN {
        return Err(CheckpointError::Oversize {
            len: state_len,
            max: MAX_STATE_LEN,
        });
    }
    let state_len = state_len as usize;
    let state_end = HEADER_LEN
        .checked_add(state_len)
        .ok_or(CheckpointError::Truncated { context: "state" })?;
    if bytes.len() < state_end + 4 {
        return Err(CheckpointError::Truncated { context: "state" });
    }
    let state_bytes = &bytes[HEADER_LEN..state_end];
    let stored_state_crc = le_u32(&bytes[state_end..state_end + 4]);
    if crc32(state_bytes) != stored_state_crc {
        return Err(CheckpointError::StateCrc);
    }
    if let Some(want) = expected_digest {
        if digest != want {
            return Err(CheckpointError::DigestMismatch { got: digest, want });
        }
    }
    let state = read_state_dict(state_bytes).map_err(|e| CheckpointError::State {
        reason: e.to_string(),
    })?;
    Ok(Checkpoint {
        round,
        seq,
        digest,
        state,
    })
}

/// The file name a round's checkpoint is written under (zero-padded so
/// lexicographic order is round order).
pub fn checkpoint_file_name(round: u64) -> String {
    format!("ckpt-{round:010}.rteckpt")
}

/// Writes `checkpoint` into `dir` atomically: encode, write to a temp
/// name, `rename` into place. Returns the final path.
///
/// # Errors
///
/// Encoding failures and [`CheckpointError::Io`] for filesystem errors.
pub fn write_checkpoint(dir: &Path, checkpoint: &Checkpoint) -> Result<PathBuf, CheckpointError> {
    let bytes = encode_checkpoint(checkpoint)?;
    fs::create_dir_all(dir)?;
    let final_path = dir.join(checkpoint_file_name(checkpoint.round));
    let tmp_path = dir.join(format!(
        ".{}.tmp-{}",
        checkpoint_file_name(checkpoint.round),
        std::process::id()
    ));
    fs::write(&tmp_path, &bytes)?;
    if let Err(e) = fs::rename(&tmp_path, &final_path) {
        let _ = fs::remove_file(&tmp_path);
        return Err(e.into());
    }
    Ok(final_path)
}

/// Reads and validates the checkpoint at `path`.
///
/// # Errors
///
/// Any [`CheckpointError`] from I/O or validation.
pub fn read_checkpoint(
    path: &Path,
    expected_digest: Option<u64>,
) -> Result<Checkpoint, CheckpointError> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode_checkpoint(&bytes, expected_digest)
}

/// Finds the newest checkpoint in `dir` — the lexicographically largest
/// `*.rteckpt` name, which by construction is the highest round. A
/// missing or empty directory is `Ok(None)`, not an error (a fresh run
/// with `--resume` simply starts from round one).
///
/// # Errors
///
/// [`CheckpointError::Io`] for directory read failures other than
/// "not found".
pub fn latest_checkpoint(dir: &Path) -> Result<Option<PathBuf>, CheckpointError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut best: Option<PathBuf> = None;
    for entry in entries {
        let path = entry?.path();
        let is_ckpt = path.extension().is_some_and(|ext| ext == "rteckpt")
            && path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-"));
        if !is_ckpt {
            continue;
        }
        // Lexicographic max over zero-padded names = numeric max.
        if best.as_ref().map_or(true, |b| path > *b) {
            best = Some(path);
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rte_tensor::Tensor;

    fn sample_state() -> StateDict {
        vec![
            (
                "layer.w".to_string(),
                Tensor::from_fn(&[2, 3], |i| i as f32),
            ),
            (
                "layer.b".to_string(),
                Tensor::from_fn(&[3], |i| -(i as f32)),
            ),
        ]
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            round: 7,
            seq: 42,
            digest: 0xDEAD_BEEF_CAFE_F00D,
            state: sample_state(),
        }
    }

    #[test]
    fn round_trips_bitwise() {
        let ckpt = sample();
        let bytes = encode_checkpoint(&ckpt).unwrap();
        let back = decode_checkpoint(&bytes, Some(ckpt.digest)).unwrap();
        assert_eq!(back.round, 7);
        assert_eq!(back.seq, 42);
        assert_eq!(back.digest, ckpt.digest);
        assert_eq!(back.state.len(), 2);
        for ((na, ta), (nb, tb)) in ckpt.state.iter().zip(back.state.iter()) {
            assert_eq!(na, nb);
            let a: Vec<u32> = ta.data().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = tb.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "state survives bit-for-bit");
        }
        // Encoding is deterministic: same checkpoint, same bytes.
        assert_eq!(bytes, encode_checkpoint(&ckpt).unwrap());
    }

    #[test]
    fn digest_mismatch_is_typed() {
        let ckpt = sample();
        let bytes = encode_checkpoint(&ckpt).unwrap();
        let err = decode_checkpoint(&bytes, Some(1)).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::DigestMismatch {
                got: ckpt.digest,
                want: 1
            }
        );
        // Without an expectation the digest is returned, not checked.
        assert!(decode_checkpoint(&bytes, None).is_ok());
    }

    #[test]
    fn atomic_write_and_latest_selection() {
        let dir = std::env::temp_dir().join(format!("rte-ckpt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(latest_checkpoint(&dir).unwrap(), None);
        let mut ckpt = sample();
        for round in [3u64, 12, 7] {
            ckpt.round = round;
            write_checkpoint(&dir, &ckpt).unwrap();
        }
        let latest = latest_checkpoint(&dir).unwrap().unwrap();
        assert!(latest.ends_with(checkpoint_file_name(12)));
        let back = read_checkpoint(&latest, Some(ckpt.digest)).unwrap();
        assert_eq!(back.round, 12);
        // No temp files left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_digest_separates_experiments() {
        use crate::methods::test_support::clients;
        let fleet = clients(3);
        let config = FedConfig::tiny();
        let a = config_digest(&config, &fleet);
        assert_eq!(a, config_digest(&config, &fleet), "digest is stable");
        let mut other = config.clone();
        other.seed ^= 1;
        assert_ne!(a, config_digest(&other, &fleet));
        let mut other = config.clone();
        other.rounds += 1;
        assert_ne!(a, config_digest(&other, &fleet));
        let mut other = config.clone();
        other.aggregation = crate::Aggregation::Median;
        assert_ne!(a, config_digest(&other, &fleet));
        assert_ne!(a, config_digest(&config, &fleet[..2]));
    }

    #[test]
    fn hostile_headers_are_typed() {
        let bytes = encode_checkpoint(&sample()).unwrap();
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(
            decode_checkpoint(&bad, None).unwrap_err(),
            CheckpointError::BadMagic
        );
        // Version flip is caught by the header CRC first (the field
        // cannot be trusted), exactly like the frame decoder.
        let mut bad = bytes.clone();
        bad[8] ^= 0x01;
        assert_eq!(
            decode_checkpoint(&bad, None).unwrap_err(),
            CheckpointError::HeaderCrc
        );
        // A *consistently re-CRC'd* future version is the version error.
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        let crc = crc32(&bad[..HEADER_LEN - 4]);
        bad[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_checkpoint(&bad, None).unwrap_err(),
            CheckpointError::UnsupportedVersion { got: 99 }
        );
        // State byte flip.
        let mut bad = bytes.clone();
        bad[HEADER_LEN + 3] ^= 0x10;
        assert_eq!(
            decode_checkpoint(&bad, None).unwrap_err(),
            CheckpointError::StateCrc
        );
        // Truncations at a few obvious boundaries.
        for cut in [0, 4, 8, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
            let err = decode_checkpoint(&bytes[..cut], None).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Truncated { .. }),
                "cut at {cut} gave {err}"
            );
        }
        // Oversize state length, re-CRC'd so it reaches the cap check.
        let mut bad = bytes.clone();
        bad[36..44].copy_from_slice(&(MAX_STATE_LEN + 1).to_le_bytes());
        let crc = crc32(&bad[..HEADER_LEN - 4]);
        bad[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_checkpoint(&bad, None).unwrap_err(),
            CheckpointError::Oversize { .. }
        ));
    }
}
