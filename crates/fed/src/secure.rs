//! Pairwise-masked secure aggregation with exact fixed-point arithmetic.
//!
//! The paper's clients refuse to share raw data; this module also hides
//! individual *updates*. Each pair of participants `(i, j)` with
//! `i < j` derives a shared mask stream from the public secure seed;
//! client `i` adds the stream to its quantized update and client `j`
//! subtracts it. In the sum over the full participant set every mask
//! appears exactly once with `+` and once with `-`, so they cancel
//! *identically* — not approximately — because the arithmetic is
//! integer, wrapping mod 2^64.
//!
//! Exactness argument: floats are quantized as
//! `q = round(x · w_k · 2^scale_bits)` into `i64` (then reinterpreted
//! `u64`). Wrapping addition mod 2^64 is commutative and associative,
//! so the masked sum equals the unmasked sum for *any* arrival-order
//! permutation and *any* participant subset the masks were generated
//! over. The coordinator dequantizes once, which makes the secure path
//! bit-identical to the plain quantized path. If the received set
//! differs from the mask set (a dropped client), the masks do *not*
//! cancel; the coordinator detects this before summing and surfaces a
//! typed [`FedError::SecureAggregation`] instead of a silently-wrong
//! aggregate.

use rte_nn::StateDict;
use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

use crate::FedError;

/// Configuration for pairwise-masked aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecureConfig {
    /// Public seed the pairwise mask streams derive from. All
    /// participants and the coordinator must agree on it.
    pub seed: u64,
    /// Fixed-point precision: values are scaled by `2^scale_bits`
    /// before rounding. 20 bits keeps |x·w| < 2^43 exact for fleets in
    /// this repo's range while leaving headroom in `i64`.
    pub scale_bits: u32,
}

impl Default for SecureConfig {
    fn default() -> Self {
        SecureConfig {
            seed: 0x5EC0_AEE5,
            scale_bits: 20,
        }
    }
}

impl SecureConfig {
    /// The fixed-point scale factor `2^scale_bits`.
    pub fn scale(&self) -> f64 {
        (1u64 << self.scale_bits) as f64
    }
}

/// One client's quantized (and possibly masked) update planes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskedUpdate {
    /// Fleet position of the producing client.
    pub client: u32,
    /// Round the masks were derived for.
    pub round: u64,
    /// Per-parameter planes: name, tensor dims, quantized words in
    /// row-major order.
    pub entries: Vec<(String, Vec<usize>, Vec<u64>)>,
}

/// Caps mirroring `rte_nn::serialize` — a forged header must not drive
/// allocation.
const MAX_ENTRIES: u64 = 1 << 16;
const MAX_NAME_LEN: u64 = 1 << 12;
const MAX_RANK: u64 = 16;
const MAX_WORDS: u64 = 1 << 24;

impl MaskedUpdate {
    /// Appends the wire encoding of this update to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.client.to_le_bytes());
        buf.extend_from_slice(&self.round.to_le_bytes());
        buf.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for (name, dims, words) in &self.entries {
            buf.extend_from_slice(&(name.len() as u64).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
            buf.extend_from_slice(&(dims.len() as u64).to_le_bytes());
            for d in dims {
                buf.extend_from_slice(&(*d as u64).to_le_bytes());
            }
            buf.extend_from_slice(&(words.len() as u64).to_le_bytes());
            for w in words {
                buf.extend_from_slice(&w.to_le_bytes());
            }
        }
    }

    /// Decodes an update from `bytes`, rejecting truncation, trailing
    /// garbage, and forged counts with typed errors.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::Transport`] on any structural defect.
    pub fn decode(bytes: &[u8]) -> Result<MaskedUpdate, FedError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize, what: &str| -> Result<&[u8], FedError> {
            let end = pos.checked_add(n).ok_or_else(|| bad(what))?;
            if end > bytes.len() {
                return Err(bad(what));
            }
            let out = &bytes[*pos..end];
            *pos = end;
            Ok(out)
        };
        fn bad(what: &str) -> FedError {
            FedError::Transport {
                reason: format!("truncated masked update: {what}"),
            }
        }
        fn capped(what: &str, got: u64, cap: u64) -> FedError {
            FedError::Transport {
                reason: format!("masked update {what} {got} exceeds cap {cap}"),
            }
        }
        let u32_at = |pos: &mut usize, what: &str| -> Result<u32, FedError> {
            let b = take(pos, 4, what)?;
            Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        };
        let u64_at = |pos: &mut usize, what: &str| -> Result<u64, FedError> {
            let b = take(pos, 8, what)?;
            Ok(u64::from_le_bytes([
                b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
            ]))
        };

        let client = u32_at(&mut pos, "client id")?;
        let round = u64_at(&mut pos, "round")?;
        let n_entries = u64_at(&mut pos, "entry count")?;
        if n_entries > MAX_ENTRIES {
            return Err(capped("entry count", n_entries, MAX_ENTRIES));
        }
        let mut entries = Vec::with_capacity(n_entries as usize);
        for _ in 0..n_entries {
            let name_len = u64_at(&mut pos, "name length")?;
            if name_len > MAX_NAME_LEN {
                return Err(capped("name length", name_len, MAX_NAME_LEN));
            }
            let name_bytes = take(&mut pos, name_len as usize, "name bytes")?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| FedError::Transport {
                    reason: "masked update name is not UTF-8".into(),
                })?
                .to_string();
            let rank = u64_at(&mut pos, "rank")?;
            if rank > MAX_RANK {
                return Err(capped("rank", rank, MAX_RANK));
            }
            let mut dims = Vec::with_capacity(rank as usize);
            let mut elems: u64 = 1;
            for _ in 0..rank {
                let d = u64_at(&mut pos, "dim")?;
                elems = elems
                    .checked_mul(d)
                    .ok_or_else(|| capped("element count", u64::MAX, MAX_WORDS))?;
                dims.push(d as usize);
            }
            let n_words = u64_at(&mut pos, "word count")?;
            if n_words > MAX_WORDS {
                return Err(capped("word count", n_words, MAX_WORDS));
            }
            if n_words != elems {
                return Err(FedError::Transport {
                    reason: format!(
                        "masked update word count {n_words} does not match shape \
                         ({elems} elements)"
                    ),
                });
            }
            let mut words = Vec::with_capacity(n_words as usize);
            for _ in 0..n_words {
                words.push(u64_at(&mut pos, "word")?);
            }
            entries.push((name, dims, words));
        }
        if pos != bytes.len() {
            return Err(FedError::Transport {
                reason: "masked update carries unexpected trailing bytes".into(),
            });
        }
        Ok(MaskedUpdate {
            client,
            round,
            entries,
        })
    }
}

/// Quantizes one weighted float value into a wrapping word.
fn quantize(x: f32, weight: f64, scale: f64) -> u64 {
    ((x as f64 * weight * scale).round() as i64) as u64
}

/// The shared mask stream for the ordered pair `(i, j)` in `round`.
///
/// Both endpoints derive the identical stream from the public secure
/// seed; `i` adds it, `j` subtracts it, so the pair contributes zero to
/// the sum over the full participant set.
fn pair_stream(cfg: &SecureConfig, round: u64, i: u32, j: u32) -> Xoshiro256 {
    Xoshiro256::seed_from(cfg.seed)
        .derive(round)
        .derive(i as u64)
        .derive(j as u64)
}

/// Quantizes `state` (scaled by `weight`) without masking. This is the
/// reference path: secure aggregation is *exact* when the masked sum
/// equals the sum of these plain updates bit-for-bit.
pub fn plain_update(
    state: &StateDict,
    weight: f64,
    client: u32,
    round: u64,
    cfg: &SecureConfig,
) -> MaskedUpdate {
    let scale = cfg.scale();
    let entries = state
        .iter()
        .map(|(name, tensor)| {
            let words = tensor
                .data()
                .iter()
                .map(|&x| quantize(x, weight, scale))
                .collect();
            (name.clone(), tensor.shape().dims().to_vec(), words)
        })
        .collect();
    MaskedUpdate {
        client,
        round,
        entries,
    }
}

/// Quantizes `state` and applies the pairwise masks for `me` over
/// `participants` (0-based fleet indices, any order; masks are derived
/// per ordered pair, so order does not matter).
pub fn mask_update(
    state: &StateDict,
    weight: f64,
    me: u32,
    participants: &[u32],
    round: u64,
    cfg: &SecureConfig,
) -> MaskedUpdate {
    let mut update = plain_update(state, weight, me, round, cfg);
    for &other in participants {
        if other == me {
            continue;
        }
        let (i, j) = if me < other { (me, other) } else { (other, me) };
        let mut stream = pair_stream(cfg, round, i, j);
        // Client i adds the stream, client j subtracts it.
        let add = me == i;
        for (_, _, words) in &mut update.entries {
            for w in words.iter_mut() {
                let m = stream.next_u64();
                *w = if add {
                    w.wrapping_add(m)
                } else {
                    w.wrapping_sub(m)
                };
            }
        }
    }
    update
}

/// Sums masked updates and dequantizes into a weighted-mean state dict.
///
/// `weight_sum` is the sum of the participating clients' aggregation
/// weights (the same denominator the plain weighted mean uses).
///
/// # Errors
///
/// - [`FedError::SecureAggregation`] when the received client set
///   differs from `participants` (unresolved masks), or when the set is
///   empty or rounds disagree.
/// - [`FedError::AggregationMismatch`] when entry structure differs
///   between clients.
pub fn aggregate_masked(
    updates: &[MaskedUpdate],
    participants: &[u32],
    weight_sum: f64,
    cfg: &SecureConfig,
) -> Result<StateDict, FedError> {
    if updates.is_empty() {
        return Err(FedError::SecureAggregation {
            reason: "no updates to aggregate".into(),
        });
    }
    let round = updates[0].round;
    let mut expected: Vec<u32> = participants.to_vec();
    expected.sort_unstable();
    let mut received: Vec<u32> = updates.iter().map(|u| u.client).collect();
    received.sort_unstable();
    if expected != received {
        let missing: Vec<u32> = expected
            .iter()
            .copied()
            .filter(|c| !received.contains(c))
            .collect();
        let unexpected: Vec<u32> = received
            .iter()
            .copied()
            .filter(|c| !expected.contains(c))
            .collect();
        return Err(FedError::SecureAggregation {
            reason: format!(
                "received clients {received:?} do not match mask set \
                 {expected:?} (missing {missing:?}, unexpected {unexpected:?}); \
                 pairwise masks cannot cancel"
            ),
        });
    }
    for u in updates {
        if u.round != round {
            return Err(FedError::SecureAggregation {
                reason: format!(
                    "mixed rounds in aggregation: client {} sent round {} \
                     (expected {round})",
                    u.client, u.round
                ),
            });
        }
    }

    let first = &updates[0];
    let mut sums: Vec<(String, Vec<usize>, Vec<u64>)> = first
        .entries
        .iter()
        .map(|(n, d, w)| (n.clone(), d.clone(), w.clone()))
        .collect();
    for u in &updates[1..] {
        if u.entries.len() != sums.len() {
            return Err(FedError::AggregationMismatch {
                reason: format!(
                    "client {} sent {} planes, expected {}",
                    u.client,
                    u.entries.len(),
                    sums.len()
                ),
            });
        }
        for ((name, dims, acc), (other_name, other_dims, words)) in sums.iter_mut().zip(&u.entries)
        {
            if name != other_name || dims != other_dims {
                return Err(FedError::AggregationMismatch {
                    reason: format!(
                        "client {} plane {other_name} does not match {name}",
                        u.client
                    ),
                });
            }
            for (a, w) in acc.iter_mut().zip(words) {
                *a = a.wrapping_add(*w);
            }
        }
    }

    if weight_sum <= 0.0 {
        return Err(FedError::SecureAggregation {
            reason: format!("non-positive weight sum {weight_sum}"),
        });
    }
    let denom = cfg.scale() * weight_sum;
    let mut out = StateDict::with_capacity(sums.len());
    for (name, dims, words) in sums {
        let data: Vec<f32> = words
            .iter()
            .map(|&w| ((w as i64) as f64 / denom) as f32)
            .collect();
        let tensor = Tensor::from_vec(data, &dims)?;
        out.push((name, tensor));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sd(seed: u64) -> StateDict {
        let mut rng = Xoshiro256::seed_from(seed);
        vec![
            (
                "w".into(),
                Tensor::from_fn(&[3, 2], |_| rng.uniform() - 0.5),
            ),
            ("b".into(), Tensor::from_fn(&[3], |_| rng.uniform() - 0.5)),
        ]
    }

    #[test]
    fn masked_update_codec_round_trips() {
        let cfg = SecureConfig::default();
        let u = mask_update(&sd(1), 2.0, 0, &[0, 1, 2], 5, &cfg);
        let mut buf = Vec::new();
        u.encode_into(&mut buf);
        let back = MaskedUpdate::decode(&buf).unwrap();
        assert_eq!(back, u);
        // Truncation at every byte boundary is a typed error, never a panic.
        for cut in 0..buf.len() {
            assert!(MaskedUpdate::decode(&buf[..cut]).is_err(), "cut {cut}");
        }
        buf.push(0);
        assert!(MaskedUpdate::decode(&buf).is_err());
    }

    #[test]
    fn masks_cancel_exactly() {
        let cfg = SecureConfig::default();
        let parts: Vec<u32> = vec![0, 1, 2, 3];
        let states: Vec<StateDict> = (0..4).map(|k| sd(k as u64 + 10)).collect();
        let weights = [1.0, 3.0, 2.0, 5.0];
        let weight_sum: f64 = weights.iter().sum();

        let masked: Vec<MaskedUpdate> = parts
            .iter()
            .map(|&k| mask_update(&states[k as usize], weights[k as usize], k, &parts, 7, &cfg))
            .collect();
        let plain: Vec<MaskedUpdate> = parts
            .iter()
            .map(|&k| plain_update(&states[k as usize], weights[k as usize], k, 7, &cfg))
            .collect();

        let a = aggregate_masked(&masked, &parts, weight_sum, &cfg).unwrap();
        let b = aggregate_masked(&plain, &parts, weight_sum, &cfg).unwrap();
        assert_eq!(a.len(), b.len());
        for ((an, at), (bn, bt)) in a.iter().zip(&b) {
            assert_eq!(an, bn);
            for (x, y) in at.data().iter().zip(bt.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn dropped_client_is_a_typed_error() {
        let cfg = SecureConfig::default();
        let parts: Vec<u32> = vec![0, 1, 2];
        let masked: Vec<MaskedUpdate> = [0u32, 1]
            .iter()
            .map(|&k| mask_update(&sd(k as u64), 1.0, k, &parts, 0, &cfg))
            .collect();
        let err = aggregate_masked(&masked, &parts, 2.0, &cfg).unwrap_err();
        assert!(matches!(err, FedError::SecureAggregation { .. }), "{err}");
        assert!(err.to_string().contains("missing [2]"), "{err}");
    }
}
