//! Federated-learning framework for the decentralized routability
//! estimation reproduction.
//!
//! Implements the paper's §4 training machinery on top of `rte-nn`:
//!
//! - [`params`] — weighted state-dict aggregation (the developer's
//!   server-side step in Fig. 1) plus the partition/arithmetic helpers the
//!   personalization methods need,
//! - [`LocalTrainer`] — client-side minibatch Adam with the FedProx
//!   proximal term of Eq. 1,
//! - [`eval`] — the parallel multi-metric evaluation subsystem:
//!   [`EvalReport`] (ROC AUC + average precision + confusion at the 0.5
//!   deployment threshold + score histograms) and the [`Evaluator`] that
//!   fans per-client evaluation out to worker threads,
//! - [`methods`] — the eight training methods of Tables 3-5:
//!   local baselines, centralized training, FedProx, FedProx-LG, IFCA,
//!   FedProx + fine-tuning, assigned clustering and α-portion sync,
//! - [`scenario`] — hostile-client scenario injection: per-client data
//!   poisoning and Byzantine update corruption, per-round availability
//!   traces, and the tolerant [`run_scenario`] grid runner whose robust
//!   defenses ([`Aggregation::Median`], [`Aggregation::TrimmedMean`])
//!   live in [`params`],
//! - [`stream`] — bounded-memory data feeding: [`StreamingClientSet`]
//!   lets every method train and evaluate a corpus that never fits in
//!   memory, bit-identically to the in-memory path,
//! - [`wire`] / [`federation`] — a federated round as an exchange of
//!   serialized parameter deltas over an `rte_net` [`rte_net::Transport`]:
//!   typed [`wire::Message`]s on hardened frames, the client-side
//!   [`ClientSession`], and the coordinator loop [`run_rounds_over`]
//!   that is bit-identical to the in-process FedProx path,
//! - [`secure`] — pairwise-masked secure aggregation with exact
//!   fixed-point arithmetic (the coordinator recovers only the sum),
//! - [`fedasync`] — buffered staleness-weighted asynchronous rounds on
//!   a seeded virtual clock (determinism rule 8), with the wall-clock
//!   opt-out,
//! - [`resilient`] — the fault-tolerant coordinator loop: per-client
//!   deadlines, seeded retries, and quorum-based graceful degradation
//!   (missing clients become typed [`RoundEvent`]s, survivors reweight
//!   deterministically) — built to pair with `rte_net`'s seeded
//!   [`rte_net::ChaosTransport`] (determinism rule 9),
//! - [`checkpoint`] — versioned CRC'd coordinator checkpoints written
//!   atomically, so a killed run resumes bit-identically.
//!
//! The default simulation is single-process: clients are [`Client`]
//! values holding private train/test splits (in-memory tensors or
//! streamed chunks), and "communication" is the movement of
//! [`rte_nn::StateDict`]s — mirroring the restriction that only model
//! parameters, never data, leave a client. The `rte-coordinator` /
//! `rte-client` binaries run the same rounds across real process
//! boundaries over Unix-domain sockets.
//!
//! # Example: a minimal end-to-end federated run
//!
//! Two clients with learnable synthetic data, a tiny FLNet, and two
//! FedProx communication rounds — the full pipeline in miniature:
//!
//! ```
//! use rte_fed::{methods, Client, ClientSet, FedConfig, Method, ModelFactory};
//! use rte_nn::models::{FlNet, FlNetConfig};
//! use rte_tensor::rng::Xoshiro256;
//! use rte_tensor::Tensor;
//!
//! // A client whose labels depend on feature channel 0 (so there is
//! // something to learn and both label classes are present).
//! fn client(id: usize, seed: u64) -> Result<Client, rte_fed::FedError> {
//!     let make = |salt: u64| -> Result<ClientSet, rte_fed::FedError> {
//!         let mut rng = Xoshiro256::seed_from(seed ^ salt);
//!         let x = Tensor::from_fn(&[4, 2, 8, 8], |_| rng.uniform());
//!         let mut y = Tensor::zeros(&[4, 1, 8, 8]);
//!         for n in 0..4 {
//!             for i in 0..64 {
//!                 let hot = x.data()[n * 128 + i] > 0.5;
//!                 y.data_mut()[n * 64 + i] = f32::from(u8::from(hot));
//!             }
//!         }
//!         ClientSet::new(x, y)
//!     };
//!     Ok(Client::new(id, make(0xA)?, make(0xB)?))
//! }
//!
//! let clients = vec![client(1, 7)?, client(2, 8)?];
//! let factory: ModelFactory = Box::new(|seed| {
//!     let mut rng = Xoshiro256::seed_from(seed);
//!     let config = FlNetConfig { in_channels: 2, hidden: 4, kernel: 3, depth: 2 };
//!     Box::new(FlNet::new(config, &mut rng))
//! });
//! let outcome = methods::run_method(
//!     Method::FedProx,
//!     &clients,
//!     &factory,
//!     &FedConfig::tiny(), // 2 rounds × 3 local steps
//! )?;
//! assert_eq!(outcome.per_client.len(), 2);
//! assert!(outcome.average_auc.is_finite());
//! # Ok::<(), rte_fed::FedError>(())
//! ```
//!
//! To stream the same run out-of-core, back each split with a
//! [`StreamingClientSet`] (`ClientSet::streaming`) — every method, and
//! the example above, behaves identically.

// Pure safe Rust; all workspace `unsafe` lives in `rte_tensor::simd`
// (rte-lint rule L1 enforces this).
#![forbid(unsafe_code)]
// Belt and braces: the workspace lint table already warns on missing
// docs, but this crate is the public federated API surface, so the
// requirement is restated locally.
#![warn(missing_docs)]

pub mod checkpoint;
mod client;
mod config;
pub mod cost;
mod error;
pub mod eval;
pub mod fedasync;
pub mod federation;
pub mod methods;
pub mod params;
pub mod resilient;
pub mod scenario;
pub mod secure;
pub mod stream;
mod trainer;
pub mod wire;

pub use checkpoint::{
    config_digest, latest_checkpoint, read_checkpoint, write_checkpoint, Checkpoint,
    CheckpointError,
};
pub use client::{Client, ClientSet};
pub use config::{Aggregation, FedConfig, Method};
pub use error::FedError;
pub use eval::{evaluate_auc, evaluate_report, EvalReport, Evaluator};
pub use fedasync::{
    render_async_history, run_fedasync, run_fedasync_wall, AsyncConfig, AsyncRoundRecord,
    LinkExecutor, LocalExecutor, TrainExecutor,
};
pub use federation::{
    local_links, run_rounds_over, ClientSession, LocalLink, ServeExit, WireStats,
};
pub use methods::{MethodOutcome, RoundRecord};
pub use resilient::{
    run_rounds_resilient, FaultPolicy, ResilientOutcome, ResumePoint, RoundEvent, RoundHook,
};
pub use rte_tensor::parallel::Parallelism;
pub use scenario::{run_scenario, Attack, ScenarioConfig, ScenarioOutcome};
pub use secure::{aggregate_masked, mask_update, plain_update, MaskedUpdate, SecureConfig};
pub use stream::{MappedClientSet, RecordSource, StreamingClientSet};
pub use trainer::LocalTrainer;

use rte_nn::Layer;

/// Deterministic model constructor: maps a seed to a freshly initialized
/// model. All training methods build their models through one of these so
/// every client (and every cluster in IFCA) starts from an agreed
/// initialization.
///
/// `Send + Sync` because the round loop invokes the factory from worker
/// threads (one scratch model per worker) when
/// [`FedConfig::parallelism`] allows more than one thread.
pub type ModelFactory = Box<dyn Fn(u64) -> Box<dyn Layer> + Send + Sync>;
