//! Federated-learning framework for the decentralized routability
//! estimation reproduction.
//!
//! Implements the paper's §4 training machinery on top of `rte-nn`:
//!
//! - [`params`] — weighted state-dict aggregation (the developer's
//!   server-side step in Fig. 1) plus the partition/arithmetic helpers the
//!   personalization methods need,
//! - [`LocalTrainer`] — client-side minibatch Adam with the FedProx
//!   proximal term of Eq. 1,
//! - [`eval`] — the parallel multi-metric evaluation subsystem:
//!   [`EvalReport`] (ROC AUC + average precision + confusion at the 0.5
//!   deployment threshold + score histograms) and the [`Evaluator`] that
//!   fans per-client evaluation out to worker threads,
//! - [`methods`] — the eight training methods of Tables 3-5:
//!   local baselines, centralized training, FedProx, FedProx-LG, IFCA,
//!   FedProx + fine-tuning, assigned clustering and α-portion sync.
//!
//! The simulation is single-process: clients are [`Client`] values holding
//! private train/test tensors, and "communication" is the movement of
//! [`rte_nn::StateDict`]s — mirroring the restriction that only model
//! parameters, never data, leave a client.
//!
//! # Example
//!
//! ```no_run
//! use rte_fed::{methods, Client, ClientSet, FedConfig, Method, ModelFactory};
//! use rte_nn::models::{build_model, ModelKind, ModelScale};
//! use rte_tensor::rng::Xoshiro256;
//!
//! # fn clients() -> Vec<Client> { Vec::new() }
//! let factory: ModelFactory = Box::new(|seed| {
//!     let mut rng = Xoshiro256::seed_from(seed);
//!     build_model(ModelKind::FlNet, 6, ModelScale::Scaled, &mut rng)
//! });
//! let mut clients = clients();
//! let outcome = methods::run_method(
//!     Method::FedProx,
//!     &mut clients,
//!     &factory,
//!     &FedConfig::scaled(),
//! )?;
//! println!("average AUC {:.2}", outcome.average_auc);
//! # Ok::<(), rte_fed::FedError>(())
//! ```

mod client;
mod config;
pub mod cost;
mod error;
pub mod eval;
pub mod methods;
pub mod params;
mod trainer;

pub use client::{Client, ClientSet};
pub use config::{FedConfig, Method};
pub use error::FedError;
pub use eval::{evaluate_auc, evaluate_report, EvalReport, Evaluator};
pub use methods::{MethodOutcome, RoundRecord};
pub use rte_tensor::parallel::Parallelism;
pub use trainer::LocalTrainer;

use rte_nn::Layer;

/// Deterministic model constructor: maps a seed to a freshly initialized
/// model. All training methods build their models through one of these so
/// every client (and every cluster in IFCA) starts from an agreed
/// initialization.
///
/// `Send + Sync` because the round loop invokes the factory from worker
/// threads (one scratch model per worker) when
/// [`FedConfig::parallelism`] allows more than one thread.
pub type ModelFactory = Box<dyn Fn(u64) -> Box<dyn Layer> + Send + Sync>;
