//! Error type for the federated-learning framework.

use std::error::Error;
use std::fmt;

use rte_metrics::MetricsError;
use rte_nn::NnError;
use rte_tensor::TensorError;

/// Error produced by federated training or evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FedError {
    /// A model operation failed.
    Nn(NnError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// A metric computation failed (e.g. single-class test split).
    Metrics(MetricsError),
    /// A federated configuration was invalid.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// State dicts to aggregate were structurally incompatible.
    AggregationMismatch {
        /// Human-readable reason.
        reason: String,
    },
    /// A streaming data source failed mid-read (I/O error, checksum
    /// mismatch, out-of-range chunk).
    Stream {
        /// Human-readable reason (carries the storage layer's message).
        reason: String,
    },
    /// A wire-layer operation failed: frame damage, a closed peer, or a
    /// protocol violation (unexpected kind, wrong round, bad client id).
    /// Carries the transport layer's typed message.
    Transport {
        /// Human-readable reason (the `NetError`'s rendering).
        reason: String,
    },
    /// Secure aggregation could not complete exactly: the received
    /// update set differs from the participant set the pairwise masks
    /// were generated over, so the masks do not cancel. Surfaced as a
    /// typed error instead of a silently-wrong aggregate.
    SecureAggregation {
        /// What went wrong (which clients are missing or unexpected).
        reason: String,
    },
    /// A resilient round ended with fewer surviving updates than the
    /// configured quorum — the coordinator refuses to aggregate a
    /// minority and aborts with the shortfall spelled out.
    QuorumLost {
        /// The round that fell short.
        round: usize,
        /// Updates that actually arrived.
        got: usize,
        /// The configured `min_quorum`.
        need: usize,
    },
    /// A checkpoint file could not be written, read, or validated.
    /// Carries the checkpoint layer's typed message ([`crate::checkpoint`]).
    Checkpoint {
        /// Human-readable reason (the `CheckpointError`'s rendering).
        reason: String,
    },
    /// One client's deployed model produced degenerate test scores
    /// (typically NaN logits after training blew up under attack). The
    /// federation as a whole is fine — tolerant callers render this as a
    /// "diverged" grid cell instead of aborting the run.
    ClientDiverged {
        /// Position of the diverged client in the harness' client list.
        client: usize,
        /// What the metrics layer rejected (e.g. "scores contain NaN").
        reason: String,
    },
}

impl fmt::Display for FedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FedError::Nn(e) => write!(f, "model error: {e}"),
            FedError::Tensor(e) => write!(f, "tensor error: {e}"),
            FedError::Metrics(e) => write!(f, "metrics error: {e}"),
            FedError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            FedError::AggregationMismatch { reason } => {
                write!(f, "aggregation mismatch: {reason}")
            }
            FedError::Stream { reason } => write!(f, "streaming error: {reason}"),
            FedError::Transport { reason } => write!(f, "transport error: {reason}"),
            FedError::SecureAggregation { reason } => {
                write!(f, "secure aggregation failed: {reason}")
            }
            FedError::QuorumLost { round, got, need } => {
                write!(
                    f,
                    "round {round} lost quorum: {got} of {need} required updates arrived"
                )
            }
            FedError::Checkpoint { reason } => write!(f, "checkpoint error: {reason}"),
            FedError::ClientDiverged { client, reason } => {
                write!(f, "client {client} diverged: {reason}")
            }
        }
    }
}

impl Error for FedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FedError::Nn(e) => Some(e),
            FedError::Tensor(e) => Some(e),
            FedError::Metrics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for FedError {
    fn from(e: NnError) -> Self {
        FedError::Nn(e)
    }
}

impl From<TensorError> for FedError {
    fn from(e: TensorError) -> Self {
        FedError::Tensor(e)
    }
}

impl From<MetricsError> for FedError {
    fn from(e: MetricsError) -> Self {
        FedError::Metrics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: FedError = NnError::StateDictMismatch { reason: "x".into() }.into();
        assert!(e.to_string().contains("model error"));
        assert!(Error::source(&e).is_some());

        let e: FedError = MetricsError::NanScore.into();
        assert!(e.to_string().contains("metrics"));

        let e = FedError::InvalidConfig {
            reason: "rounds = 0".into(),
        };
        assert!(e.to_string().contains("rounds = 0"));
        assert!(Error::source(&e).is_none());

        let e = FedError::ClientDiverged {
            client: 3,
            reason: "scores contain NaN".into(),
        };
        assert_eq!(e.to_string(), "client 3 diverged: scores contain NaN");
        assert!(Error::source(&e).is_none());

        let e = FedError::QuorumLost {
            round: 4,
            got: 1,
            need: 3,
        };
        assert_eq!(
            e.to_string(),
            "round 4 lost quorum: 1 of 3 required updates arrived"
        );

        let e = FedError::Checkpoint {
            reason: "bad magic".into(),
        };
        assert!(e.to_string().contains("checkpoint"));
    }
}
