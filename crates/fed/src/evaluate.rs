//! Model evaluation on a client's test split.

use rte_metrics::roc_auc;
use rte_nn::Layer;

use crate::{ClientSet, FedError};

/// Evaluates a model's ROC AUC on `set`, forwarding in evaluation mode
/// (BatchNorm running statistics, the paper's deployment condition) in
/// batches of `batch_size`.
///
/// # Errors
///
/// Returns [`FedError`] on forward errors, an empty set, or a test split
/// containing only one class.
pub fn evaluate_auc(
    model: &mut dyn Layer,
    set: &ClientSet,
    batch_size: usize,
) -> Result<f64, FedError> {
    if set.is_empty() {
        return Err(FedError::InvalidConfig {
            reason: "evaluation on empty client set".into(),
        });
    }
    let n = set.len();
    let mut scores = Vec::with_capacity(set.labels().numel());
    let mut labels = Vec::with_capacity(set.labels().numel());
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size.max(1)).min(n);
        let indices: Vec<usize> = (start..end).collect();
        let (x, y) = set.minibatch(&indices);
        let pred = model.forward(&x, false)?;
        scores.extend_from_slice(pred.data());
        labels.extend(y.data().iter().map(|&v| v > 0.5));
        start = end;
    }
    Ok(roc_auc(&scores, &labels)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rte_nn::{NnError, Param};
    use rte_tensor::Tensor;

    /// A fake "model" that echoes one input channel as its score map —
    /// lets us hand-construct AUC outcomes.
    struct EchoChannel(usize);

    impl Layer for EchoChannel {
        fn forward(&mut self, x: &Tensor, _training: bool) -> Result<Tensor, NnError> {
            let (n, _, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
            let mut y = Tensor::zeros(&[n, 1, h, w]);
            let cs = h * w;
            let c_total = x.dim(1);
            for ni in 0..n {
                let src = &x.data()[(ni * c_total + self.0) * cs..(ni * c_total + self.0 + 1) * cs];
                y.data_mut()[ni * cs..(ni + 1) * cs].copy_from_slice(src);
            }
            Ok(y)
        }

        fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
            Ok(dy.clone())
        }

        fn visit_params(&mut self, _p: &str, _f: &mut dyn FnMut(String, &mut Param)) {}
    }

    fn set_with_labels_equal_to_channel0() -> ClientSet {
        // Channel 0 is exactly the label → perfect AUC.
        let mut x = Tensor::zeros(&[2, 2, 2, 2]);
        let mut y = Tensor::zeros(&[2, 1, 2, 2]);
        for i in 0..8 {
            let v = if i % 3 == 0 { 1.0 } else { 0.0 };
            x.data_mut()[(i / 4) * 8 + (i % 4)] = v;
            y.data_mut()[i] = v;
        }
        ClientSet::new(x, y).unwrap()
    }

    #[test]
    fn perfect_predictor_scores_one() {
        let set = set_with_labels_equal_to_channel0();
        let mut model = EchoChannel(0);
        let auc = evaluate_auc(&mut model, &set, 1).unwrap();
        assert_eq!(auc, 1.0);
    }

    #[test]
    fn uninformative_predictor_scores_half() {
        let set = set_with_labels_equal_to_channel0();
        // Channel 1 is all zeros → constant score → AUC 0.5 via midranks.
        let mut model = EchoChannel(1);
        let auc = evaluate_auc(&mut model, &set, 4).unwrap();
        assert_eq!(auc, 0.5);
    }

    #[test]
    fn batch_size_does_not_change_result() {
        let set = set_with_labels_equal_to_channel0();
        let a = evaluate_auc(&mut EchoChannel(0), &set, 1).unwrap();
        let b = evaluate_auc(&mut EchoChannel(0), &set, 64).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_class_split_is_error() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let y = Tensor::zeros(&[1, 1, 2, 2]);
        let set = ClientSet::new(x, y).unwrap();
        assert!(matches!(
            evaluate_auc(&mut EchoChannel(0), &set, 2),
            Err(FedError::Metrics(_))
        ));
    }
}
