//! State-dict arithmetic: the server side of federated learning.
//!
//! The developer in the paper's Fig. 1 computes
//! `W^{r+1} = Σ_k (n_k / n) · w_k^r`; [`weighted_average`] implements
//! exactly that over [`StateDict`]s. The personalization methods build on
//! the same primitives: [`partition`] splits a dict into global/local
//! parts for FedProx-LG, and [`blend`] mixes a client's own parameters
//! with the rest-of-fleet average for α-portion sync.
//!
//! For federations with clients the server cannot trust,
//! [`coordinate_median`] and [`trimmed_mean`] provide Byzantine-robust
//! alternatives, and [`aggregate`] dispatches on
//! [`Aggregation`]. All reductions here are
//! **fixed-order and coordinator-only** (determinism-contract rule 6):
//! per-coordinate values are gathered in client order and sorted with a
//! NaN-last total order, so results are bit-identical at any thread
//! count and no input — finite, infinite or NaN — can panic the server.

use std::cmp::Ordering;

use rte_nn::StateDict;
use rte_tensor::Tensor;

use crate::config::Aggregation;
use crate::FedError;

fn check_compatible(a: &StateDict, b: &StateDict) -> Result<(), FedError> {
    if a.len() != b.len() {
        return Err(FedError::AggregationMismatch {
            reason: format!("entry counts {} vs {}", a.len(), b.len()),
        });
    }
    for ((na, ta), (nb, tb)) in a.iter().zip(b.iter()) {
        if na != nb {
            return Err(FedError::AggregationMismatch {
                reason: format!("entry names {na} vs {nb}"),
            });
        }
        if ta.shape() != tb.shape() {
            return Err(FedError::AggregationMismatch {
                reason: format!("{na}: shapes {} vs {}", ta.shape(), tb.shape()),
            });
        }
    }
    Ok(())
}

/// Weighted average of state dicts: `Σ_i weights[i] · dicts[i]` with the
/// weights normalized to sum to 1.
///
/// # Errors
///
/// Returns [`FedError::AggregationMismatch`] if the dicts disagree
/// structurally, or [`FedError::InvalidConfig`] for empty input or
/// non-positive total weight.
///
/// # Example
///
/// ```
/// use rte_fed::params::weighted_average;
/// use rte_tensor::Tensor;
///
/// let a = vec![("w".to_string(), Tensor::full(&[2], 0.0))];
/// let b = vec![("w".to_string(), Tensor::full(&[2], 1.0))];
/// let avg = weighted_average(&[(&a, 1.0), (&b, 3.0)])?;
/// assert_eq!(avg[0].1.data(), &[0.75, 0.75]);
/// # Ok::<(), rte_fed::FedError>(())
/// ```
pub fn weighted_average(entries: &[(&StateDict, f64)]) -> Result<StateDict, FedError> {
    let first = entries.first().ok_or_else(|| FedError::InvalidConfig {
        reason: "weighted_average of zero dicts".into(),
    })?;
    let total: f64 = entries.iter().map(|(_, w)| w).sum();
    if total <= 0.0 {
        return Err(FedError::InvalidConfig {
            reason: format!("non-positive total weight {total}"),
        });
    }
    for (dict, _) in entries.iter().skip(1) {
        check_compatible(first.0, dict)?;
    }
    let mut out: StateDict = first
        .0
        .iter()
        .map(|(name, t)| (name.clone(), Tensor::zeros(t.shape().dims())))
        .collect();
    for (dict, weight) in entries {
        let alpha = (*weight / total) as f32;
        for (acc, (_, t)) in out.iter_mut().zip(dict.iter()) {
            acc.1.axpy(alpha, t)?;
        }
    }
    Ok(out)
}

/// NaN-last total order for the robust reductions: finite values and
/// ±inf compare by IEEE order, NaN (either sign bit) sorts after
/// everything — so sorting can never panic, and NaN values land at the
/// top end where median/trimming keep them away from the result as long
/// as they are a minority.
fn nan_last(a: f32, b: f32) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        // Both non-NaN: partial_cmp is total.
        (false, false) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
    }
}

/// Shared frame of the coordinate-wise reductions: checks structural
/// compatibility, then maps every coordinate's client-ordered value
/// vector through `reduce` (which receives it sorted by [`nan_last`]).
fn coordinate_reduce(
    dicts: &[&StateDict],
    what: &str,
    reduce: impl Fn(&[f32]) -> f32,
) -> Result<StateDict, FedError> {
    let first = dicts.first().ok_or_else(|| FedError::InvalidConfig {
        reason: format!("{what} of zero dicts"),
    })?;
    for dict in dicts.iter().skip(1) {
        check_compatible(first, dict)?;
    }
    let mut column = vec![0.0f32; dicts.len()];
    let mut out = StateDict::with_capacity(first.len());
    for (e, (name, t)) in first.iter().enumerate() {
        let mut acc = Tensor::zeros(t.shape().dims());
        for i in 0..t.data().len() {
            for (j, dict) in dicts.iter().enumerate() {
                column[j] = dict[e].1.data()[i];
            }
            column.sort_by(|a, b| nan_last(*a, *b));
            acc.data_mut()[i] = reduce(&column);
        }
        out.push((name.clone(), acc));
    }
    Ok(out)
}

/// Coordinate-wise median of state dicts — the classic Byzantine-robust
/// aggregation rule. Client weights are deliberately ignored: a hostile
/// client could inflate its sample count, so robust rules treat every
/// update as one vote.
///
/// Each coordinate's values are sorted with a NaN-last total order; odd
/// counts take the middle element, even counts the midpoint of the two
/// middle elements (one fixed expression, so results are bit-identical
/// across runs). As long as strictly more than half of the inputs are
/// finite at a coordinate, the result there is finite.
///
/// # Errors
///
/// Returns [`FedError::InvalidConfig`] for empty input and
/// [`FedError::AggregationMismatch`] for structurally incompatible dicts.
pub fn coordinate_median(dicts: &[&StateDict]) -> Result<StateDict, FedError> {
    coordinate_reduce(dicts, "coordinate_median", |sorted| {
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) * 0.5
        }
    })
}

/// Coordinate-wise trimmed mean: per coordinate, drop the
/// `⌊trim_ratio · K⌋` smallest and largest values (NaN sorts last, so
/// NaN is trimmed first) and average the survivors in ascending sorted
/// order — a fixed-order reduction like everything else in this module.
/// Client weights are ignored, as in [`coordinate_median`].
///
/// The trim count is clamped so at least one value always survives.
///
/// # Errors
///
/// Returns [`FedError::InvalidConfig`] for empty input or a trim ratio
/// outside `[0, 0.5)`, and [`FedError::AggregationMismatch`] for
/// structurally incompatible dicts.
pub fn trimmed_mean(dicts: &[&StateDict], trim_ratio: f32) -> Result<StateDict, FedError> {
    Aggregation::TrimmedMean { trim_ratio }.validate()?;
    let n = dicts.len();
    let trim = ((trim_ratio as f64 * n as f64).floor() as usize).min(n.saturating_sub(1) / 2);
    coordinate_reduce(dicts, "trimmed_mean", |sorted| {
        let kept = &sorted[trim..sorted.len() - trim];
        let mut acc = 0.0f32;
        for &v in kept {
            acc += v;
        }
        acc / kept.len() as f32
    })
}

/// Dispatches one round's server-side aggregation on the configured
/// [`Aggregation`] rule. The weights in `entries` are honored by
/// [`Aggregation::WeightedMean`] and deliberately ignored by the robust
/// rules (see [`coordinate_median`]).
///
/// # Errors
///
/// See [`weighted_average`], [`coordinate_median`] and [`trimmed_mean`].
pub fn aggregate(entries: &[(&StateDict, f64)], rule: Aggregation) -> Result<StateDict, FedError> {
    match rule {
        Aggregation::WeightedMean => weighted_average(entries),
        Aggregation::Median => {
            let dicts: Vec<&StateDict> = entries.iter().map(|(d, _)| *d).collect();
            coordinate_median(&dicts)
        }
        Aggregation::TrimmedMean { trim_ratio } => {
            let dicts: Vec<&StateDict> = entries.iter().map(|(d, _)| *d).collect();
            trimmed_mean(&dicts, trim_ratio)
        }
    }
}

/// Splits a state dict into `(matching, rest)` by a name predicate.
///
/// FedProx-LG uses this with `is_local = |name| name.starts_with("output_conv")`
/// to keep the output layer private per client.
pub fn partition(dict: &StateDict, is_local: impl Fn(&str) -> bool) -> (StateDict, StateDict) {
    let mut local = StateDict::new();
    let mut global = StateDict::new();
    for (name, t) in dict {
        if is_local(name) {
            local.push((name.clone(), t.clone()));
        } else {
            global.push((name.clone(), t.clone()));
        }
    }
    (local, global)
}

/// Overwrites the entries of `dict` whose names appear in `updates`.
///
/// # Errors
///
/// Returns [`FedError::AggregationMismatch`] if an update name is missing
/// from `dict` or shapes disagree.
pub fn apply_updates(dict: &mut StateDict, updates: &StateDict) -> Result<(), FedError> {
    for (name, t) in updates {
        let slot = dict.iter_mut().find(|(n, _)| n == name).ok_or_else(|| {
            FedError::AggregationMismatch {
                reason: format!("no entry named {name}"),
            }
        })?;
        if slot.1.shape() != t.shape() {
            return Err(FedError::AggregationMismatch {
                reason: format!("{name}: shapes {} vs {}", slot.1.shape(), t.shape()),
            });
        }
        slot.1 = t.clone();
    }
    Ok(())
}

/// Convex blend `alpha · a + (1 − alpha) · b`, the α-portion sync update.
///
/// # Errors
///
/// Returns [`FedError::AggregationMismatch`] if the dicts disagree, or
/// [`FedError::InvalidConfig`] if `alpha` is outside `[0, 1]`.
pub fn blend(a: &StateDict, b: &StateDict, alpha: f32) -> Result<StateDict, FedError> {
    if !(0.0..=1.0).contains(&alpha) {
        return Err(FedError::InvalidConfig {
            reason: format!("alpha {alpha} outside [0, 1]"),
        });
    }
    check_compatible(a, b)?;
    Ok(a.iter()
        .zip(b.iter())
        .map(|((name, ta), (_, tb))| {
            (
                name.clone(),
                ta.zip_with(tb, |x, y| alpha * x + (1.0 - alpha) * y),
            )
        })
        .collect())
}

/// Squared L2 distance between two state dicts (the FedProx proximal
/// radius `‖W^r − w_k‖²`).
///
/// # Errors
///
/// Returns [`FedError::AggregationMismatch`] if the dicts disagree.
pub fn l2_distance_sq(a: &StateDict, b: &StateDict) -> Result<f64, FedError> {
    check_compatible(a, b)?;
    let mut total = 0.0f64;
    for ((_, ta), (_, tb)) in a.iter().zip(b.iter()) {
        for (&x, &y) in ta.data().iter().zip(tb.data().iter()) {
            let d = (x - y) as f64;
            total += d * d;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict(v: f32) -> StateDict {
        vec![
            ("a/weight".into(), Tensor::full(&[2, 2], v)),
            ("output_conv/weight".into(), Tensor::full(&[3], v * 2.0)),
        ]
    }

    #[test]
    fn weighted_average_normalizes() {
        let d1 = dict(0.0);
        let d2 = dict(4.0);
        let avg = weighted_average(&[(&d1, 3.0), (&d2, 1.0)]).unwrap();
        assert_eq!(avg[0].1.data(), &[1.0; 4]);
        assert_eq!(avg[1].1.data(), &[2.0; 3]);
    }

    #[test]
    fn weighted_average_single_is_identity() {
        let d = dict(2.5);
        let avg = weighted_average(&[(&d, 7.0)]).unwrap();
        assert_eq!(avg, d);
    }

    #[test]
    fn weighted_average_rejects_mismatch() {
        let d1 = dict(1.0);
        let mut d2 = dict(1.0);
        d2[0].0 = "renamed".into();
        assert!(weighted_average(&[(&d1, 1.0), (&d2, 1.0)]).is_err());
        let mut d3 = dict(1.0);
        d3[0].1 = Tensor::zeros(&[5]);
        assert!(weighted_average(&[(&d1, 1.0), (&d3, 1.0)]).is_err());
        assert!(weighted_average(&[]).is_err());
        assert!(weighted_average(&[(&d1, 0.0)]).is_err());
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let honest1 = dict(1.0);
        let honest2 = dict(2.0);
        let hostile = dict(1e30);
        let med = coordinate_median(&[&honest1, &hostile, &honest2]).unwrap();
        assert_eq!(
            med[0].1.data(),
            &[2.0; 4],
            "outlier must not move the median"
        );
    }

    #[test]
    fn median_even_count_takes_midpoint() {
        let a = dict(1.0);
        let b = dict(3.0);
        let med = coordinate_median(&[&a, &b]).unwrap();
        assert_eq!(med[0].1.data(), &[2.0; 4]);
    }

    #[test]
    fn median_survives_nan_minority() {
        let mut poisoned = dict(5.0);
        for v in poisoned[0].1.data_mut() {
            *v = f32::NAN;
        }
        let a = dict(1.0);
        let b = dict(3.0);
        let med = coordinate_median(&[&poisoned, &a, &b]).unwrap();
        // NaN sorts last: the median of {1, 3, NaN} is 3.
        assert_eq!(med[0].1.data(), &[3.0; 4]);
        assert!(med
            .iter()
            .all(|(_, t)| t.data().iter().all(|v| v.is_finite())));
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let dicts = [dict(1.0), dict(2.0), dict(3.0), dict(-100.0), dict(100.0)];
        let refs: Vec<&StateDict> = dicts.iter().collect();
        let tm = trimmed_mean(&refs, 0.2).unwrap(); // trim 1 each end
        assert_eq!(tm[0].1.data(), &[2.0; 4]);
    }

    #[test]
    fn trimmed_mean_zero_ratio_is_unweighted_mean() {
        let dicts = [dict(1.0), dict(2.0), dict(6.0)];
        let refs: Vec<&StateDict> = dicts.iter().collect();
        let tm = trimmed_mean(&refs, 0.0).unwrap();
        assert_eq!(tm[0].1.data(), &[3.0; 4]);
    }

    #[test]
    fn trimmed_mean_rejects_bad_ratio_and_empty() {
        let d = dict(1.0);
        assert!(trimmed_mean(&[&d], 0.5).is_err());
        assert!(trimmed_mean(&[&d], -0.1).is_err());
        assert!(trimmed_mean(&[], 0.1).is_err());
        assert!(coordinate_median(&[]).is_err());
    }

    #[test]
    fn aggregate_dispatches_on_rule() {
        let a = dict(0.0);
        let b = dict(4.0);
        let entries = [(&a, 3.0), (&b, 1.0)];
        assert_eq!(
            aggregate(&entries, Aggregation::WeightedMean).unwrap(),
            weighted_average(&entries).unwrap()
        );
        // Robust rules ignore weights: median of {0, 4} is 2, not 1.
        let med = aggregate(&entries, Aggregation::Median).unwrap();
        assert_eq!(med[0].1.data(), &[2.0; 4]);
        let tm = aggregate(&entries, Aggregation::TrimmedMean { trim_ratio: 0.0 }).unwrap();
        assert_eq!(tm[0].1.data(), &[2.0; 4]);
    }

    #[test]
    fn robust_rules_reject_mismatched_dicts() {
        let d1 = dict(1.0);
        let mut d2 = dict(1.0);
        d2[0].0 = "renamed".into();
        assert!(coordinate_median(&[&d1, &d2]).is_err());
        assert!(trimmed_mean(&[&d1, &d2], 0.0).is_err());
    }

    #[test]
    fn partition_splits_by_name() {
        let d = dict(1.0);
        let (local, global) = partition(&d, |n| n.starts_with("output_conv"));
        assert_eq!(local.len(), 1);
        assert_eq!(global.len(), 1);
        assert_eq!(local[0].0, "output_conv/weight");
        assert_eq!(global[0].0, "a/weight");
    }

    #[test]
    fn apply_updates_overwrites_named_entries() {
        let mut d = dict(1.0);
        let updates = vec![("a/weight".to_string(), Tensor::full(&[2, 2], 9.0))];
        apply_updates(&mut d, &updates).unwrap();
        assert_eq!(d[0].1.data(), &[9.0; 4]);
        assert_eq!(d[1].1.data()[0], 2.0, "untouched entry");

        let bad = vec![("missing".to_string(), Tensor::zeros(&[1]))];
        assert!(apply_updates(&mut d, &bad).is_err());
    }

    #[test]
    fn blend_is_convex() {
        let a = dict(1.0);
        let b = dict(3.0);
        let mixed = blend(&a, &b, 0.25).unwrap();
        assert!((mixed[0].1.data()[0] - 2.5).abs() < 1e-6);
        assert!(blend(&a, &b, 1.5).is_err());
        assert_eq!(blend(&a, &b, 1.0).unwrap(), a);
        assert_eq!(blend(&a, &b, 0.0).unwrap(), b);
    }

    #[test]
    fn l2_distance() {
        let a = dict(0.0);
        let b = dict(1.0);
        // First entry: 4 elements of diff 1; second: 3 elements of diff 2.
        assert_eq!(l2_distance_sq(&a, &b).unwrap(), 4.0 + 12.0);
        assert_eq!(l2_distance_sq(&a, &a).unwrap(), 0.0);
    }
}
