//! The federated message vocabulary on top of [`rte_net`] frames.
//!
//! A federated round is an exchange of serialized parameter sets: the
//! coordinator deploys the global state, clients answer with trained
//! updates (plain or secure-masked), and a shutdown closes the session.
//! This module owns the mapping between typed [`Message`]s and opaque
//! [`Frame`]s — kinds, payload codecs, and the typed errors for every
//! way a structurally-valid frame can still be the wrong message.
//!
//! State dicts travel in the `rte_nn::serialize` format (magic,
//! defensive caps), so the payload codec inherits the same hardening as
//! the rest of the workspace's binary surfaces.

use rte_net::{Frame, NetError, Transport};
use rte_nn::serialize::{read_state_dict, write_state_dict};
use rte_nn::StateDict;

use crate::secure::MaskedUpdate;
use crate::FedError;

/// Frame kind: client introduces itself (`client`, `weight`).
pub const KIND_HELLO: u8 = 1;
/// Frame kind: coordinator deploys a global state for local training.
pub const KIND_DEPLOY: u8 = 2;
/// Frame kind: client returns a plain trained update.
pub const KIND_UPDATE: u8 = 3;
/// Frame kind: client returns a secure-masked quantized update.
pub const KIND_SECURE_UPDATE: u8 = 4;
/// Frame kind: coordinator ends the session.
pub const KIND_SHUTDOWN: u8 = 5;

/// One typed federated message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client's opening message: who it is and its aggregation weight.
    Hello {
        /// Fleet position (0-based index into the client list).
        client: u32,
        /// Aggregation weight `n_k` (training sample count).
        weight: u64,
    },
    /// Coordinator → client: train from this state.
    Deploy {
        /// Dispatch identifier: the communication round in sync mode,
        /// the dispatch sequence number in async mode. Feeds the
        /// per-`(round, client)` training RNG stream on the client.
        round: u64,
        /// Local gradient steps to run.
        steps: u64,
        /// This round's participant set, in coordinator order (0-based
        /// fleet indices). Secure aggregation derives pairwise masks
        /// over exactly this set.
        participants: Vec<u32>,
        /// The global parameters to start from.
        state: StateDict,
    },
    /// Client → coordinator: a plain trained update.
    Update {
        /// Echo of the deploy's `round`.
        round: u64,
        /// Fleet position of the sender.
        client: u32,
        /// Mean local training loss.
        loss: f32,
        /// The locally trained parameters.
        state: StateDict,
    },
    /// Client → coordinator: a secure-masked quantized update.
    SecureUpdate {
        /// Echo of the deploy's `round`.
        round: u64,
        /// Fleet position of the sender.
        client: u32,
        /// Mean local training loss (losses are not masked — the paper's
        /// privacy boundary is the parameters).
        loss: f32,
        /// The masked fixed-point planes.
        masked: MaskedUpdate,
    },
    /// Coordinator → client: the run is over.
    Shutdown,
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked reader over a payload slice.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FedError> {
        let end = self.pos.checked_add(n).ok_or_else(|| truncated(what))?;
        if end > self.bytes.len() {
            return Err(truncated(what));
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self, what: &str) -> Result<u32, FedError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, FedError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self, what: &str) -> Result<f32, FedError> {
        Ok(f32::from_bits(self.u32(what)?))
    }

    fn rest(self) -> &'a [u8] {
        &self.bytes[self.pos..]
    }
}

fn truncated(what: &str) -> FedError {
    FedError::Transport {
        reason: format!("truncated message payload: {what}"),
    }
}

/// Cap on a wire participant list — no real fleet is larger, and a
/// forged count must not drive allocation.
const MAX_PARTICIPANTS: u64 = 1 << 20;

fn encode_state(state: &StateDict) -> Result<Vec<u8>, FedError> {
    let mut buf = Vec::new();
    write_state_dict(&mut buf, state).map_err(|e| FedError::Transport {
        reason: format!("state dict encode failed: {e}"),
    })?;
    Ok(buf)
}

fn decode_state(bytes: &[u8]) -> Result<StateDict, FedError> {
    read_state_dict(bytes).map_err(|e| FedError::Transport {
        reason: format!("state dict decode failed: {e}"),
    })
}

impl Message {
    /// The frame kind this message encodes to.
    pub fn kind(&self) -> u8 {
        match self {
            Message::Hello { .. } => KIND_HELLO,
            Message::Deploy { .. } => KIND_DEPLOY,
            Message::Update { .. } => KIND_UPDATE,
            Message::SecureUpdate { .. } => KIND_SECURE_UPDATE,
            Message::Shutdown => KIND_SHUTDOWN,
        }
    }

    /// Encodes this message into a frame from `sender` with `seq`.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::Transport`] when a payload fails to encode
    /// (oversize state dicts).
    pub fn into_frame(self, sender: u32, seq: u64) -> Result<Frame, FedError> {
        let kind = self.kind();
        let payload = match self {
            Message::Hello { client, weight } => {
                let mut buf = Vec::with_capacity(12);
                push_u32(&mut buf, client);
                push_u64(&mut buf, weight);
                buf
            }
            Message::Deploy {
                round,
                steps,
                participants,
                state,
            } => {
                let mut buf = Vec::new();
                push_u64(&mut buf, round);
                push_u64(&mut buf, steps);
                push_u64(&mut buf, participants.len() as u64);
                for p in &participants {
                    push_u32(&mut buf, *p);
                }
                buf.extend_from_slice(&encode_state(&state)?);
                buf
            }
            Message::Update {
                round,
                client,
                loss,
                state,
            } => {
                let mut buf = Vec::new();
                push_u64(&mut buf, round);
                push_u32(&mut buf, client);
                push_u32(&mut buf, loss.to_bits());
                buf.extend_from_slice(&encode_state(&state)?);
                buf
            }
            Message::SecureUpdate {
                round,
                client,
                loss,
                masked,
            } => {
                let mut buf = Vec::new();
                push_u64(&mut buf, round);
                push_u32(&mut buf, client);
                push_u32(&mut buf, loss.to_bits());
                masked.encode_into(&mut buf);
                buf
            }
            Message::Shutdown => Vec::new(),
        };
        Ok(Frame::new(kind, sender, seq, payload))
    }

    /// Decodes a frame back into a typed message.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::Transport`] for unknown kinds, truncated
    /// payloads, or trailing garbage.
    pub fn from_frame(frame: &Frame) -> Result<Message, FedError> {
        let mut r = Reader::new(&frame.payload);
        match frame.kind {
            KIND_HELLO => {
                let client = r.u32("hello client")?;
                let weight = r.u64("hello weight")?;
                expect_empty(r, "hello")?;
                Ok(Message::Hello { client, weight })
            }
            KIND_DEPLOY => {
                let round = r.u64("deploy round")?;
                let steps = r.u64("deploy steps")?;
                let n = r.u64("deploy participant count")?;
                if n > MAX_PARTICIPANTS {
                    return Err(FedError::Transport {
                        reason: format!("deploy claims {n} participants (cap {MAX_PARTICIPANTS})"),
                    });
                }
                let mut participants = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    participants.push(r.u32("deploy participant")?);
                }
                let state = decode_state(r.rest())?;
                Ok(Message::Deploy {
                    round,
                    steps,
                    participants,
                    state,
                })
            }
            KIND_UPDATE => {
                let round = r.u64("update round")?;
                let client = r.u32("update client")?;
                let loss = r.f32("update loss")?;
                let state = decode_state(r.rest())?;
                Ok(Message::Update {
                    round,
                    client,
                    loss,
                    state,
                })
            }
            KIND_SECURE_UPDATE => {
                let round = r.u64("secure update round")?;
                let client = r.u32("secure update client")?;
                let loss = r.f32("secure update loss")?;
                let masked = MaskedUpdate::decode(r.rest())?;
                Ok(Message::SecureUpdate {
                    round,
                    client,
                    loss,
                    masked,
                })
            }
            KIND_SHUTDOWN => {
                expect_empty(r, "shutdown")?;
                Ok(Message::Shutdown)
            }
            other => Err(FedError::Transport {
                reason: format!("unknown frame kind {other}"),
            }),
        }
    }
}

fn expect_empty(r: Reader<'_>, what: &str) -> Result<(), FedError> {
    if r.rest().is_empty() {
        Ok(())
    } else {
        Err(FedError::Transport {
            reason: format!("{what} message carries unexpected trailing bytes"),
        })
    }
}

/// Sends `message` over `transport` as `sender` with `seq`.
///
/// # Errors
///
/// Returns [`FedError::Transport`] for encode or transport failures.
pub fn send_message<T: Transport>(
    transport: &mut T,
    message: Message,
    sender: u32,
    seq: u64,
) -> Result<(), FedError> {
    let frame = message.into_frame(sender, seq)?;
    transport.send(&frame).map_err(net_err)
}

/// Receives and decodes the next message, returning it with the
/// sender's id.
///
/// # Errors
///
/// Returns [`FedError::Transport`] for decode or transport failures.
pub fn recv_message<T: Transport>(transport: &mut T) -> Result<(u32, Message), FedError> {
    let frame = transport.recv().map_err(net_err)?;
    let message = Message::from_frame(&frame)?;
    Ok((frame.sender, message))
}

/// Receives and decodes the next message with a deadline: a peer that
/// stays silent past `deadline` is a typed
/// [`FedError::Transport`] timeout, never an infinite wedge. Every
/// coordinator-side read goes through this path.
///
/// # Errors
///
/// Returns [`FedError::Transport`] for decode, transport, or deadline
/// failures.
pub fn recv_message_within<T: Transport>(
    transport: &mut T,
    deadline: std::time::Duration,
) -> Result<(u32, Message), FedError> {
    let frame = transport.recv_timeout(deadline).map_err(net_err)?;
    let message = Message::from_frame(&frame)?;
    Ok((frame.sender, message))
}

/// Maps a wire-layer error into the federated error space, preserving
/// its typed rendering.
pub fn net_err(e: NetError) -> FedError {
    FedError::Transport {
        reason: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rte_tensor::Tensor;

    fn sd() -> StateDict {
        vec![
            ("conv.weight".into(), Tensor::from_fn(&[2, 3], |i| i as f32)),
            ("conv.bias".into(), Tensor::full(&[2], -0.5)),
        ]
    }

    #[test]
    fn every_message_round_trips() {
        let cases = vec![
            Message::Hello {
                client: 4,
                weight: 17,
            },
            Message::Deploy {
                round: 3,
                steps: 5,
                participants: vec![0, 2, 7],
                state: sd(),
            },
            Message::Update {
                round: 3,
                client: 2,
                loss: 0.625,
                state: sd(),
            },
            Message::Shutdown,
        ];
        for (i, msg) in cases.into_iter().enumerate() {
            let frame = msg.clone().into_frame(9, i as u64).unwrap();
            assert_eq!(frame.sender, 9);
            assert_eq!(frame.seq, i as u64);
            let back = Message::from_frame(&frame).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn unknown_kind_is_typed() {
        let frame = Frame::new(99, 0, 0, Vec::new());
        let err = Message::from_frame(&frame).unwrap_err();
        assert!(matches!(err, FedError::Transport { .. }), "{err}");
        assert!(err.to_string().contains("kind 99"));
    }

    #[test]
    fn truncated_payload_is_typed() {
        let frame = Message::Update {
            round: 1,
            client: 0,
            loss: 0.0,
            state: sd(),
        }
        .into_frame(1, 0)
        .unwrap();
        for cut in [0usize, 4, 11] {
            let hurt = Frame::new(frame.kind, 1, 0, frame.payload[..cut].to_vec());
            let err = Message::from_frame(&hurt).unwrap_err();
            assert!(
                matches!(err, FedError::Transport { .. }),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = Message::Hello {
            client: 0,
            weight: 1,
        }
        .into_frame(0, 0)
        .unwrap();
        frame.payload.push(0xFF);
        assert!(Message::from_frame(&frame).is_err());
    }

    #[test]
    fn forged_participant_count_is_capped() {
        let mut buf = Vec::new();
        push_u64(&mut buf, 1);
        push_u64(&mut buf, 1);
        push_u64(&mut buf, u64::MAX); // forged count
        let frame = Frame::new(KIND_DEPLOY, 0, 0, buf);
        let err = Message::from_frame(&frame).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn messages_flow_over_a_channel_transport() {
        let (mut a, mut b) = rte_net::ChannelTransport::pair();
        send_message(
            &mut a,
            Message::Hello {
                client: 1,
                weight: 2,
            },
            1,
            0,
        )
        .unwrap();
        let (sender, msg) = recv_message(&mut b).unwrap();
        assert_eq!(sender, 1);
        assert_eq!(
            msg,
            Message::Hello {
                client: 1,
                weight: 2
            }
        );
    }
}
