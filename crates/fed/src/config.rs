//! Federated training configuration and method selection.

use rte_tensor::parallel::Parallelism;

use crate::FedError;

/// The training method column of the paper's Tables 3-5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Train one model per client on its own data only (`b_1 … b_K`).
    LocalOnly,
    /// Pool all clients' data on one machine (the privacy-free upper
    /// bound).
    Centralized,
    /// FedProx (§4.1) — the proposed generalized-model method.
    FedProx,
    /// FedProx-LG (§4.3): aggregate only the global part, keep the output
    /// layer local.
    FedProxLg,
    /// Iterative Federated Clustering Algorithm (§4.3).
    Ifca,
    /// FedProx followed by per-client local fine-tuning (§4.3).
    FedProxFinetune,
    /// Clustered FedProx with pre-assigned clusters (§4.3).
    AssignedClustering,
    /// FedProx with α-portion personalized aggregation (§4.3).
    AlphaSync,
}

impl Method {
    /// All methods in the row order of the paper's tables.
    pub const ALL: [Method; 8] = [
        Method::LocalOnly,
        Method::Centralized,
        Method::FedProx,
        Method::FedProxLg,
        Method::Ifca,
        Method::FedProxFinetune,
        Method::AssignedClustering,
        Method::AlphaSync,
    ];

    /// Row label as the paper's tables print it.
    pub fn label(&self) -> &'static str {
        match self {
            Method::LocalOnly => "Local Average (b1 to b9)",
            Method::Centralized => "Training Centrally on All Data",
            Method::FedProx => "FedProx",
            Method::FedProxLg => "FedProx-LG",
            Method::Ifca => "IFCA",
            Method::FedProxFinetune => "FedProx + Fine-tuning",
            Method::AssignedClustering => "Assigned Clustering",
            Method::AlphaSync => "FedProx + α-Portion Sync",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Server-side aggregation rule applied when a method combines client
/// updates — the defense axis of the `table6_robustness` grid.
///
/// All three rules are fixed-order deterministic reductions performed on
/// the coordinator thread (determinism-contract rule 6): the robust
/// rules sort each coordinate's values with a NaN-last total order, so a
/// hostile minority cannot panic the server or poison the aggregate with
/// non-finite values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Aggregation {
    /// Example-count weighted mean `Σ_k (n_k/n) w_k` — the paper's
    /// Fig. 1 rule and the default. No Byzantine robustness: a single
    /// corrupted update contaminates every coordinate.
    WeightedMean,
    /// Coordinate-wise median (ignores client weights). Tolerates up to
    /// `⌈K/2⌉ − 1` arbitrary updates per coordinate.
    Median,
    /// Coordinate-wise trimmed mean (ignores client weights): drop the
    /// `⌊trim_ratio · K⌋` smallest and largest values per coordinate,
    /// average the rest.
    TrimmedMean {
        /// Fraction trimmed from *each* end, in `[0, 0.5)`.
        trim_ratio: f32,
    },
}

impl Aggregation {
    /// Short column label used by the robustness grid renderers.
    pub fn label(&self) -> &'static str {
        match self {
            Aggregation::WeightedMean => "mean",
            Aggregation::Median => "median",
            Aggregation::TrimmedMean { .. } => "trimmed",
        }
    }

    /// Validates the rule's own parameters.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] for a trim ratio outside
    /// `[0, 0.5)` (trimming half or more from both ends leaves nothing).
    pub fn validate(&self) -> Result<(), FedError> {
        if let Aggregation::TrimmedMean { trim_ratio } = self {
            if !(0.0..0.5).contains(trim_ratio) {
                return Err(FedError::InvalidConfig {
                    reason: format!("trim_ratio {trim_ratio} outside [0, 0.5)"),
                });
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for Aggregation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Hyper-parameters of the federated experiments (paper §5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct FedConfig {
    /// Number of communication rounds `R` (paper: 50).
    pub rounds: usize,
    /// Local update steps per round `S` (paper: 100).
    pub local_steps: usize,
    /// Fine-tuning steps `S'` (paper: 5000).
    pub finetune_steps: usize,
    /// Minibatch size for local updates.
    pub batch_size: usize,
    /// Learning rate (paper: 2e-4).
    pub lr: f32,
    /// L2 regularization strength (paper: 1e-5).
    pub weight_decay: f32,
    /// FedProx proximal strength μ (paper: 1e-4).
    pub mu: f32,
    /// α-portion sync mixing weight (paper: 0.5).
    pub alpha: f32,
    /// Number of IFCA clusters `C` (paper: 4).
    pub clusters: usize,
    /// Pre-assigned clusters for assigned clustering, as lists of 0-based
    /// client positions (paper: {1-3}, {4-6}, {7-8}, {9}).
    pub assigned_clusters: Vec<Vec<usize>>,
    /// Evaluate the global model every this many rounds and record it in
    /// the outcome history (0 = final evaluation only).
    pub eval_every: usize,
    /// Fraction of clients participating per round, in `(0, 1]`. The
    /// paper uses full participation (1.0); real FL deployments sample a
    /// subset each round. At least one client always participates.
    pub participation: f32,
    /// Server-side aggregation rule used wherever a method combines
    /// client updates (the global FedProx average, FedProx-LG's global
    /// part, IFCA/assigned per-cluster averages, α-portion sync's
    /// rest-of-fleet average). [`Aggregation::WeightedMean`] reproduces
    /// the paper; the robust rules defend against Byzantine clients.
    pub aggregation: Aggregation,
    /// Hostile-client scenario injected into the harness (`None` = the
    /// paper's clean federation). See [`crate::scenario::ScenarioConfig`].
    pub scenario: Option<crate::scenario::ScenarioConfig>,
    /// Worker-thread budget for training a round's participants in
    /// parallel (each client is an independent work unit, exactly as in
    /// the real decentralized deployment). Outcomes are **bit-identical
    /// for every setting** — aggregation always happens on the
    /// coordinator thread in fixed client order — so this knob only
    /// trades wall-clock for threads. The constructors read the
    /// `RTE_THREADS` environment variable (unset = all cores).
    pub parallelism: Parallelism,
    /// Master seed for batch sampling and model initialization.
    pub seed: u64,
}

impl FedConfig {
    /// The paper's hyper-parameters (slow on CPU: 50 rounds × 100 steps).
    pub fn paper() -> Self {
        FedConfig {
            rounds: 50,
            local_steps: 100,
            finetune_steps: 5000,
            batch_size: 8,
            lr: 2e-4,
            weight_decay: 1e-5,
            mu: 1e-4,
            alpha: 0.5,
            clusters: 4,
            assigned_clusters: Self::paper_assignment(),
            eval_every: 0,
            participation: 1.0,
            aggregation: Aggregation::WeightedMean,
            scenario: None,
            parallelism: Parallelism::from_env(),
            seed: 0xF3D5_EED5,
        }
    }

    /// CPU-scale settings preserving the paper's structure (fewer rounds
    /// and steps, higher learning rate to compensate for the shorter
    /// schedule).
    pub fn scaled() -> Self {
        FedConfig {
            rounds: 10,
            local_steps: 20,
            finetune_steps: 150,
            batch_size: 4,
            lr: 2e-3,
            weight_decay: 1e-5,
            mu: 1e-4,
            alpha: 0.5,
            clusters: 4,
            assigned_clusters: Self::paper_assignment(),
            eval_every: 0,
            participation: 1.0,
            aggregation: Aggregation::WeightedMean,
            scenario: None,
            parallelism: Parallelism::from_env(),
            seed: 0xF3D5_EED5,
        }
    }

    /// Minimal settings for unit tests.
    pub fn tiny() -> Self {
        FedConfig {
            rounds: 2,
            local_steps: 3,
            finetune_steps: 5,
            batch_size: 2,
            lr: 5e-3,
            weight_decay: 0.0,
            mu: 1e-4,
            alpha: 0.5,
            clusters: 2,
            assigned_clusters: vec![vec![0], vec![1]],
            eval_every: 0,
            participation: 1.0,
            aggregation: Aggregation::WeightedMean,
            scenario: None,
            parallelism: Parallelism::from_env(),
            seed: 7,
        }
    }

    /// The paper's fixed cluster assignment: clients 1-3 (ITC'99),
    /// 4-6 (ISCAS'89), 7-8 (IWLS'05), 9 (ISPD'15), as 0-based positions.
    pub fn paper_assignment() -> Vec<Vec<usize>> {
        vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7], vec![8]]
    }

    /// Validates the method-independent hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] for zero rounds/steps/batch or
    /// out-of-range α/μ.
    pub fn validate_core(&self) -> Result<(), FedError> {
        if self.rounds == 0 || self.local_steps == 0 || self.batch_size == 0 {
            return Err(FedError::InvalidConfig {
                reason: "rounds, local_steps and batch_size must be positive".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(FedError::InvalidConfig {
                reason: format!("alpha {} outside [0, 1]", self.alpha),
            });
        }
        if self.mu < 0.0 {
            return Err(FedError::InvalidConfig {
                reason: format!("negative mu {}", self.mu),
            });
        }
        if !(0.0..=1.0).contains(&self.participation) || self.participation <= 0.0 {
            return Err(FedError::InvalidConfig {
                reason: format!("participation {} outside (0, 1]", self.participation),
            });
        }
        self.aggregation.validate()?;
        Ok(())
    }

    /// Validates the IFCA cluster count against a client count.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] when `clusters` is zero or
    /// exceeds `n_clients`.
    pub fn validate_clusters(&self, n_clients: usize) -> Result<(), FedError> {
        if self.clusters == 0 || self.clusters > n_clients {
            return Err(FedError::InvalidConfig {
                reason: format!("clusters {} vs {n_clients} clients", self.clusters),
            });
        }
        Ok(())
    }

    /// Validates that `assigned_clusters` is a partition of
    /// `0..n_clients` (required by assigned clustering).
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] otherwise.
    pub fn validate_assignment(&self, n_clients: usize) -> Result<(), FedError> {
        let mut seen = vec![false; n_clients];
        for group in &self.assigned_clusters {
            for &k in group {
                if k >= n_clients || seen[k] {
                    return Err(FedError::InvalidConfig {
                        reason: format!("assigned clusters are not a partition of 0..{n_clients}"),
                    });
                }
                seen[k] = true;
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err(FedError::InvalidConfig {
                reason: "assigned clusters miss some clients".into(),
            });
        }
        Ok(())
    }

    /// Validates everything at once for a given client count.
    ///
    /// # Errors
    ///
    /// See [`FedConfig::validate_core`], [`FedConfig::validate_clusters`]
    /// and [`FedConfig::validate_assignment`].
    pub fn validate(&self, n_clients: usize) -> Result<(), FedError> {
        self.validate_core()?;
        self.validate_clusters(n_clients)?;
        self.validate_assignment(n_clients)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_section_5_1() {
        let c = FedConfig::paper();
        assert_eq!(c.rounds, 50);
        assert_eq!(c.local_steps, 100);
        assert_eq!(c.finetune_steps, 5000);
        assert_eq!(c.lr, 2e-4);
        assert_eq!(c.weight_decay, 1e-5);
        assert_eq!(c.mu, 1e-4);
        assert_eq!(c.alpha, 0.5);
        assert_eq!(c.clusters, 4);
        assert_eq!(c.assigned_clusters.len(), 4);
    }

    #[test]
    fn paper_assignment_partitions_nine_clients() {
        let c = FedConfig::paper();
        assert!(c.validate(9).is_ok());
    }

    #[test]
    fn validation_catches_errors() {
        let mut c = FedConfig::tiny();
        c.rounds = 0;
        assert!(c.validate(2).is_err());

        let mut c = FedConfig::tiny();
        c.alpha = 2.0;
        assert!(c.validate(2).is_err());

        let mut c = FedConfig::tiny();
        c.assigned_clusters = vec![vec![0, 0], vec![1]];
        assert!(c.validate(2).is_err());

        let mut c = FedConfig::tiny();
        c.assigned_clusters = vec![vec![0]];
        assert!(c.validate(2).is_err(), "missing client 1");

        let mut c = FedConfig::tiny();
        c.clusters = 5;
        assert!(c.validate(2).is_err());
    }

    #[test]
    fn method_labels_match_tables() {
        assert_eq!(Method::ALL.len(), 8);
        assert_eq!(Method::FedProx.to_string(), "FedProx");
        assert!(Method::LocalOnly.label().contains("b1 to b9"));
        assert!(Method::AlphaSync.label().contains("α-Portion"));
    }
}
