//! Communication and computation cost accounting.
//!
//! The paper's §4.3 trades personalization accuracy against "extra
//! training cost" (fine-tuning) and notes α-portion sync has "much less
//! extra cost". This module makes those trade-offs measurable: given a
//! model's state-dict size and a [`FedConfig`], it computes per-method
//! upload/download volume and local update counts analytically.

use rte_nn::{Layer, StateDict};

use crate::{FedConfig, Method};

/// Analytic cost of running one training method to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodCost {
    /// Total parameters uploaded from clients to the developer over the
    /// whole run (in scalar counts; multiply by 4 for f32 bytes).
    pub upload_params: u64,
    /// Total parameters downloaded from the developer to clients.
    pub download_params: u64,
    /// Total local gradient steps across all clients.
    pub local_steps: u64,
    /// Number of per-round server aggregations performed.
    pub aggregations: u64,
}

impl MethodCost {
    /// Total communicated parameters (upload + download).
    pub fn total_params(&self) -> u64 {
        self.upload_params + self.download_params
    }

    /// Total communicated bytes assuming f32 parameters.
    pub fn total_bytes(&self) -> u64 {
        self.total_params() * 4
    }
}

/// Number of scalars in a state dict.
pub fn state_dict_params(sd: &StateDict) -> u64 {
    sd.iter().map(|(_, t)| t.numel() as u64).sum()
}

/// Number of scalars in the model's communicated state (parameters plus
/// buffers — BatchNorm statistics travel too).
pub fn model_params(model: &mut dyn Layer) -> u64 {
    let mut n = 0u64;
    model.visit_params("", &mut |_, p| n += p.value.numel() as u64);
    model.visit_buffers("", &mut |_, b| n += b.numel() as u64);
    n
}

/// Computes the analytic cost of `method` for a model with `params`
/// communicated scalars, `local_part` of which stay private under
/// FedProx-LG (0 for the other methods), across `k` clients.
///
/// Costs follow the algorithm definitions:
/// - FedProx/IFCA/assigned/α-sync: every round each client uploads one
///   model and downloads one (IFCA additionally downloads all `C` cluster
///   models for selection).
/// - FedProx-LG: only the global part travels.
/// - Fine-tuning adds `finetune_steps` local steps per client, no
///   communication.
/// - Local/centralized: no per-round communication (centralized ships the
///   data once, which this parameter-centric model counts as zero —
///   that asymmetry is the privacy point of the paper).
pub fn method_cost(
    method: Method,
    params: u64,
    local_part: u64,
    k: u64,
    config: &FedConfig,
) -> MethodCost {
    let r = config.rounds as u64;
    let s = config.local_steps as u64;
    let per_round_steps = k * s;
    match method {
        Method::LocalOnly => MethodCost {
            upload_params: 0,
            download_params: 0,
            local_steps: r * s * k,
            aggregations: 0,
        },
        Method::Centralized => MethodCost {
            upload_params: 0,
            download_params: 0,
            local_steps: r * s,
            aggregations: 0,
        },
        Method::FedProx => MethodCost {
            upload_params: r * k * params,
            download_params: r * k * params,
            local_steps: r * per_round_steps,
            aggregations: r,
        },
        Method::FedProxLg => {
            let global = params - local_part;
            MethodCost {
                upload_params: r * k * global,
                download_params: r * k * global,
                local_steps: r * per_round_steps,
                aggregations: r,
            }
        }
        Method::Ifca => {
            let c = config.clusters as u64;
            MethodCost {
                upload_params: r * k * params,
                // Selection requires all C cluster models at each client.
                download_params: r * k * c * params,
                local_steps: r * per_round_steps,
                aggregations: r * c,
            }
        }
        Method::FedProxFinetune => MethodCost {
            upload_params: r * k * params,
            download_params: r * k * params,
            local_steps: r * per_round_steps + k * config.finetune_steps as u64,
            aggregations: r,
        },
        Method::AssignedClustering => MethodCost {
            upload_params: r * k * params,
            download_params: r * k * params,
            local_steps: r * per_round_steps,
            aggregations: r * config.assigned_clusters.len().max(1) as u64,
        },
        Method::AlphaSync => MethodCost {
            upload_params: r * k * params,
            download_params: r * k * params,
            local_steps: r * per_round_steps,
            // One personalized aggregate per client per round.
            aggregations: r * k,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rte_nn::models::{FlNet, FlNetConfig};
    use rte_tensor::rng::Xoshiro256;

    fn config() -> FedConfig {
        let mut c = FedConfig::tiny();
        c.rounds = 10;
        c.local_steps = 20;
        c.finetune_steps = 100;
        c.clusters = 4;
        c
    }

    #[test]
    fn model_params_counts_buffers() {
        let mut rng = Xoshiro256::seed_from(1);
        let mut flnet = FlNet::new(FlNetConfig::new(3), &mut rng);
        let total = model_params(&mut flnet);
        assert_eq!(total as usize, flnet.param_count(), "FLNet has no buffers");
    }

    #[test]
    fn local_and_centralized_communicate_nothing() {
        let c = config();
        for method in [Method::LocalOnly, Method::Centralized] {
            let cost = method_cost(method, 1000, 0, 9, &c);
            assert_eq!(cost.total_params(), 0, "{method}");
            assert_eq!(cost.aggregations, 0);
        }
    }

    #[test]
    fn fedprox_symmetric_updown() {
        let cost = method_cost(Method::FedProx, 1000, 0, 9, &config());
        assert_eq!(cost.upload_params, 10 * 9 * 1000);
        assert_eq!(cost.upload_params, cost.download_params);
        assert_eq!(cost.local_steps, 10 * 9 * 20);
        assert_eq!(cost.aggregations, 10);
    }

    #[test]
    fn lg_saves_the_local_part() {
        let full = method_cost(Method::FedProx, 1000, 0, 9, &config());
        let lg = method_cost(Method::FedProxLg, 1000, 300, 9, &config());
        assert!(lg.total_params() < full.total_params());
        assert_eq!(lg.upload_params, 10 * 9 * 700);
    }

    #[test]
    fn ifca_downloads_scale_with_clusters() {
        let c = config();
        let ifca = method_cost(Method::Ifca, 1000, 0, 9, &c);
        let prox = method_cost(Method::FedProx, 1000, 0, 9, &c);
        assert_eq!(ifca.download_params, prox.download_params * 4);
        assert_eq!(ifca.upload_params, prox.upload_params);
    }

    #[test]
    fn finetune_adds_only_local_steps() {
        let c = config();
        let ft = method_cost(Method::FedProxFinetune, 1000, 0, 9, &c);
        let prox = method_cost(Method::FedProx, 1000, 0, 9, &c);
        assert_eq!(ft.total_params(), prox.total_params());
        assert_eq!(ft.local_steps, prox.local_steps + 9 * 100);
    }

    #[test]
    fn alpha_sync_costs_like_fedprox_in_bandwidth() {
        // The paper's "much less extra cost" claim: same communication as
        // FedProx, extra work only server-side (aggregations).
        let c = config();
        let alpha = method_cost(Method::AlphaSync, 1000, 0, 9, &c);
        let prox = method_cost(Method::FedProx, 1000, 0, 9, &c);
        assert_eq!(alpha.total_params(), prox.total_params());
        assert_eq!(alpha.local_steps, prox.local_steps);
        assert!(alpha.aggregations > prox.aggregations);
    }

    #[test]
    fn bytes_are_param_counts_times_four() {
        let cost = method_cost(Method::FedProx, 10, 0, 2, &config());
        assert_eq!(cost.total_bytes(), cost.total_params() * 4);
    }
}
