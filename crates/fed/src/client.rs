//! Client-side data containers.
//!
//! A [`ClientSet`] is one private data split. It has three backends
//! behind one API: the default **in-memory** backend (pre-batched NCHW
//! tensors, exactly as before the streaming subsystem existed), the
//! **streaming** backend ([`crate::stream::StreamingClientSet`]), which
//! feeds the same minibatches from bounded-memory chunk reads so corpora
//! larger than RAM can train and evaluate, and the **mapped** backend
//! ([`crate::stream::MappedClientSet`]), which serves batches straight
//! from a zero-copy record source (memory-mapped shards) with no
//! userspace chunk cache at all. Minibatch *index selection* lives here,
//! in one place, for every backend — which is what makes the streamed
//! and mapped paths bit-identical to the in-memory one.

use std::sync::Arc;

use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

use crate::stream::{
    ConcatSource, MappedClientSet, RecordSource, StreamingClientSet, TensorSource,
};
use crate::FedError;

/// Storage backend of a [`ClientSet`].
///
/// In-memory tensors sit behind [`Arc`] so cloning a client (and pooling
/// splits into a [`ConcatSource`]) shares the planes instead of deep-
/// copying them.
#[derive(Debug, Clone, PartialEq)]
enum Backend {
    /// Pre-batched tensors resident in memory (the default).
    InMemory {
        features: Arc<Tensor>,
        labels: Arc<Tensor>,
    },
    /// Bounded-memory chunk streaming from a [`RecordSource`].
    Streaming(StreamingClientSet),
    /// Direct zero-copy reads from a mapped [`RecordSource`] (no
    /// userspace cache — the OS page cache is the buffer).
    Mapped(MappedClientSet),
}

/// One data split held privately by a client: features `(N, C, H, W)` and
/// labels `(N, 1, H, W)`, resident in memory or streamed out-of-core.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSet {
    backend: Backend,
}

impl ClientSet {
    /// Wraps pre-batched feature/label tensors (the in-memory backend).
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] if ranks, batch sizes or
    /// spatial extents disagree, or the label tensor is not single-channel.
    pub fn new(features: Tensor, labels: Tensor) -> Result<Self, FedError> {
        if features.shape().rank() != 4 || labels.shape().rank() != 4 {
            return Err(FedError::InvalidConfig {
                reason: "features and labels must be rank-4 (NCHW)".into(),
            });
        }
        if features.dim(0) != labels.dim(0)
            || labels.dim(1) != 1
            || features.dim(2) != labels.dim(2)
            || features.dim(3) != labels.dim(3)
        {
            return Err(FedError::InvalidConfig {
                reason: format!(
                    "feature shape {} incompatible with label shape {}",
                    features.shape(),
                    labels.shape()
                ),
            });
        }
        Ok(ClientSet {
            backend: Backend::InMemory {
                features: Arc::new(features),
                labels: Arc::new(labels),
            },
        })
    }

    /// Wraps a streaming split (the out-of-core backend). Minibatches
    /// drawn from it are bit-identical to an in-memory set holding the
    /// same records.
    pub fn streaming(set: StreamingClientSet) -> Self {
        ClientSet {
            backend: Backend::Streaming(set),
        }
    }

    /// Wraps a memory-mapped split (the zero-copy backend). Batches
    /// drawn from it are bit-identical to the other two backends over
    /// the same records.
    pub fn mapped(set: MappedClientSet) -> Self {
        ClientSet {
            backend: Backend::Mapped(set),
        }
    }

    /// The streaming backend, when this set uses one (the benches and
    /// determinism tests read its bounded-memory counters).
    pub fn as_streaming(&self) -> Option<&StreamingClientSet> {
        match &self.backend {
            Backend::Streaming(s) => Some(s),
            Backend::InMemory { .. } | Backend::Mapped(_) => None,
        }
    }

    /// The mapped backend, when this set uses one.
    pub fn as_mapped(&self) -> Option<&MappedClientSet> {
        match &self.backend {
            Backend::Mapped(m) => Some(m),
            Backend::InMemory { .. } | Backend::Streaming(_) => None,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::InMemory { features, .. } => features.dim(0),
            Backend::Streaming(s) => s.len(),
            Backend::Mapped(m) => m.len(),
        }
    }

    /// True when the split holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(channels, height, width)` of every sample.
    pub fn geometry(&self) -> (usize, usize, usize) {
        match &self.backend {
            Backend::InMemory { features, .. } => {
                (features.dim(1), features.dim(2), features.dim(3))
            }
            Backend::Streaming(s) => s.geometry(),
            Backend::Mapped(m) => m.geometry(),
        }
    }

    /// The full feature tensor — `None` for streaming and mapped
    /// splits, whose whole point is never materializing it.
    pub fn features(&self) -> Option<&Tensor> {
        match &self.backend {
            Backend::InMemory { features, .. } => Some(features.as_ref()),
            Backend::Streaming(_) | Backend::Mapped(_) => None,
        }
    }

    /// The full label tensor — `None` for streaming and mapped splits.
    pub fn labels(&self) -> Option<&Tensor> {
        match &self.backend {
            Backend::InMemory { labels, .. } => Some(labels.as_ref()),
            Backend::Streaming(_) | Backend::Mapped(_) => None,
        }
    }

    /// Copies the samples at `indices` into a contiguous minibatch.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] for out-of-bounds indices and
    /// [`FedError::Stream`] when a streaming backend's storage fails.
    pub fn try_minibatch(&self, indices: &[usize]) -> Result<(Tensor, Tensor), FedError> {
        match &self.backend {
            Backend::InMemory { features, labels } => {
                let n = indices.len();
                let (c, h, w) = (features.dim(1), features.dim(2), features.dim(3));
                let xs = c * h * w;
                let ys = h * w;
                let mut x = Tensor::zeros(&[n, c, h, w]);
                let mut y = Tensor::zeros(&[n, 1, h, w]);
                for (bi, &si) in indices.iter().enumerate() {
                    if si >= self.len() {
                        return Err(FedError::InvalidConfig {
                            reason: format!(
                                "minibatch index {si} out of bounds ({} samples)",
                                self.len()
                            ),
                        });
                    }
                    x.data_mut()[bi * xs..(bi + 1) * xs]
                        .copy_from_slice(&features.data()[si * xs..(si + 1) * xs]);
                    y.data_mut()[bi * ys..(bi + 1) * ys]
                        .copy_from_slice(&labels.data()[si * ys..(si + 1) * ys]);
                }
                Ok((x, y))
            }
            Backend::Streaming(s) => s.gather(indices),
            Backend::Mapped(m) => m.gather(indices),
        }
    }

    /// Copies the samples at `indices` into a contiguous minibatch.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or streaming storage fails —
    /// fallible callers use [`ClientSet::try_minibatch`].
    pub fn minibatch(&self, indices: &[usize]) -> (Tensor, Tensor) {
        self.try_minibatch(indices)
            .expect("minibatch index out of bounds")
    }

    /// Copies the contiguous samples `range` into a minibatch. For the
    /// in-memory backend this is two bulk `copy_from_slice` calls (the
    /// evaluation hot path); for the streaming backend it flows through
    /// the double-buffered chunk cache.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] when the range is empty or
    /// ends past `len()`, [`FedError::Stream`] on storage failures.
    pub fn try_minibatch_range(
        &self,
        range: std::ops::Range<usize>,
    ) -> Result<(Tensor, Tensor), FedError> {
        match &self.backend {
            Backend::InMemory { features, labels } => {
                if range.start >= range.end || range.end > self.len() {
                    return Err(FedError::InvalidConfig {
                        reason: format!(
                            "minibatch range {range:?} invalid for {} samples",
                            self.len()
                        ),
                    });
                }
                let n = range.len();
                let (c, h, w) = (features.dim(1), features.dim(2), features.dim(3));
                let xs = c * h * w;
                let ys = h * w;
                let mut x = Tensor::zeros(&[n, c, h, w]);
                let mut y = Tensor::zeros(&[n, 1, h, w]);
                x.data_mut()
                    .copy_from_slice(&features.data()[range.start * xs..range.end * xs]);
                y.data_mut()
                    .copy_from_slice(&labels.data()[range.start * ys..range.end * ys]);
                Ok((x, y))
            }
            Backend::Streaming(s) => s.range_batch(range),
            Backend::Mapped(m) => m.range_batch(range),
        }
    }

    /// Copies the contiguous samples `range` into a minibatch.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, ends past `len()`, or streaming
    /// storage fails — fallible callers use
    /// [`ClientSet::try_minibatch_range`].
    pub fn minibatch_range(&self, range: std::ops::Range<usize>) -> (Tensor, Tensor) {
        self.try_minibatch_range(range)
            .expect("minibatch range invalid")
    }

    /// Samples a random minibatch of `batch_size` (the full split, in
    /// order, when `batch_size >= len`). This is the **single derivation
    /// point** of training minibatch indices: both backends consume the
    /// RNG identically, so streamed training replays the in-memory batch
    /// sequence exactly.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::Stream`] when streaming storage fails.
    pub fn try_sample_minibatch(
        &self,
        batch_size: usize,
        rng: &mut Xoshiro256,
    ) -> Result<(Tensor, Tensor), FedError> {
        let n = self.len();
        if batch_size >= n && n > 0 {
            // Full-set "batch": the contiguous range path is one bulk
            // copy (or one streamed read) and yields the same bytes as
            // gathering indices 0..n one by one.
            return self.try_minibatch_range(0..n);
        }
        let indices: Vec<usize> = if batch_size >= n {
            (0..n).collect()
        } else {
            rng.sample_indices(n, batch_size)
        };
        self.try_minibatch(&indices)
    }

    /// Samples a random minibatch of `batch_size`.
    ///
    /// # Panics
    ///
    /// Panics if streaming storage fails — fallible callers use
    /// [`ClientSet::try_sample_minibatch`].
    pub fn sample_minibatch(&self, batch_size: usize, rng: &mut Xoshiro256) -> (Tensor, Tensor) {
        self.try_sample_minibatch(batch_size, rng)
            .expect("minibatch sampling failed")
    }

    /// Concatenates several splits into one (used by centralized
    /// training). All-in-memory inputs pool eagerly into one tensor
    /// pair; otherwise the result stays out-of-core (a [`ConcatSource`]
    /// over the parts), so pooling never forces the corpus into memory —
    /// all-mapped inputs stay mapped, and any streamed part makes the
    /// result stream (its chunk cache still bounds the read-based
    /// parts).
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] if the splits disagree on
    /// geometry or the list is empty.
    pub fn concat(sets: &[&ClientSet]) -> Result<ClientSet, FedError> {
        let first = sets.first().ok_or_else(|| FedError::InvalidConfig {
            reason: "concat of zero client sets".into(),
        })?;
        let (c, h, w) = first.geometry();
        for s in sets {
            if s.geometry() != (c, h, w) {
                return Err(FedError::InvalidConfig {
                    reason: "client sets disagree on geometry".into(),
                });
            }
        }
        if sets
            .iter()
            .all(|s| matches!(s.backend, Backend::InMemory { .. }))
        {
            let total: usize = sets.iter().map(|s| s.len()).sum();
            let mut x = Vec::with_capacity(total * c * h * w);
            let mut y = Vec::with_capacity(total * h * w);
            for s in sets {
                let features = s.features().expect("in-memory backend");
                let labels = s.labels().expect("in-memory backend");
                x.extend_from_slice(features.data());
                y.extend_from_slice(labels.data());
            }
            return ClientSet::new(
                Tensor::from_vec(x, &[total, c, h, w])?,
                Tensor::from_vec(y, &[total, 1, h, w])?,
            );
        }
        // Mixed or fully out-of-core: splice the sources logically. The
        // chunk size carries over from the largest streamed part (a pure
        // wall-clock/memory knob — any value yields the same bytes).
        let mut sources: Vec<Arc<dyn RecordSource>> = Vec::with_capacity(sets.len());
        let mut chunk = 0usize;
        for s in sets {
            match &s.backend {
                Backend::InMemory { features, labels } => {
                    // Shares the Arc'd planes — no deep copy of the
                    // in-memory parts.
                    sources.push(Arc::new(TensorSource::from_shared(
                        Arc::clone(features),
                        Arc::clone(labels),
                    )?));
                }
                Backend::Streaming(stream) => {
                    chunk = chunk.max(stream.chunk_len());
                    sources.push(Arc::clone(stream.source()));
                }
                Backend::Mapped(mapped) => {
                    sources.push(Arc::clone(mapped.source()));
                }
            }
        }
        let concat: Arc<dyn RecordSource> = Arc::new(ConcatSource::new(sources)?);
        if chunk == 0 {
            // No streamed part: mapped (plus any in-memory) sources are
            // all direct-read, so the result keeps the cache-less path.
            return Ok(ClientSet::mapped(MappedClientSet::new(concat)));
        }
        Ok(ClientSet::streaming(StreamingClientSet::new(
            concat, chunk,
        )?))
    }
}

/// A federated client: private train/test splits plus its aggregation
/// weight `n_k` (its training sample count, per the paper's weighted
/// averaging).
#[derive(Debug, Clone, PartialEq)]
pub struct Client {
    /// 1-based client index, matching the paper's Table 2.
    pub id: usize,
    /// Private training split.
    pub train: ClientSet,
    /// Private testing split (unseen designs).
    pub test: ClientSet,
}

impl Client {
    /// Creates a client.
    pub fn new(id: usize, train: ClientSet, test: ClientSet) -> Self {
        Client { id, train, test }
    }

    /// Aggregation weight `n_k` — the number of training samples.
    pub fn weight(&self) -> usize {
        self.train.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(n: usize, fill: f32) -> ClientSet {
        ClientSet::new(
            Tensor::full(&[n, 2, 4, 4], fill),
            Tensor::zeros(&[n, 1, 4, 4]),
        )
        .unwrap()
    }

    /// The same split, streamed from a TensorSource.
    fn streamed(n: usize, fill: f32, chunk: usize) -> ClientSet {
        let source = TensorSource::new(
            Tensor::full(&[n, 2, 4, 4], fill),
            Tensor::zeros(&[n, 1, 4, 4]),
        )
        .unwrap();
        ClientSet::streaming(StreamingClientSet::new(Arc::new(source), chunk).unwrap())
    }

    #[test]
    fn new_validates_shapes() {
        assert!(ClientSet::new(Tensor::zeros(&[2, 3, 4, 4]), Tensor::zeros(&[2, 1, 4, 4])).is_ok());
        // batch mismatch
        assert!(
            ClientSet::new(Tensor::zeros(&[2, 3, 4, 4]), Tensor::zeros(&[3, 1, 4, 4])).is_err()
        );
        // multi-channel labels
        assert!(
            ClientSet::new(Tensor::zeros(&[2, 3, 4, 4]), Tensor::zeros(&[2, 2, 4, 4])).is_err()
        );
        // rank
        assert!(ClientSet::new(Tensor::zeros(&[2, 3, 4]), Tensor::zeros(&[2, 1, 4, 4])).is_err());
    }

    #[test]
    fn minibatch_copies_rows() {
        let mut features = Tensor::zeros(&[3, 1, 2, 2]);
        for i in 0..3 {
            for j in 0..4 {
                features.data_mut()[i * 4 + j] = i as f32;
            }
        }
        let set = ClientSet::new(features, Tensor::zeros(&[3, 1, 2, 2])).unwrap();
        let (x, _) = set.minibatch(&[2, 0]);
        assert_eq!(x.data()[..4], [2.0; 4]);
        assert_eq!(x.data()[4..], [0.0; 4]);
    }

    #[test]
    fn minibatch_range_matches_index_minibatch() {
        let mut features = Tensor::zeros(&[4, 2, 2, 2]);
        for (i, v) in features.data_mut().iter_mut().enumerate() {
            *v = i as f32;
        }
        let mut labels = Tensor::zeros(&[4, 1, 2, 2]);
        for (i, v) in labels.data_mut().iter_mut().enumerate() {
            *v = (i % 2) as f32;
        }
        let set = ClientSet::new(features, labels).unwrap();
        let (xr, yr) = set.minibatch_range(1..3);
        let (xi, yi) = set.minibatch(&[1, 2]);
        assert_eq!(xr, xi);
        assert_eq!(yr, yi);
    }

    #[test]
    #[should_panic(expected = "minibatch range")]
    fn minibatch_range_rejects_out_of_bounds() {
        let set = set(3, 0.0);
        let _ = set.minibatch_range(2..5);
    }

    #[test]
    fn sample_minibatch_bounds() {
        let set = set(5, 1.0);
        let mut rng = Xoshiro256::seed_from(1);
        let (x, y) = set.sample_minibatch(3, &mut rng);
        assert_eq!(x.dim(0), 3);
        assert_eq!(y.dim(0), 3);
        // Oversized request degrades to the full set.
        let (x, _) = set.sample_minibatch(10, &mut rng);
        assert_eq!(x.dim(0), 5);
    }

    #[test]
    fn streaming_backend_serves_identical_minibatches() {
        let mut features = Tensor::zeros(&[6, 2, 4, 4]);
        for (i, v) in features.data_mut().iter_mut().enumerate() {
            *v = (i % 97) as f32 * 0.25;
        }
        let labels = Tensor::from_fn(&[6, 1, 4, 4], |i| (i % 3 == 0) as u8 as f32);
        let memory = ClientSet::new(features.clone(), labels.clone()).unwrap();
        let stream = ClientSet::streaming(
            StreamingClientSet::new(Arc::new(TensorSource::new(features, labels).unwrap()), 2)
                .unwrap(),
        );
        assert_eq!(memory.len(), stream.len());
        assert_eq!(memory.geometry(), stream.geometry());
        assert_eq!(memory.minibatch(&[4, 1, 1]), stream.minibatch(&[4, 1, 1]));
        assert_eq!(memory.minibatch_range(1..5), stream.minibatch_range(1..5));
        // The RNG-driven sampler consumes the stream identically.
        let mut rng_a = Xoshiro256::seed_from(9);
        let mut rng_b = Xoshiro256::seed_from(9);
        assert_eq!(
            memory.sample_minibatch(3, &mut rng_a),
            stream.sample_minibatch(3, &mut rng_b)
        );
        assert!(stream.features().is_none());
        assert!(memory.features().is_some());
    }

    /// The same split, behind the cache-less mapped backend.
    fn mapped(n: usize, fill: f32) -> ClientSet {
        let source = TensorSource::new(
            Tensor::full(&[n, 2, 4, 4], fill),
            Tensor::zeros(&[n, 1, 4, 4]),
        )
        .unwrap();
        ClientSet::mapped(MappedClientSet::new(Arc::new(source)))
    }

    #[test]
    fn mapped_backend_serves_identical_minibatches() {
        let features = Tensor::from_fn(&[6, 2, 4, 4], |i| (i % 97) as f32 * 0.25);
        let labels = Tensor::from_fn(&[6, 1, 4, 4], |i| (i % 3 == 0) as u8 as f32);
        let memory = ClientSet::new(features.clone(), labels.clone()).unwrap();
        let mapped = ClientSet::mapped(MappedClientSet::new(Arc::new(
            TensorSource::new(features, labels).unwrap(),
        )));
        assert_eq!(memory.len(), mapped.len());
        assert_eq!(memory.geometry(), mapped.geometry());
        assert_eq!(memory.minibatch(&[4, 1, 1]), mapped.minibatch(&[4, 1, 1]));
        assert_eq!(memory.minibatch_range(1..5), mapped.minibatch_range(1..5));
        let mut rng_a = Xoshiro256::seed_from(9);
        let mut rng_b = Xoshiro256::seed_from(9);
        assert_eq!(
            memory.sample_minibatch(3, &mut rng_a),
            mapped.sample_minibatch(3, &mut rng_b)
        );
        assert!(mapped.features().is_none());
        assert!(mapped.as_mapped().is_some());
        assert!(mapped.as_streaming().is_none());
    }

    #[test]
    fn concat_of_mapped_parts_stays_mapped() {
        let a = mapped(2, 1.0);
        let b = mapped(3, 2.0);
        let all = ClientSet::concat(&[&a, &b]).unwrap();
        assert_eq!(all.len(), 5);
        assert!(all.as_mapped().is_some(), "all-mapped concat stays mapped");
        let eager = ClientSet::concat(&[&set(2, 1.0), &set(3, 2.0)]).unwrap();
        assert_eq!(all.minibatch_range(0..5), eager.minibatch_range(0..5));
        // A streamed part pulls the result onto the chunk-cached path.
        let c = streamed(2, 3.0, 2);
        let with_stream = ClientSet::concat(&[&a, &c]).unwrap();
        assert!(with_stream.as_streaming().is_some());
    }

    #[test]
    fn concat_pools_samples() {
        let a = set(2, 1.0);
        let b = set(3, 2.0);
        let all = ClientSet::concat(&[&a, &b]).unwrap();
        assert_eq!(all.len(), 5);
        assert_eq!(all.features().unwrap().data()[0], 1.0);
        assert_eq!(all.features().unwrap().data()[2 * 32], 2.0);
        assert!(ClientSet::concat(&[]).is_err());
    }

    #[test]
    fn concat_with_streaming_part_stays_streaming() {
        let a = set(2, 1.0);
        let b = streamed(3, 2.0, 2);
        let all = ClientSet::concat(&[&a, &b]).unwrap();
        assert_eq!(all.len(), 5);
        assert!(all.as_streaming().is_some(), "must not materialize");
        // Same bytes as the eager concat of the same data.
        let eager = ClientSet::concat(&[&a, &set(3, 2.0)]).unwrap();
        assert_eq!(all.minibatch_range(0..5), eager.minibatch_range(0..5));
    }

    #[test]
    fn client_weight_is_train_size() {
        let c = Client::new(3, set(7, 0.0), set(2, 0.0));
        assert_eq!(c.weight(), 7);
        assert_eq!(c.id, 3);
    }
}
