//! Client-side data containers.

use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

use crate::FedError;

/// One data split held privately by a client: features `(N, C, H, W)` and
/// labels `(N, 1, H, W)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSet {
    features: Tensor,
    labels: Tensor,
}

impl ClientSet {
    /// Wraps pre-batched feature/label tensors.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] if ranks, batch sizes or
    /// spatial extents disagree, or the label tensor is not single-channel.
    pub fn new(features: Tensor, labels: Tensor) -> Result<Self, FedError> {
        if features.shape().rank() != 4 || labels.shape().rank() != 4 {
            return Err(FedError::InvalidConfig {
                reason: "features and labels must be rank-4 (NCHW)".into(),
            });
        }
        if features.dim(0) != labels.dim(0)
            || labels.dim(1) != 1
            || features.dim(2) != labels.dim(2)
            || features.dim(3) != labels.dim(3)
        {
            return Err(FedError::InvalidConfig {
                reason: format!(
                    "feature shape {} incompatible with label shape {}",
                    features.shape(),
                    labels.shape()
                ),
            });
        }
        Ok(ClientSet { features, labels })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.dim(0)
    }

    /// True when the split holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The full feature tensor.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// The full label tensor.
    pub fn labels(&self) -> &Tensor {
        &self.labels
    }

    /// Copies the samples at `indices` into a contiguous minibatch.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds (internal callers sample
    /// indices from `0..len()`).
    pub fn minibatch(&self, indices: &[usize]) -> (Tensor, Tensor) {
        let n = indices.len();
        let (c, h, w) = (
            self.features.dim(1),
            self.features.dim(2),
            self.features.dim(3),
        );
        let xs = c * h * w;
        let ys = h * w;
        let mut x = Tensor::zeros(&[n, c, h, w]);
        let mut y = Tensor::zeros(&[n, 1, h, w]);
        for (bi, &si) in indices.iter().enumerate() {
            assert!(si < self.len(), "minibatch index out of bounds");
            x.data_mut()[bi * xs..(bi + 1) * xs]
                .copy_from_slice(&self.features.data()[si * xs..(si + 1) * xs]);
            y.data_mut()[bi * ys..(bi + 1) * ys]
                .copy_from_slice(&self.labels.data()[si * ys..(si + 1) * ys]);
        }
        (x, y)
    }

    /// Copies the contiguous samples `range` into a minibatch without
    /// building an index list — both tensors are row-contiguous, so this
    /// is two bulk `copy_from_slice` calls (the evaluation hot path).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or ends past `len()`.
    pub fn minibatch_range(&self, range: std::ops::Range<usize>) -> (Tensor, Tensor) {
        assert!(
            range.start < range.end && range.end <= self.len(),
            "minibatch range {range:?} invalid for {} samples",
            self.len()
        );
        let n = range.len();
        let (c, h, w) = (
            self.features.dim(1),
            self.features.dim(2),
            self.features.dim(3),
        );
        let xs = c * h * w;
        let ys = h * w;
        let mut x = Tensor::zeros(&[n, c, h, w]);
        let mut y = Tensor::zeros(&[n, 1, h, w]);
        x.data_mut()
            .copy_from_slice(&self.features.data()[range.start * xs..range.end * xs]);
        y.data_mut()
            .copy_from_slice(&self.labels.data()[range.start * ys..range.end * ys]);
        (x, y)
    }

    /// Samples a random minibatch of `batch_size` (with replacement when
    /// `batch_size > len`, without otherwise).
    pub fn sample_minibatch(&self, batch_size: usize, rng: &mut Xoshiro256) -> (Tensor, Tensor) {
        let n = self.len();
        let indices: Vec<usize> = if batch_size >= n {
            (0..n).collect()
        } else {
            rng.sample_indices(n, batch_size)
        };
        self.minibatch(&indices)
    }

    /// Concatenates several splits into one (used by centralized
    /// training).
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] if the splits disagree on
    /// geometry or the list is empty.
    pub fn concat(sets: &[&ClientSet]) -> Result<ClientSet, FedError> {
        let first = sets.first().ok_or_else(|| FedError::InvalidConfig {
            reason: "concat of zero client sets".into(),
        })?;
        let (c, h, w) = (
            first.features.dim(1),
            first.features.dim(2),
            first.features.dim(3),
        );
        let total: usize = sets.iter().map(|s| s.len()).sum();
        let mut x = Vec::with_capacity(total * c * h * w);
        let mut y = Vec::with_capacity(total * h * w);
        for s in sets {
            if s.features.dim(1) != c || s.features.dim(2) != h || s.features.dim(3) != w {
                return Err(FedError::InvalidConfig {
                    reason: "client sets disagree on geometry".into(),
                });
            }
            x.extend_from_slice(s.features.data());
            y.extend_from_slice(s.labels.data());
        }
        Ok(ClientSet {
            features: Tensor::from_vec(x, &[total, c, h, w])?,
            labels: Tensor::from_vec(y, &[total, 1, h, w])?,
        })
    }
}

/// A federated client: private train/test splits plus its aggregation
/// weight `n_k` (its training sample count, per the paper's weighted
/// averaging).
#[derive(Debug, Clone, PartialEq)]
pub struct Client {
    /// 1-based client index, matching the paper's Table 2.
    pub id: usize,
    /// Private training split.
    pub train: ClientSet,
    /// Private testing split (unseen designs).
    pub test: ClientSet,
}

impl Client {
    /// Creates a client.
    pub fn new(id: usize, train: ClientSet, test: ClientSet) -> Self {
        Client { id, train, test }
    }

    /// Aggregation weight `n_k` — the number of training samples.
    pub fn weight(&self) -> usize {
        self.train.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(n: usize, fill: f32) -> ClientSet {
        ClientSet::new(
            Tensor::full(&[n, 2, 4, 4], fill),
            Tensor::zeros(&[n, 1, 4, 4]),
        )
        .unwrap()
    }

    #[test]
    fn new_validates_shapes() {
        assert!(ClientSet::new(Tensor::zeros(&[2, 3, 4, 4]), Tensor::zeros(&[2, 1, 4, 4])).is_ok());
        // batch mismatch
        assert!(
            ClientSet::new(Tensor::zeros(&[2, 3, 4, 4]), Tensor::zeros(&[3, 1, 4, 4])).is_err()
        );
        // multi-channel labels
        assert!(
            ClientSet::new(Tensor::zeros(&[2, 3, 4, 4]), Tensor::zeros(&[2, 2, 4, 4])).is_err()
        );
        // rank
        assert!(ClientSet::new(Tensor::zeros(&[2, 3, 4]), Tensor::zeros(&[2, 1, 4, 4])).is_err());
    }

    #[test]
    fn minibatch_copies_rows() {
        let mut features = Tensor::zeros(&[3, 1, 2, 2]);
        for i in 0..3 {
            for j in 0..4 {
                features.data_mut()[i * 4 + j] = i as f32;
            }
        }
        let set = ClientSet::new(features, Tensor::zeros(&[3, 1, 2, 2])).unwrap();
        let (x, _) = set.minibatch(&[2, 0]);
        assert_eq!(x.data()[..4], [2.0; 4]);
        assert_eq!(x.data()[4..], [0.0; 4]);
    }

    #[test]
    fn minibatch_range_matches_index_minibatch() {
        let mut features = Tensor::zeros(&[4, 2, 2, 2]);
        for (i, v) in features.data_mut().iter_mut().enumerate() {
            *v = i as f32;
        }
        let mut labels = Tensor::zeros(&[4, 1, 2, 2]);
        for (i, v) in labels.data_mut().iter_mut().enumerate() {
            *v = (i % 2) as f32;
        }
        let set = ClientSet::new(features, labels).unwrap();
        let (xr, yr) = set.minibatch_range(1..3);
        let (xi, yi) = set.minibatch(&[1, 2]);
        assert_eq!(xr, xi);
        assert_eq!(yr, yi);
    }

    #[test]
    #[should_panic(expected = "minibatch range")]
    fn minibatch_range_rejects_out_of_bounds() {
        let set = set(3, 0.0);
        let _ = set.minibatch_range(2..5);
    }

    #[test]
    fn sample_minibatch_bounds() {
        let set = set(5, 1.0);
        let mut rng = Xoshiro256::seed_from(1);
        let (x, y) = set.sample_minibatch(3, &mut rng);
        assert_eq!(x.dim(0), 3);
        assert_eq!(y.dim(0), 3);
        // Oversized request degrades to the full set.
        let (x, _) = set.sample_minibatch(10, &mut rng);
        assert_eq!(x.dim(0), 5);
    }

    #[test]
    fn concat_pools_samples() {
        let a = set(2, 1.0);
        let b = set(3, 2.0);
        let all = ClientSet::concat(&[&a, &b]).unwrap();
        assert_eq!(all.len(), 5);
        assert_eq!(all.features().data()[0], 1.0);
        assert_eq!(all.features().data()[2 * 32], 2.0);
        assert!(ClientSet::concat(&[]).is_err());
    }

    #[test]
    fn client_weight_is_train_size() {
        let c = Client::new(3, set(7, 0.0), set(2, 0.0));
        assert_eq!(c.weight(), 7);
        assert_eq!(c.id, 3);
    }
}
