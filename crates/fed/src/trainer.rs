//! Client-side local training (the per-round inner loop of Eq. 1).

use std::collections::BTreeMap;

use rte_nn::loss::mse;
use rte_nn::optim::{Adam, Optimizer};
use rte_nn::{Layer, StateDict};
use rte_tensor::rng::Xoshiro256;

use crate::{ClientSet, FedError};

/// Runs minibatch Adam on one client's data, optionally with the FedProx
/// proximal term `μ‖W^r − w_k‖²` pulling towards a reference (global)
/// state dict.
///
/// A fresh optimizer is constructed per call: each round's local training
/// starts from freshly deployed global parameters, so stale Adam moments
/// must not leak across rounds.
#[derive(Debug, Clone)]
pub struct LocalTrainer {
    /// Learning rate.
    pub lr: f32,
    /// L2 regularization strength.
    pub weight_decay: f32,
    /// FedProx proximal strength μ (0 recovers FedAvg-style local SGD).
    pub mu: f32,
    /// Minibatch size.
    pub batch_size: usize,
}

impl LocalTrainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` or `batch_size` is not positive.
    pub fn new(lr: f32, weight_decay: f32, mu: f32, batch_size: usize) -> Self {
        assert!(lr > 0.0, "LocalTrainer: non-positive lr");
        assert!(batch_size > 0, "LocalTrainer: zero batch size");
        LocalTrainer {
            lr,
            weight_decay,
            mu,
            batch_size,
        }
    }

    /// Trains `model` for `steps` minibatch updates on `data`, returning
    /// the mean training loss over the steps.
    ///
    /// When `reference` is `Some`, each parameter gradient receives the
    /// FedProx term `2μ(w − W^r)` before the optimizer step.
    ///
    /// # Errors
    ///
    /// Returns [`FedError`] on forward/backward failures, when the data
    /// set is empty, or when `steps` is zero (which would otherwise
    /// report a fabricated 0.0 loss without doing any training).
    pub fn train(
        &self,
        model: &mut dyn Layer,
        data: &ClientSet,
        reference: Option<&StateDict>,
        steps: usize,
        rng: &mut Xoshiro256,
    ) -> Result<f32, FedError> {
        if data.is_empty() {
            return Err(FedError::InvalidConfig {
                reason: "training on empty client set".into(),
            });
        }
        if steps == 0 {
            return Err(FedError::InvalidConfig {
                reason: "training with zero steps would report a fake 0.0 loss".into(),
            });
        }
        let reference_map: Option<BTreeMap<&str, &rte_tensor::Tensor>> =
            reference.map(|sd| sd.iter().map(|(n, t)| (n.as_str(), t)).collect());
        let mut optimizer = Adam::new(self.lr, self.weight_decay);
        let mut total_loss = 0.0f64;
        for _ in 0..steps {
            let (x, y) = data.try_sample_minibatch(self.batch_size, rng)?;
            let pred = model.forward(&x, true)?;
            let loss = mse(&pred, &y)?;
            total_loss += loss.value as f64;
            model.zero_grad();
            model.backward(&loss.grad)?;
            if let (Some(map), true) = (&reference_map, self.mu > 0.0) {
                let mu = self.mu;
                let mut prox_error: Option<FedError> = None;
                model.visit_params("", &mut |name, p| {
                    if prox_error.is_some() {
                        return;
                    }
                    match map.get(name.as_str()) {
                        Some(global) => {
                            if global.numel() != p.value.numel() {
                                prox_error = Some(FedError::AggregationMismatch {
                                    reason: format!(
                                        "reference {name} has {} elements, parameter has {}",
                                        global.numel(),
                                        p.value.numel()
                                    ),
                                });
                                return;
                            }
                            // d/dw μ‖w − W‖² = 2μ(w − W)
                            for i in 0..p.grad.numel() {
                                p.grad.data_mut()[i] +=
                                    2.0 * mu * (p.value.data()[i] - global.data()[i]);
                            }
                        }
                        None => {
                            prox_error = Some(FedError::AggregationMismatch {
                                reason: format!("reference dict lacks {name}"),
                            });
                        }
                    }
                });
                if let Some(e) = prox_error {
                    return Err(e);
                }
            }
            optimizer.step(model);
        }
        Ok((total_loss / steps as f64) as f32)
    }

    /// Mean MSE of `model` on a full pass over `data` without updating
    /// parameters (used by IFCA's cluster selection).
    ///
    /// # Errors
    ///
    /// Returns [`FedError`] on forward failures or empty data.
    pub fn eval_loss(&self, model: &mut dyn Layer, data: &ClientSet) -> Result<f32, FedError> {
        if data.is_empty() {
            return Err(FedError::InvalidConfig {
                reason: "loss evaluation on empty client set".into(),
            });
        }
        let n = data.len();
        let mut total = 0.0f64;
        let mut start = 0usize;
        while start < n {
            let end = (start + self.batch_size).min(n);
            let (x, y) = data.try_minibatch_range(start..end)?;
            let pred = model.forward(&x, false)?;
            total += mse(&pred, &y)?.value as f64 * (end - start) as f64;
            start = end;
        }
        Ok((total / n as f64) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rte_nn::models::{FlNet, FlNetConfig};
    use rte_nn::state_dict;
    use rte_tensor::Tensor;

    fn toy_data(seed: u64, n: usize) -> ClientSet {
        // Labels correlate with channel 0: learnable task.
        let mut rng = Xoshiro256::seed_from(seed);
        let mut x = Tensor::from_fn(&[n, 2, 8, 8], |_| rng.uniform());
        let mut y = Tensor::zeros(&[n, 1, 8, 8]);
        for ni in 0..n {
            for i in 0..64 {
                let v = x.data()[ni * 128 + i];
                y.data_mut()[ni * 64 + i] = if v > 0.6 { 1.0 } else { 0.0 };
            }
        }
        // Add mild noise to the other channel so it is uninformative.
        for ni in 0..n {
            for i in 0..64 {
                x.data_mut()[ni * 128 + 64 + i] = rng.uniform();
            }
        }
        ClientSet::new(x, y).unwrap()
    }

    fn small_model(seed: u64) -> FlNet {
        let mut rng = Xoshiro256::seed_from(seed);
        FlNet::new(
            FlNetConfig {
                in_channels: 2,
                hidden: 6,
                kernel: 3,
                depth: 2,
            },
            &mut rng,
        )
    }

    #[test]
    fn training_reduces_loss() {
        let data = toy_data(1, 8);
        let mut model = small_model(2);
        let trainer = LocalTrainer::new(5e-3, 0.0, 0.0, 4);
        let mut rng = Xoshiro256::seed_from(3);
        let first = trainer.train(&mut model, &data, None, 5, &mut rng).unwrap();
        let later = trainer
            .train(&mut model, &data, None, 60, &mut rng)
            .unwrap();
        assert!(later < first, "loss {first} -> {later}");
    }

    #[test]
    fn proximal_term_limits_drift() {
        let data = toy_data(4, 8);
        let trainer_free = LocalTrainer::new(5e-3, 0.0, 0.0, 4);
        let trainer_prox = LocalTrainer::new(5e-3, 0.0, 0.5, 4);
        let mut m_free = small_model(5);
        let mut m_prox = small_model(5);
        let reference = state_dict(&mut m_free);
        let mut rng1 = Xoshiro256::seed_from(6);
        let mut rng2 = Xoshiro256::seed_from(6);
        trainer_free
            .train(&mut m_free, &data, Some(&reference), 40, &mut rng1)
            .unwrap();
        trainer_prox
            .train(&mut m_prox, &data, Some(&reference), 40, &mut rng2)
            .unwrap();
        let drift_free =
            crate::params::l2_distance_sq(&state_dict(&mut m_free), &reference).unwrap();
        let drift_prox =
            crate::params::l2_distance_sq(&state_dict(&mut m_prox), &reference).unwrap();
        assert!(
            drift_prox < drift_free,
            "prox drift {drift_prox} !< free drift {drift_free}"
        );
    }

    #[test]
    fn zero_steps_is_error_not_fake_loss() {
        // Regression: `steps == 0` used to return Ok(0.0) via the
        // `steps.max(1)` divisor — a fabricated perfect loss with no
        // training performed.
        let data = toy_data(20, 4);
        let mut model = small_model(21);
        let trainer = LocalTrainer::new(1e-3, 0.0, 0.0, 2);
        let mut rng = Xoshiro256::seed_from(22);
        let err = trainer
            .train(&mut model, &data, None, 0, &mut rng)
            .unwrap_err();
        assert!(matches!(err, FedError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn mismatched_reference_shape_is_error_not_panic() {
        // Regression: a reference entry with the right name but the wrong
        // shape used to index out of bounds inside the prox loop.
        let data = toy_data(23, 4);
        let mut model = small_model(24);
        let trainer = LocalTrainer::new(1e-3, 0.0, 0.1, 2);
        let mut reference = state_dict(&mut model);
        reference[0].1 = Tensor::zeros(&[1]);
        let mut rng = Xoshiro256::seed_from(25);
        let err = trainer
            .train(&mut model, &data, Some(&reference), 1, &mut rng)
            .unwrap_err();
        assert!(matches!(err, FedError::AggregationMismatch { .. }), "{err}");
    }

    #[test]
    fn missing_reference_entry_is_error() {
        let data = toy_data(7, 4);
        let mut model = small_model(8);
        let trainer = LocalTrainer::new(1e-3, 0.0, 0.1, 2);
        let bad_reference = vec![("nonexistent".to_string(), Tensor::zeros(&[1]))];
        let mut rng = Xoshiro256::seed_from(9);
        assert!(trainer
            .train(&mut model, &data, Some(&bad_reference), 1, &mut rng)
            .is_err());
    }

    #[test]
    fn empty_data_is_error() {
        let x = Tensor::zeros(&[0, 2, 8, 8]);
        let y = Tensor::zeros(&[0, 1, 8, 8]);
        let empty = ClientSet::new(x, y).unwrap();
        let mut model = small_model(1);
        let trainer = LocalTrainer::new(1e-3, 0.0, 0.0, 2);
        let mut rng = Xoshiro256::seed_from(1);
        assert!(trainer
            .train(&mut model, &empty, None, 1, &mut rng)
            .is_err());
        assert!(trainer.eval_loss(&mut model, &empty).is_err());
    }

    #[test]
    fn eval_loss_is_batch_invariant() {
        let data = toy_data(10, 6);
        let mut model = small_model(11);
        let t1 = LocalTrainer::new(1e-3, 0.0, 0.0, 1);
        let t6 = LocalTrainer::new(1e-3, 0.0, 0.0, 6);
        let a = t1.eval_loss(&mut model, &data).unwrap();
        let b = t6.eval_loss(&mut model, &data).unwrap();
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn deterministic_training() {
        let data = toy_data(12, 6);
        let trainer = LocalTrainer::new(2e-3, 1e-5, 1e-4, 3);
        let run = || {
            let mut model = small_model(13);
            let reference = state_dict(&mut model);
            let mut rng = Xoshiro256::seed_from(14);
            trainer
                .train(&mut model, &data, Some(&reference), 10, &mut rng)
                .unwrap();
            state_dict(&mut model)
        };
        assert_eq!(run(), run());
    }
}
