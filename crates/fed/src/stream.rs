//! Bounded-memory streaming data feeding for clients whose corpora do
//! not fit in RAM.
//!
//! The federated formulation assumes clients iterate local data they
//! cannot hold (or share) wholesale; this module models that directly:
//!
//! - [`RecordSource`] — the minimal random-access contract a sample
//!   store must offer (length, geometry, "read records `a..b` into flat
//!   f32 buffers"). The EDA shard files implement it via an adapter in
//!   `rte-core`; [`TensorSource`] backs it with in-memory tensors (for
//!   tests and for mixed concatenation), and [`ConcatSource`] splices
//!   several sources into one logical store.
//! - [`StreamingClientSet`] — a [`crate::ClientSet`] backend that feeds
//!   [`crate::LocalTrainer`] and [`crate::eval::Evaluator`] from chunk
//!   iterators holding **at most two chunks** in memory: the chunk being
//!   consumed and the next one, prefetched alongside it on the existing
//!   [`rte_tensor::parallel`] pool (the classic double buffer). Random
//!   training minibatches bypass the cache entirely and read exactly the
//!   records they need.
//!
//! # Determinism contract
//!
//! Streaming changes *where bytes are read from*, never *which bytes a
//! minibatch holds*: minibatch index sampling stays in
//! [`crate::ClientSet`] (one derivation point for both backends), and
//! records hold the same f32 bit patterns the in-memory tensors would.
//! Streamed training and evaluation are therefore **bit-identical to
//! the in-memory path at any thread count and any chunk size** —
//! `tests/streaming_determinism.rs` pins the full `MethodOutcome` and
//! every `EvalReport` field across both axes.

use std::ops::Range;
use std::sync::{Arc, Mutex};

use rte_tensor::parallel::{self, map_with};
use rte_tensor::Tensor;

use crate::FedError;

/// Random-access source of fixed-geometry `(features, label)` records.
///
/// Implementations must be cheap to read from at arbitrary offsets
/// (seekable files, in-memory tensors); all reads go through
/// [`RecordSource::read_into`] so one code path serves both sequential
/// chunk streaming and random minibatch gathers.
pub trait RecordSource: Send + Sync {
    /// Total number of records.
    fn len(&self) -> usize;

    /// True when the source holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(channels, height, width)` of every record.
    fn geometry(&self) -> (usize, usize, usize);

    /// Appends records `range` (record-major, row-major planes) to the
    /// flat output buffers.
    ///
    /// # Errors
    ///
    /// Returns [`FedError`] for out-of-range reads or storage failures
    /// (I/O errors, checksum mismatches).
    fn read_into(
        &self,
        range: Range<usize>,
        features: &mut Vec<f32>,
        labels: &mut Vec<f32>,
    ) -> Result<(), FedError>;

    /// Stable human-readable identity (file path, construction recipe)
    /// used for `Debug`/`PartialEq` of the wrapping client set.
    fn descriptor(&self) -> String;
}

/// [`RecordSource`] over in-memory NCHW tensors — the bridge that lets
/// streaming and in-memory data mix (and the natural source for tests).
///
/// The planes sit behind [`Arc`], so building a source over tensors that
/// are already shared (e.g. pooling an in-memory [`crate::ClientSet`]
/// into a [`ConcatSource`]) copies pointers, not data.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorSource {
    features: Arc<Tensor>,
    labels: Arc<Tensor>,
}

impl TensorSource {
    /// Wraps pre-batched `(N, C, H, W)` features and `(N, 1, H, W)`
    /// labels.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] for rank/shape disagreements,
    /// exactly like [`crate::ClientSet::new`].
    pub fn new(features: Tensor, labels: Tensor) -> Result<Self, FedError> {
        TensorSource::from_shared(Arc::new(features), Arc::new(labels))
    }

    /// [`TensorSource::new`] over already-shared tensors — zero-copy.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TensorSource::new`].
    pub fn from_shared(features: Arc<Tensor>, labels: Arc<Tensor>) -> Result<Self, FedError> {
        if features.shape().rank() != 4 || labels.shape().rank() != 4 {
            return Err(FedError::InvalidConfig {
                reason: "features and labels must be rank-4 (NCHW)".into(),
            });
        }
        if features.dim(0) != labels.dim(0)
            || labels.dim(1) != 1
            || features.dim(2) != labels.dim(2)
            || features.dim(3) != labels.dim(3)
        {
            return Err(FedError::InvalidConfig {
                reason: format!(
                    "feature shape {} incompatible with label shape {}",
                    features.shape(),
                    labels.shape()
                ),
            });
        }
        Ok(TensorSource { features, labels })
    }
}

impl RecordSource for TensorSource {
    fn len(&self) -> usize {
        self.features.dim(0)
    }

    fn geometry(&self) -> (usize, usize, usize) {
        (
            self.features.dim(1),
            self.features.dim(2),
            self.features.dim(3),
        )
    }

    fn read_into(
        &self,
        range: Range<usize>,
        features: &mut Vec<f32>,
        labels: &mut Vec<f32>,
    ) -> Result<(), FedError> {
        if range.start >= range.end || range.end > self.len() {
            return Err(FedError::Stream {
                reason: format!("record range {range:?} invalid for {} records", self.len()),
            });
        }
        let (c, h, w) = self.geometry();
        let xs = c * h * w;
        let ys = h * w;
        features.extend_from_slice(&self.features.data()[range.start * xs..range.end * xs]);
        labels.extend_from_slice(&self.labels.data()[range.start * ys..range.end * ys]);
        Ok(())
    }

    fn descriptor(&self) -> String {
        // Content-addressed: two sources over same-shape but different
        // data must not compare equal through the wrapping client set's
        // descriptor-based PartialEq.
        let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for t in [self.features.as_ref(), self.labels.as_ref()] {
            for v in t.data() {
                hash ^= u64::from(v.to_bits());
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        let (c, h, w) = self.geometry();
        format!("tensor({}x{c}x{h}x{w}#{hash:016x})", self.len())
    }
}

/// [`RecordSource`] that splices several sources into one logical store
/// (record `i` of source `k` appears after every record of sources
/// `0..k`) — how centralized training pools client splits without
/// materializing them.
pub struct ConcatSource {
    sources: Vec<Arc<dyn RecordSource>>,
    /// Exclusive running totals: `ends[k]` = records in sources `0..=k`.
    ends: Vec<usize>,
}

impl ConcatSource {
    /// Concatenates `sources` in order.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] for an empty list or
    /// geometry disagreements between sources.
    pub fn new(sources: Vec<Arc<dyn RecordSource>>) -> Result<Self, FedError> {
        let first = sources.first().ok_or_else(|| FedError::InvalidConfig {
            reason: "concat of zero record sources".into(),
        })?;
        let geometry = first.geometry();
        let mut ends = Vec::with_capacity(sources.len());
        let mut total = 0usize;
        for s in &sources {
            if s.geometry() != geometry {
                return Err(FedError::InvalidConfig {
                    reason: "record sources disagree on geometry".into(),
                });
            }
            total += s.len();
            ends.push(total);
        }
        Ok(ConcatSource { sources, ends })
    }
}

impl RecordSource for ConcatSource {
    fn len(&self) -> usize {
        self.ends.last().copied().unwrap_or(0)
    }

    fn geometry(&self) -> (usize, usize, usize) {
        self.sources[0].geometry()
    }

    fn read_into(
        &self,
        range: Range<usize>,
        features: &mut Vec<f32>,
        labels: &mut Vec<f32>,
    ) -> Result<(), FedError> {
        if range.start >= range.end || range.end > self.len() {
            return Err(FedError::Stream {
                reason: format!("record range {range:?} invalid for {} records", self.len()),
            });
        }
        let mut pos = range.start;
        for (k, source) in self.sources.iter().enumerate() {
            if pos >= range.end {
                break;
            }
            let start_of_k = self.ends[k] - source.len();
            if pos >= self.ends[k] {
                continue;
            }
            let local_start = pos - start_of_k;
            let local_end = (range.end - start_of_k).min(source.len());
            source.read_into(local_start..local_end, features, labels)?;
            pos = start_of_k + local_end;
        }
        Ok(())
    }

    fn descriptor(&self) -> String {
        let parts: Vec<String> = self.sources.iter().map(|s| s.descriptor()).collect();
        format!("concat[{}]", parts.join("+"))
    }
}

/// One resident chunk of records.
struct ChunkBuf {
    /// Chunk index (`records [index*chunk .. )`).
    index: usize,
    /// Records in this chunk (the last chunk may be short).
    len: usize,
    features: Vec<f32>,
    labels: Vec<f32>,
}

/// The double buffer: at most two resident chunks plus the high-water
/// mark of resident samples (the bounded-memory proof the benches and
/// tests assert against).
struct ChunkCache {
    slots: Vec<ChunkBuf>,
    peak_resident: usize,
}

/// A client split streamed from a [`RecordSource`] with bounded memory.
///
/// Sequential scans (evaluation, full-batch loss) are served from a
/// two-slot chunk cache: when a scan enters an uncached chunk, that
/// chunk *and the next one* are fetched together on the
/// [`rte_tensor::parallel`] pool, so at most `2 × chunk` samples are
/// ever resident (track record: [`StreamingClientSet::peak_resident_samples`]).
/// Random minibatch gathers read exactly the requested records and keep
/// nothing.
///
/// Cloning shares the underlying source but starts an empty cache;
/// equality compares provenance (source descriptor, length, geometry,
/// chunk size), not buffered bytes.
pub struct StreamingClientSet {
    source: Arc<dyn RecordSource>,
    chunk: usize,
    cache: Mutex<ChunkCache>,
}

impl std::fmt::Debug for StreamingClientSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingClientSet")
            .field("source", &self.source.descriptor())
            .field("len", &self.source.len())
            .field("chunk", &self.chunk)
            .finish()
    }
}

impl Clone for StreamingClientSet {
    fn clone(&self) -> Self {
        StreamingClientSet {
            source: Arc::clone(&self.source),
            chunk: self.chunk,
            cache: Mutex::new(ChunkCache {
                slots: Vec::new(),
                peak_resident: 0,
            }),
        }
    }
}

impl PartialEq for StreamingClientSet {
    fn eq(&self, other: &Self) -> bool {
        self.chunk == other.chunk
            && self.source.len() == other.source.len()
            && self.source.geometry() == other.source.geometry()
            && self.source.descriptor() == other.source.descriptor()
    }
}

impl StreamingClientSet {
    /// Wraps `source`, streaming `chunk` samples at a time.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] for a zero chunk size.
    pub fn new(source: Arc<dyn RecordSource>, chunk: usize) -> Result<Self, FedError> {
        if chunk == 0 {
            return Err(FedError::InvalidConfig {
                reason: "streaming chunk size must be positive".into(),
            });
        }
        Ok(StreamingClientSet {
            source,
            chunk,
            cache: Mutex::new(ChunkCache {
                slots: Vec::new(),
                peak_resident: 0,
            }),
        })
    }

    /// Number of samples in the split.
    pub fn len(&self) -> usize {
        self.source.len()
    }

    /// True when the split holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(channels, height, width)` of every sample.
    pub fn geometry(&self) -> (usize, usize, usize) {
        self.source.geometry()
    }

    /// Samples streamed per chunk.
    pub fn chunk_len(&self) -> usize {
        self.chunk
    }

    /// The shared record source.
    pub fn source(&self) -> &Arc<dyn RecordSource> {
        &self.source
    }

    /// High-water mark of samples resident in the streaming buffers —
    /// bounded by `2 × chunk_len` by construction, regardless of how
    /// large the split is. (Minibatch tensors handed to the caller are
    /// excluded: the in-memory path allocates those too.)
    pub fn peak_resident_samples(&self) -> usize {
        self.cache
            .lock()
            .expect("chunk cache lock poisoned")
            .peak_resident
    }

    fn n_chunks(&self) -> usize {
        self.len().div_ceil(self.chunk)
    }

    fn chunk_range(&self, index: usize) -> Range<usize> {
        let start = index * self.chunk;
        start..((start + self.chunk).min(self.len()))
    }

    /// Loads chunk `index` (and, as the double-buffer prefetch, chunk
    /// `index + 1` when it exists and is not already resident) on the
    /// current thread-default parallel budget. Stale slots are evicted
    /// *before* the fetch, so at most two chunks are ever resident —
    /// either the freshly fetched `(index, index + 1)` pair, or a kept
    /// prefetched `index + 1` plus the fetched `index`.
    fn load_into_cache(&self, index: usize) -> Result<(), FedError> {
        let to_load: Vec<usize> = {
            let mut cache = self.cache.lock().expect("chunk cache lock poisoned");
            // Evict everything except a still-useful prefetched next
            // chunk; dropping before fetching is what bounds residency
            // at 2 × chunk.
            cache.slots.retain(|s| s.index == index + 1);
            let mut want = vec![index];
            let next = index + 1;
            if next < self.n_chunks() && !cache.slots.iter().any(|s| s.index == next) {
                want.push(next);
            }
            want
        };
        // Fetch the pair on the pool: two buffers decode concurrently on
        // the coordinator thread's budget, and degrade to a serial fetch
        // inside nested parallel regions (the evaluator's workers).
        let loaded = map_with(
            parallel::global(),
            &to_load,
            || (),
            |(), _, &ci| -> Result<ChunkBuf, FedError> {
                let range = self.chunk_range(ci);
                let (c, h, w) = self.geometry();
                let n = range.len();
                let mut features = Vec::with_capacity(n * c * h * w);
                let mut labels = Vec::with_capacity(n * h * w);
                self.source.read_into(range, &mut features, &mut labels)?;
                Ok(ChunkBuf {
                    index: ci,
                    len: n,
                    features,
                    labels,
                })
            },
        )
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        let mut cache = self.cache.lock().expect("chunk cache lock poisoned");
        cache.slots.extend(loaded);
        let resident: usize = cache.slots.iter().map(|s| s.len).sum();
        cache.peak_resident = cache.peak_resident.max(resident);
        Ok(())
    }

    /// Copies the contiguous samples `range` into a minibatch, streaming
    /// through the chunk cache (the evaluation hot path).
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] for an empty or out-of-bounds
    /// range and [`FedError::Stream`] for storage failures.
    pub fn range_batch(&self, range: Range<usize>) -> Result<(Tensor, Tensor), FedError> {
        if range.start >= range.end || range.end > self.len() {
            return Err(FedError::InvalidConfig {
                reason: format!(
                    "minibatch range {range:?} invalid for {} samples",
                    self.len()
                ),
            });
        }
        let (c, h, w) = self.geometry();
        let xs = c * h * w;
        let ys = h * w;
        let n = range.len();
        let mut x = Tensor::zeros(&[n, c, h, w]);
        let mut y = Tensor::zeros(&[n, 1, h, w]);
        let first_chunk = range.start / self.chunk;
        let last_chunk = (range.end - 1) / self.chunk;
        for ci in first_chunk..=last_chunk {
            let needs_load = {
                let cache = self.cache.lock().expect("chunk cache lock poisoned");
                !cache.slots.iter().any(|s| s.index == ci)
            };
            if needs_load {
                self.load_into_cache(ci)?;
            }
            let chunk_range = self.chunk_range(ci);
            let copy_start = range.start.max(chunk_range.start);
            let copy_end = range.end.min(chunk_range.end);
            let dst = copy_start - range.start;
            let rows = copy_end - copy_start;
            let cache = self.cache.lock().expect("chunk cache lock poisoned");
            if let Some(buf) = cache.slots.iter().find(|s| s.index == ci) {
                let src = copy_start - chunk_range.start;
                x.data_mut()[dst * xs..(dst + rows) * xs]
                    .copy_from_slice(&buf.features[src * xs..(src + rows) * xs]);
                y.data_mut()[dst * ys..(dst + rows) * ys]
                    .copy_from_slice(&buf.labels[src * ys..(src + rows) * ys]);
            } else {
                // A concurrent scan evicted the chunk between our load
                // and this copy; read the rows directly rather than
                // thrashing the shared cache.
                drop(cache);
                let mut features = Vec::with_capacity(rows * xs);
                let mut labels = Vec::with_capacity(rows * ys);
                self.source
                    .read_into(copy_start..copy_end, &mut features, &mut labels)?;
                x.data_mut()[dst * xs..(dst + rows) * xs].copy_from_slice(&features);
                y.data_mut()[dst * ys..(dst + rows) * ys].copy_from_slice(&labels);
            }
        }
        Ok((x, y))
    }

    /// Copies the samples at `indices` into a minibatch, reading exactly
    /// the requested records (random training access keeps nothing
    /// resident). Consecutive ascending index runs are coalesced into
    /// single reads, so a sorted batch costs one read per gap rather
    /// than one per sample.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] for out-of-bounds indices and
    /// [`FedError::Stream`] for storage failures.
    pub fn gather(&self, indices: &[usize]) -> Result<(Tensor, Tensor), FedError> {
        let (c, h, w) = self.geometry();
        let n = indices.len();
        if let Some(&bad) = indices.iter().find(|&&si| si >= self.len()) {
            return Err(FedError::InvalidConfig {
                reason: format!(
                    "minibatch index {bad} out of bounds ({} samples)",
                    self.len()
                ),
            });
        }
        let mut features = Vec::with_capacity(n * c * h * w);
        let mut labels = Vec::with_capacity(n * h * w);
        let mut i = 0usize;
        while i < n {
            // Extend the run while indices stay consecutive ascending;
            // batch row order is preserved because the output rows are
            // exactly indices[i..j] in order.
            let start = indices[i];
            let mut j = i + 1;
            while j < n && indices[j] == start + (j - i) {
                j += 1;
            }
            self.source
                .read_into(start..start + (j - i), &mut features, &mut labels)?;
            i = j;
        }
        let x = Tensor::from_vec(features, &[n, c, h, w])?;
        let y = Tensor::from_vec(labels, &[n, 1, h, w])?;
        Ok((x, y))
    }
}

/// A client split served directly from a memory-mapped (or otherwise
/// zero-copy) [`RecordSource`] — the third [`crate::ClientSet`] backend.
///
/// Unlike [`StreamingClientSet`], there is **no chunk cache**: the OS
/// page cache already plays that role for a mapped file, so every batch
/// reads straight through [`RecordSource::read_into`] into the output
/// tensors and nothing stays resident in userspace. Minibatch *index
/// selection* still happens in [`crate::ClientSet`] (the single
/// derivation point), and the records carry the same f32 bit patterns
/// as the other two backends — so the mapped path is bit-identical to
/// in-memory and read-based streaming at any thread count.
pub struct MappedClientSet {
    source: Arc<dyn RecordSource>,
}

impl std::fmt::Debug for MappedClientSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedClientSet")
            .field("source", &self.source.descriptor())
            .field("len", &self.source.len())
            .finish()
    }
}

impl Clone for MappedClientSet {
    fn clone(&self) -> Self {
        MappedClientSet {
            source: Arc::clone(&self.source),
        }
    }
}

impl PartialEq for MappedClientSet {
    fn eq(&self, other: &Self) -> bool {
        self.source.len() == other.source.len()
            && self.source.geometry() == other.source.geometry()
            && self.source.descriptor() == other.source.descriptor()
    }
}

impl MappedClientSet {
    /// Wraps `source`.
    pub fn new(source: Arc<dyn RecordSource>) -> Self {
        MappedClientSet { source }
    }

    /// Number of samples in the split.
    pub fn len(&self) -> usize {
        self.source.len()
    }

    /// True when the split holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(channels, height, width)` of every sample.
    pub fn geometry(&self) -> (usize, usize, usize) {
        self.source.geometry()
    }

    /// The shared record source.
    pub fn source(&self) -> &Arc<dyn RecordSource> {
        &self.source
    }

    /// Copies the contiguous samples `range` into a minibatch — one
    /// direct read, no userspace buffering.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] for an empty or out-of-bounds
    /// range and [`FedError::Stream`] for storage failures.
    pub fn range_batch(&self, range: Range<usize>) -> Result<(Tensor, Tensor), FedError> {
        if range.start >= range.end || range.end > self.len() {
            return Err(FedError::InvalidConfig {
                reason: format!(
                    "minibatch range {range:?} invalid for {} samples",
                    self.len()
                ),
            });
        }
        let (c, h, w) = self.geometry();
        let n = range.len();
        let mut features = Vec::with_capacity(n * c * h * w);
        let mut labels = Vec::with_capacity(n * h * w);
        self.source.read_into(range, &mut features, &mut labels)?;
        let x = Tensor::from_vec(features, &[n, c, h, w])?;
        let y = Tensor::from_vec(labels, &[n, 1, h, w])?;
        Ok((x, y))
    }

    /// Copies the samples at `indices` into a minibatch, coalescing
    /// consecutive ascending runs into single reads exactly like
    /// [`StreamingClientSet::gather`].
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] for out-of-bounds indices and
    /// [`FedError::Stream`] for storage failures.
    pub fn gather(&self, indices: &[usize]) -> Result<(Tensor, Tensor), FedError> {
        let (c, h, w) = self.geometry();
        let n = indices.len();
        if let Some(&bad) = indices.iter().find(|&&si| si >= self.len()) {
            return Err(FedError::InvalidConfig {
                reason: format!(
                    "minibatch index {bad} out of bounds ({} samples)",
                    self.len()
                ),
            });
        }
        let mut features = Vec::with_capacity(n * c * h * w);
        let mut labels = Vec::with_capacity(n * h * w);
        let mut i = 0usize;
        while i < n {
            let start = indices[i];
            let mut j = i + 1;
            while j < n && indices[j] == start + (j - i) {
                j += 1;
            }
            self.source
                .read_into(start..start + (j - i), &mut features, &mut labels)?;
            i = j;
        }
        let x = Tensor::from_vec(features, &[n, c, h, w])?;
        let y = Tensor::from_vec(labels, &[n, 1, h, w])?;
        Ok((x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 0..n counting source: sample `i`'s features are `i` everywhere,
    /// labels `i % 2`. `reads` counts read_into calls for cache asserts.
    struct CountingSource {
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        reads: std::sync::atomic::AtomicUsize,
    }

    impl CountingSource {
        fn new(n: usize) -> Self {
            CountingSource {
                n,
                c: 2,
                h: 3,
                w: 3,
                reads: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl RecordSource for CountingSource {
        fn len(&self) -> usize {
            self.n
        }

        fn geometry(&self) -> (usize, usize, usize) {
            (self.c, self.h, self.w)
        }

        fn read_into(
            &self,
            range: Range<usize>,
            features: &mut Vec<f32>,
            labels: &mut Vec<f32>,
        ) -> Result<(), FedError> {
            self.reads
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            for i in range {
                features.extend(std::iter::repeat(i as f32).take(self.c * self.h * self.w));
                labels.extend(std::iter::repeat((i % 2) as f32).take(self.h * self.w));
            }
            Ok(())
        }

        fn descriptor(&self) -> String {
            format!("counting({})", self.n)
        }
    }

    fn streaming(n: usize, chunk: usize) -> StreamingClientSet {
        StreamingClientSet::new(Arc::new(CountingSource::new(n)), chunk).unwrap()
    }

    #[test]
    fn zero_chunk_rejected() {
        let err = StreamingClientSet::new(Arc::new(CountingSource::new(4)), 0).unwrap_err();
        assert!(matches!(err, FedError::InvalidConfig { .. }));
    }

    #[test]
    fn range_batch_matches_source_content() {
        let set = streaming(10, 3);
        let (x, y) = set.range_batch(2..7).unwrap();
        assert_eq!(x.shape().dims(), &[5, 2, 3, 3]);
        assert_eq!(y.shape().dims(), &[5, 1, 3, 3]);
        for bi in 0..5 {
            let want = (2 + bi) as f32;
            assert!(x.data()[bi * 18..(bi + 1) * 18].iter().all(|&v| v == want));
            assert!(y.data()[bi * 9..(bi + 1) * 9]
                .iter()
                .all(|&v| v == ((2 + bi) % 2) as f32));
        }
    }

    #[test]
    fn sequential_scan_is_memory_bounded_and_reads_each_chunk_once() {
        let set = streaming(20, 4);
        let mut batches = Vec::new();
        let mut start = 0;
        while start < 20 {
            let end = (start + 3).min(20);
            batches.push(set.range_batch(start..end).unwrap());
            start = end;
        }
        // 20 samples / chunk 4 = 5 chunk reads, each exactly once.
        let source = set.source();
        assert_eq!(source.len(), 20);
        assert!(set.peak_resident_samples() <= 2 * 4, "double-buffer bound");
        assert!(set.peak_resident_samples() >= 4);
        // Stitch the batches back together: a full pass.
        let total: usize = batches.iter().map(|(x, _)| x.dim(0)).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn gather_matches_range_batch_rows() {
        let set = streaming(9, 2);
        let (xr, yr) = set.range_batch(3..6).unwrap();
        let (xg, yg) = set.gather(&[3, 4, 5]).unwrap();
        assert_eq!(xr, xg);
        assert_eq!(yr, yg);
        // Out-of-order gather reorders rows.
        let (x, _) = set.gather(&[5, 3]).unwrap();
        assert!(x.data()[..18].iter().all(|&v| v == 5.0));
        assert!(x.data()[18..].iter().all(|&v| v == 3.0));
    }

    #[test]
    fn invalid_ranges_and_indices_are_errors() {
        let set = streaming(4, 2);
        assert!(set.range_batch(2..2).is_err());
        assert!(set.range_batch(2..9).is_err());
        assert!(set.gather(&[4]).is_err());
    }

    #[test]
    fn clone_shares_source_but_not_cache() {
        let set = streaming(8, 2);
        let _ = set.range_batch(0..4).unwrap();
        let clone = set.clone();
        assert_eq!(set, clone);
        assert!(set.peak_resident_samples() > 0);
        assert_eq!(clone.peak_resident_samples(), 0);
    }

    #[test]
    fn concat_source_splices_in_order() {
        let a: Arc<dyn RecordSource> = Arc::new(CountingSource::new(3));
        let b: Arc<dyn RecordSource> = Arc::new(CountingSource::new(2));
        let concat = ConcatSource::new(vec![a, b]).unwrap();
        assert_eq!(concat.len(), 5);
        let mut f = Vec::new();
        let mut l = Vec::new();
        // Crosses the seam: records 2 (from a) then 0, 1 (from b).
        concat.read_into(2..5, &mut f, &mut l).unwrap();
        assert!(f[..18].iter().all(|&v| v == 2.0));
        assert!(f[18..36].iter().all(|&v| v == 0.0));
        assert!(f[36..].iter().all(|&v| v == 1.0));
        assert!(ConcatSource::new(Vec::new()).is_err());
    }

    #[test]
    fn same_shape_different_data_sets_are_not_equal() {
        let make = |fill: f32| {
            let src = TensorSource::new(
                Tensor::full(&[3, 2, 2, 2], fill),
                Tensor::zeros(&[3, 1, 2, 2]),
            )
            .unwrap();
            StreamingClientSet::new(Arc::new(src), 2).unwrap()
        };
        let a = make(1.0);
        let b = make(2.0);
        assert_ne!(a, b, "content must distinguish same-shape sources");
        assert_eq!(a, make(1.0), "same content compares equal");
    }

    #[test]
    fn mapped_set_matches_streaming_set_bitwise() {
        let source: Arc<dyn RecordSource> = Arc::new(CountingSource::new(9));
        let mapped = MappedClientSet::new(Arc::clone(&source));
        let streamed = StreamingClientSet::new(source, 2).unwrap();
        assert_eq!(mapped.len(), 9);
        assert_eq!(mapped.geometry(), streamed.geometry());
        assert_eq!(
            mapped.range_batch(2..7).unwrap(),
            streamed.range_batch(2..7).unwrap()
        );
        assert_eq!(
            mapped.gather(&[5, 1, 2, 3]).unwrap(),
            streamed.gather(&[5, 1, 2, 3]).unwrap()
        );
        assert!(mapped.range_batch(7..7).is_err());
        assert!(mapped.gather(&[9]).is_err());
        assert_eq!(mapped, mapped.clone());
    }

    #[test]
    fn tensor_source_round_trips() {
        let features = Tensor::from_fn(&[3, 2, 2, 2], |i| i as f32);
        let labels = Tensor::from_fn(&[3, 1, 2, 2], |i| (i % 2) as f32);
        let src = TensorSource::new(features.clone(), labels.clone()).unwrap();
        assert_eq!(src.len(), 3);
        let mut f = Vec::new();
        let mut l = Vec::new();
        src.read_into(0..3, &mut f, &mut l).unwrap();
        assert_eq!(f, features.data());
        assert_eq!(l, labels.data());
        // Shape validation mirrors ClientSet::new.
        assert!(
            TensorSource::new(Tensor::zeros(&[2, 2, 2, 2]), Tensor::zeros(&[3, 1, 2, 2])).is_err()
        );
    }
}
