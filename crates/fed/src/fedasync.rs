//! Buffered asynchronous federated rounds on a seeded virtual clock.
//!
//! Synchronous FedProx waits for the slowest participant each round; an
//! asynchronous coordinator instead aggregates whenever a *buffer* of
//! `B` updates has arrived (FedBuff-style), weighting each arrival down
//! by its staleness `s` — the number of aggregations applied since the
//! client was dispatched — as `n_k · (1 + s)^{-decay}`, then mixing the
//! buffered mean into the global model with weight `mix` (FedAsync's
//! `η`).
//!
//! Determinism contract rule 8: async outcomes are pinned by running
//! the schedule on a **seeded virtual clock**. Client latencies,
//! dropout draws, and rejoin times come from a [`SplitMix64`] stream
//! seeded by [`AsyncConfig::seed`], and events replay through an
//! [`EventQueue`] ordered by `(tick, lane, seq)` — so the arrival
//! order, staleness values, and every aggregate are byte-identical
//! across runs, thread counts, and machines
//! (`tests/fedasync_replay.rs` pins this). The documented opt-out is
//! [`run_fedasync_wall`], which takes true wall-clock arrival order
//! from a [`rte_net::FanIn`] and is *not* reproducible — CI never runs
//! it beyond a smoke check.

use rte_net::{EventQueue, SplitMix64, Transport, VirtualClock, WallClock};
use rte_nn::StateDict;

use crate::federation::{ClientSession, COORDINATOR};
use crate::methods::{Harness, MethodOutcome};
use crate::params::aggregate;
use crate::wire::{recv_message, send_message, Message};
use crate::{Aggregation, Client, FedConfig, FedError, Method, ModelFactory};

/// Hyper-parameters of the asynchronous schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncConfig {
    /// Number of buffered aggregations to apply (the async analogue of
    /// `FedConfig::rounds`).
    pub aggregations: usize,
    /// Buffer size `B`: aggregate whenever this many updates arrived.
    pub buffer: usize,
    /// Server mixing weight `η ∈ (0, 1]`: how far the global model moves
    /// towards each buffered mean (1.0 = replace).
    pub mix: f64,
    /// Staleness discount exponent: arrival weight is
    /// `n_k · (1 + staleness)^{-staleness_decay}`.
    pub staleness_decay: f64,
    /// Per-dispatch probability that a client drops out mid-training and
    /// its update never arrives, in `[0, 1)`.
    pub dropout: f64,
    /// Virtual ticks a dropped client stays offline before rejoining.
    pub rejoin_delay: u64,
    /// Training latencies are drawn uniformly from `[1, max_latency]`
    /// virtual ticks — the straggler spread.
    pub max_latency: u64,
    /// Seed for the latency/dropout trace (independent of the training
    /// seed, so the same fleet can replay different schedules).
    pub seed: u64,
    /// Evaluate and record every this many aggregations (0 = final
    /// only; the last aggregation is always recorded).
    pub eval_every: usize,
}

impl AsyncConfig {
    /// A small default schedule: moderate buffering, mild staleness
    /// discount, visible straggler spread, no dropout.
    pub fn new(aggregations: usize, buffer: usize) -> Self {
        AsyncConfig {
            aggregations,
            buffer,
            mix: 0.5,
            staleness_decay: 0.5,
            dropout: 0.0,
            rejoin_delay: 8,
            max_latency: 10,
            seed: 0xA57C_10C4,
            eval_every: 0,
        }
    }

    /// Validates the schedule against a fleet size.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] for an empty schedule, a
    /// buffer larger than the fleet, or out-of-range rates.
    pub fn validate(&self, n_clients: usize) -> Result<(), FedError> {
        if self.aggregations == 0 || self.buffer == 0 {
            return Err(FedError::InvalidConfig {
                reason: "aggregations and buffer must be positive".into(),
            });
        }
        if self.buffer > n_clients {
            return Err(FedError::InvalidConfig {
                reason: format!(
                    "buffer {} exceeds fleet size {n_clients} (would deadlock)",
                    self.buffer
                ),
            });
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(FedError::InvalidConfig {
                reason: format!("dropout {} outside [0, 1)", self.dropout),
            });
        }
        if !(self.mix > 0.0 && self.mix <= 1.0) {
            return Err(FedError::InvalidConfig {
                reason: format!("mix {} outside (0, 1]", self.mix),
            });
        }
        if self.staleness_decay < 0.0 {
            return Err(FedError::InvalidConfig {
                reason: format!("negative staleness decay {}", self.staleness_decay),
            });
        }
        if self.max_latency == 0 {
            return Err(FedError::InvalidConfig {
                reason: "max_latency must be at least one tick".into(),
            });
        }
        Ok(())
    }
}

/// One applied buffered aggregation (the async analogue of
/// [`crate::methods::RoundRecord`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncRoundRecord {
    /// 1-based index of this aggregation.
    pub aggregation: usize,
    /// Virtual tick (or wall milliseconds in the opt-out) at which the
    /// buffer filled.
    pub tick: u64,
    /// The buffered arrivals as `(client, staleness)`, in arrival order.
    pub arrivals: Vec<(usize, u64)>,
    /// Mean ROC AUC of the post-aggregation global model over all
    /// clients (`NAN` when this aggregation was not an eval point —
    /// compare through [`crate::fedasync::render_async_history`] or the
    /// `arrivals`/`tick` fields, not through float equality on this).
    pub average_auc: f64,
    /// Mean training loss reported by the buffered arrivals.
    pub mean_train_loss: f64,
}

/// Produces one `(client, dispatch)` update — the training half of an
/// async slot. Implemented in-process ([`LocalExecutor`]) and over
/// transport links ([`LinkExecutor`]); both compute the identical slot,
/// which is what lets the replay test pin one against the other.
pub trait TrainExecutor {
    /// Trains `client` from `start` for `steps`, where `dispatch` is the
    /// globally unique dispatch id feeding the per-slot RNG stream.
    ///
    /// # Errors
    ///
    /// Returns any training or transport failure.
    fn train(
        &mut self,
        client: usize,
        dispatch: u64,
        start: &StateDict,
        steps: usize,
    ) -> Result<(StateDict, f32), FedError>;

    /// Releases the executor's clients once the schedule completes —
    /// transport-backed executors send each link a shutdown so remote
    /// serve loops exit cleanly instead of dying on a closed socket.
    /// The in-process default is a no-op.
    ///
    /// # Errors
    ///
    /// Returns any transport failure.
    fn shutdown(&mut self) -> Result<(), FedError> {
        Ok(())
    }
}

/// In-process executor: one [`ClientSession`] per fleet client, trained
/// on the coordinator thread in event order.
pub struct LocalExecutor<'a> {
    sessions: Vec<ClientSession<'a>>,
}

impl<'a> LocalExecutor<'a> {
    /// Builds one session per fleet client.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] for an invalid config.
    pub fn new(
        clients: &'a [Client],
        factory: &'a ModelFactory,
        config: &'a FedConfig,
    ) -> Result<Self, FedError> {
        let sessions = (0..clients.len())
            .map(|me| ClientSession::new(clients, me, factory, config, None))
            .collect::<Result<_, _>>()?;
        Ok(LocalExecutor { sessions })
    }
}

impl TrainExecutor for LocalExecutor<'_> {
    fn train(
        &mut self,
        client: usize,
        dispatch: u64,
        start: &StateDict,
        steps: usize,
    ) -> Result<(StateDict, f32), FedError> {
        self.sessions[client].train_slot(dispatch, steps, start)
    }
}

/// Transport-backed executor: each slot is a synchronous deploy/update
/// exchange on the client's link, with the dispatch id carried in the
/// deploy's `round` field.
pub struct LinkExecutor<'a, T: Transport> {
    links: &'a mut [T],
    seq: u64,
}

impl<'a, T: Transport> LinkExecutor<'a, T> {
    /// Wraps `links`, where `links[k]` speaks to fleet client `k`.
    pub fn new(links: &'a mut [T]) -> Self {
        LinkExecutor { links, seq: 0 }
    }
}

impl<T: Transport> TrainExecutor for LinkExecutor<'_, T> {
    fn train(
        &mut self,
        client: usize,
        dispatch: u64,
        start: &StateDict,
        steps: usize,
    ) -> Result<(StateDict, f32), FedError> {
        let seq = self.seq;
        self.seq += 1;
        send_message(
            &mut self.links[client],
            Message::Deploy {
                round: dispatch,
                steps: steps as u64,
                participants: Vec::new(),
                state: start.clone(),
            },
            COORDINATOR,
            seq,
        )?;
        let (_, message) = recv_message(&mut self.links[client])?;
        match message {
            Message::Update {
                round,
                client: got,
                loss,
                state,
            } => {
                if round != dispatch || got != client as u32 {
                    return Err(FedError::Transport {
                        reason: format!(
                            "expected dispatch {dispatch} update from client {client}, \
                             got dispatch {round} from client {got}"
                        ),
                    });
                }
                Ok((state, loss))
            }
            other => Err(FedError::Transport {
                reason: format!("expected async update, got kind {}", other.kind()),
            }),
        }
    }

    fn shutdown(&mut self) -> Result<(), FedError> {
        for link in self.links.iter_mut() {
            let seq = self.seq;
            self.seq += 1;
            send_message(link, Message::Shutdown, COORDINATOR, seq)?;
        }
        Ok(())
    }
}

/// The staleness-weighted buffered aggregation core, shared by the
/// virtual-clock and wall-clock drivers so the opt-out cannot drift
/// from the pinned semantics.
struct Buffered<'h, 'a> {
    harness: &'h Harness<'a>,
    cfg: AsyncConfig,
    global: StateDict,
    version: usize,
    buffer: Vec<(StateDict, f64, usize, u64, f32)>,
    records: Vec<AsyncRoundRecord>,
}

impl<'h, 'a> Buffered<'h, 'a> {
    fn new(harness: &'h Harness<'a>, cfg: AsyncConfig, global: StateDict) -> Self {
        Buffered {
            harness,
            cfg,
            global,
            version: 0,
            buffer: Vec::new(),
            records: Vec::new(),
        }
    }

    fn done(&self) -> bool {
        self.version >= self.cfg.aggregations
    }

    /// Accepts one arrival; when the buffer fills, applies the buffered
    /// aggregation and records it.
    fn offer(
        &mut self,
        client: usize,
        dispatched_version: usize,
        state: StateDict,
        loss: f32,
        tick: u64,
    ) -> Result<(), FedError> {
        let staleness = (self.version - dispatched_version) as u64;
        let weight = self.harness.clients[client].weight() as f64
            * (1.0 + staleness as f64).powf(-self.cfg.staleness_decay);
        self.buffer.push((state, weight, client, staleness, loss));
        if self.buffer.len() < self.cfg.buffer {
            return Ok(());
        }
        let refs: Vec<(&StateDict, f64)> =
            self.buffer.iter().map(|(s, w, _, _, _)| (s, *w)).collect();
        let mean = aggregate(&refs, Aggregation::WeightedMean)?;
        // Server mixing in f64: g ← (1 − η)·g + η·mean, coordinate-wise
        // on the coordinator thread (determinism rule 6).
        let mix = self.cfg.mix;
        for ((_, g), (_, m)) in self.global.iter_mut().zip(&mean) {
            for (gv, mv) in g.data_mut().iter_mut().zip(m.data()) {
                *gv = ((1.0 - mix) * (*gv as f64) + mix * (*mv as f64)) as f32;
            }
        }
        self.version += 1;
        let record_point = self.version == self.cfg.aggregations
            || (self.cfg.eval_every > 0 && self.version % self.cfg.eval_every == 0);
        let average_auc = if record_point {
            let reports = self.harness.eval_global(&self.global)?;
            crate::eval::mean_auc(&reports)
        } else {
            f64::NAN
        };
        let mean_train_loss = self
            .buffer
            .iter()
            .map(|(_, _, _, _, l)| *l as f64)
            .sum::<f64>()
            / self.buffer.len() as f64;
        self.records.push(AsyncRoundRecord {
            aggregation: self.version,
            tick,
            arrivals: self.buffer.iter().map(|(_, _, c, s, _)| (*c, *s)).collect(),
            average_auc,
            mean_train_loss,
        });
        self.buffer.clear();
        Ok(())
    }
}

/// One pending virtual-clock event.
enum Event {
    /// A client's trained update lands.
    Arrival {
        client: usize,
        dispatched_version: usize,
        state: StateDict,
        loss: f32,
    },
    /// A dropped client comes back online and can be redispatched.
    Rejoin { client: usize },
}

/// Runs the buffered async schedule on the seeded virtual clock
/// (determinism rule 8's pinned mode), returning the final outcome and
/// the per-aggregation records.
///
/// Every client is dispatched at tick 0 and redispatched as soon as its
/// update arrives (or after `rejoin_delay` when a dropout draw eats the
/// update). Training executes in event order through `executor`, so
/// in-process and over-the-wire runs produce byte-identical traces.
///
/// # Errors
///
/// Returns [`FedError::InvalidConfig`] for an invalid schedule, or any
/// training/transport failure.
pub fn run_fedasync<E: TrainExecutor>(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
    async_cfg: &AsyncConfig,
    executor: &mut E,
) -> Result<(MethodOutcome, Vec<AsyncRoundRecord>), FedError> {
    async_cfg.validate(clients.len())?;
    let harness = Harness::new(clients, factory, config)?;
    let mut scratch = Harness::new(clients, factory, config)?;
    let global = scratch.initial_state();
    let mut state = Buffered::new(&harness, async_cfg.clone(), global);
    let mut schedule_rng = SplitMix64::new(async_cfg.seed);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut clock = VirtualClock::new();
    let mut dispatches: u64 = 0;

    let dispatch = |client: usize,
                    now: u64,
                    version: usize,
                    global: &StateDict,
                    rng: &mut SplitMix64,
                    queue: &mut EventQueue<Event>,
                    dispatches: &mut u64,
                    executor: &mut E|
     -> Result<(), FedError> {
        let latency = rng.next_range(1, async_cfg.max_latency);
        let dropped = async_cfg.dropout > 0.0 && rng.bernoulli(async_cfg.dropout);
        if dropped {
            queue.push(
                now + latency + async_cfg.rejoin_delay,
                client as u64,
                Event::Rejoin { client },
            );
            return Ok(());
        }
        let id = *dispatches;
        *dispatches += 1;
        let (trained, loss) = executor.train(client, id, global, config.local_steps)?;
        queue.push(
            now + latency,
            client as u64,
            Event::Arrival {
                client,
                dispatched_version: version,
                state: trained,
                loss,
            },
        );
        Ok(())
    };

    for client in 0..clients.len() {
        dispatch(
            client,
            0,
            0,
            &state.global,
            &mut schedule_rng,
            &mut queue,
            &mut dispatches,
            executor,
        )?;
    }

    while !state.done() {
        let Some((tick, _, event)) = queue.pop() else {
            return Err(FedError::InvalidConfig {
                reason: "async schedule starved: every client is offline \
                         and none will rejoin"
                    .into(),
            });
        };
        clock.advance_to(tick);
        match event {
            Event::Arrival {
                client,
                dispatched_version,
                state: trained,
                loss,
            } => {
                state.offer(client, dispatched_version, trained, loss, tick)?;
                if !state.done() {
                    dispatch(
                        client,
                        tick,
                        state.version,
                        &state.global,
                        &mut schedule_rng,
                        &mut queue,
                        &mut dispatches,
                        executor,
                    )?;
                }
            }
            Event::Rejoin { client } => {
                dispatch(
                    client,
                    tick,
                    state.version,
                    &state.global,
                    &mut schedule_rng,
                    &mut queue,
                    &mut dispatches,
                    executor,
                )?;
            }
        }
    }

    executor.shutdown()?;
    let per_client = harness.eval_global(&state.global)?;
    let outcome = MethodOutcome::new(Method::FedProx, per_client, Vec::new());
    Ok((outcome, state.records))
}

/// The documented **non-deterministic** opt-out: buffered async driven
/// by true wall-clock arrival order from a [`rte_net::FanIn`].
///
/// `send_links[k]` must be the write side of the connection whose read
/// side went into `fan` at index `k`. Dropout/rejoin simulation is a
/// virtual-clock feature and does not apply here — real clients are as
/// slow as they really are. Record `tick`s are wall milliseconds.
/// Nothing about this mode is reproducible; CI only smoke-checks it.
///
/// # Errors
///
/// Returns [`FedError::InvalidConfig`] for an invalid schedule, or any
/// training/transport failure.
pub fn run_fedasync_wall<S: Transport>(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
    async_cfg: &AsyncConfig,
    send_links: &mut [S],
    fan: &mut rte_net::FanIn,
) -> Result<(MethodOutcome, Vec<AsyncRoundRecord>), FedError> {
    async_cfg.validate(clients.len())?;
    if send_links.len() != clients.len() || fan.links() != clients.len() {
        return Err(FedError::InvalidConfig {
            reason: format!(
                "{} send links / {} fan links for {} clients",
                send_links.len(),
                fan.links(),
                clients.len()
            ),
        });
    }
    let harness = Harness::new(clients, factory, config)?;
    let mut scratch = Harness::new(clients, factory, config)?;
    let global = scratch.initial_state();
    let mut state = Buffered::new(&harness, async_cfg.clone(), global);
    let clock = WallClock::new();
    let mut seq = 0u64;
    let mut dispatched_at = vec![0usize; clients.len()];

    let deploy = |client: usize,
                  version: usize,
                  global: &StateDict,
                  seq: &mut u64,
                  dispatched_at: &mut [usize],
                  send_links: &mut [S]|
     -> Result<(), FedError> {
        dispatched_at[client] = version;
        let s = *seq;
        *seq += 1;
        send_message(
            &mut send_links[client],
            Message::Deploy {
                round: s,
                steps: config.local_steps as u64,
                participants: Vec::new(),
                state: global.clone(),
            },
            COORDINATOR,
            s,
        )
    };

    for client in 0..clients.len() {
        deploy(
            client,
            0,
            &state.global,
            &mut seq,
            &mut dispatched_at,
            send_links,
        )?;
    }
    while !state.done() {
        let (index, frame) = fan.recv_any().map_err(crate::wire::net_err)?;
        let message = Message::from_frame(&frame)?;
        let Message::Update {
            client,
            loss,
            state: trained,
            ..
        } = message
        else {
            return Err(FedError::Transport {
                reason: format!("expected async update, got kind {}", message.kind()),
            });
        };
        if client as usize != index {
            return Err(FedError::Transport {
                reason: format!("client {client} answered on link {index}"),
            });
        }
        let landed = clock.elapsed_ms();
        state.offer(index, dispatched_at[index], trained, loss, landed)?;
        if !state.done() {
            deploy(
                index,
                state.version,
                &state.global,
                &mut seq,
                &mut dispatched_at,
                send_links,
            )?;
        }
    }
    for link in send_links.iter_mut() {
        let _ = send_message(link, Message::Shutdown, COORDINATOR, seq);
        seq += 1;
    }
    let per_client = harness.eval_global(&state.global)?;
    let outcome = MethodOutcome::new(Method::FedProx, per_client, Vec::new());
    Ok((outcome, state.records))
}

/// Renders an async history as a fixed-format table (one line per
/// aggregation) — the byte string the replay test pins.
pub fn render_async_history(label: &str, records: &[AsyncRoundRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{label}\n"));
    out.push_str("agg   tick    loss     auc      arrivals (client:staleness)\n");
    for r in records {
        let arrivals = r
            .arrivals
            .iter()
            .map(|(c, s)| format!("{c}:{s}"))
            .collect::<Vec<_>>()
            .join(" ");
        let auc = if r.average_auc.is_nan() {
            "   -  ".to_string()
        } else {
            format!("{:<6.4}", r.average_auc)
        };
        out.push_str(&format!(
            "{:<5} {:<7} {:<8.4} {auc}   {arrivals}\n",
            r.aggregation, r.tick, r.mean_train_loss
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federation::local_links;
    use crate::methods::test_support::{clients, factory};

    fn async_cfg() -> AsyncConfig {
        AsyncConfig {
            aggregations: 3,
            buffer: 2,
            eval_every: 1,
            dropout: 0.2,
            ..AsyncConfig::new(3, 2)
        }
    }

    #[test]
    fn virtual_clock_schedule_is_reproducible() {
        let clients = clients(3);
        let factory = factory();
        let config = FedConfig::tiny();
        let cfg = async_cfg();
        let run = || {
            let mut exec = LocalExecutor::new(&clients, &factory, &config).unwrap();
            run_fedasync(&clients, &factory, &config, &cfg, &mut exec).unwrap()
        };
        let (a, ra) = run();
        let (b, rb) = run();
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        assert_eq!(ra.len(), 3);
        assert!(ra.iter().all(|r| r.arrivals.len() == 2));
    }

    #[test]
    fn link_executor_matches_local_executor_bitwise() {
        let clients = clients(3);
        let factory = factory();
        let config = FedConfig::tiny();
        let cfg = async_cfg();
        let mut local = LocalExecutor::new(&clients, &factory, &config).unwrap();
        let (a, ra) = run_fedasync(&clients, &factory, &config, &cfg, &mut local).unwrap();
        let mut links = local_links(&clients, &factory, &config, None).unwrap();
        let mut wired = LinkExecutor::new(&mut links);
        let (b, rb) = run_fedasync(&clients, &factory, &config, &cfg, &mut wired).unwrap();
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn oversized_buffer_is_rejected() {
        let clients = clients(2);
        let factory = factory();
        let config = FedConfig::tiny();
        let cfg = AsyncConfig::new(2, 5);
        let mut exec = LocalExecutor::new(&clients, &factory, &config).unwrap();
        let err = run_fedasync(&clients, &factory, &config, &cfg, &mut exec).unwrap_err();
        assert!(matches!(err, FedError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn rendered_history_is_stable() {
        let records = vec![AsyncRoundRecord {
            aggregation: 1,
            tick: 7,
            arrivals: vec![(0, 0), (2, 1)],
            average_auc: 0.75,
            mean_train_loss: 0.5,
        }];
        let s = render_async_history("demo", &records);
        assert!(s.contains("demo\n"));
        assert!(s.contains("0:0 2:1"));
    }
}
