//! Local-only baselines (`b_1 … b_K`): the paper's "traditional ML model
//! construction" reference point — each client trains on its private data
//! alone, with the same total update budget as a federated run
//! (`rounds × local_steps`), no proximal term.

use crate::methods::{Harness, MethodOutcome, TrainJob};
use crate::{Client, FedConfig, FedError, Method, ModelFactory};

pub(crate) fn run(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<MethodOutcome, FedError> {
    let mut harness = Harness::new(clients, factory, config)?;
    harness.trainer.mu = 0.0; // no proximal term for isolated training
    let init = harness.initial_state();
    let total_steps = config.rounds * config.local_steps;
    // The baselines are fully independent — the ideal parallel workload.
    let jobs: Vec<TrainJob<'_>> = (0..clients.len())
        .map(|k| TrainJob {
            client: k,
            start: &init,
            reference: None,
        })
        .collect();
    let updates = harness.train_clients(&jobs, 0, total_steps)?;
    // Updates come back in job order == client order; evaluation fans
    // back out per client.
    let states: Vec<&rte_nn::StateDict> = updates.iter().map(|u| &u.state).collect();
    let per_client = harness.eval_states(&states)?;
    Ok(MethodOutcome::new(
        Method::LocalOnly,
        per_client,
        Vec::new(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::{clients, factory};

    #[test]
    fn local_models_learn_their_own_client() {
        let clients = clients(2);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.rounds = 4;
        config.local_steps = 10;
        let outcome = run(&clients, &factory, &config).unwrap();
        // The synthetic task is learnable: both clients should beat chance.
        for (k, auc) in outcome.per_client_auc.iter().enumerate() {
            assert!(*auc > 0.55, "client {k}: AUC {auc}");
        }
    }
}
