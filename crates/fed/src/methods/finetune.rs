//! FedProx + local fine-tuning (§4.3): run FedProx to convergence, then
//! let every client fine-tune the received global model on its own data
//! for `S'` extra steps without the decentralized restrictions. The
//! paper's best personalization method (Table 3: 0.80 average).

use crate::methods::fedprox::fedprox_rounds;
use crate::methods::{Deployed, Harness, MethodOutcome, RoundRecord, TrainJob};
use crate::{Client, FedConfig, FedError, Method, ModelFactory};

pub(crate) fn deployed(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<(Deployed, Vec<RoundRecord>), FedError> {
    let (global, history) = fedprox_rounds(clients, factory, config)?;
    // `S' = 0` degenerates to plain FedProx: skip the training pass
    // entirely (LocalTrainer rejects zero-step runs) and deploy the
    // global model as-is.
    if config.finetune_steps == 0 {
        return Ok((Deployed::Global(global), history));
    }
    let mut harness = Harness::new(clients, factory, config)?;
    // Fine-tuning happens outside the decentralized setting: no proximal
    // pull (the paper notes "such finetuning process is no longer under
    // the decentralized setting").
    harness.trainer.mu = 0.0;
    let jobs: Vec<TrainJob<'_>> = (0..clients.len())
        .map(|k| TrainJob {
            client: k,
            start: &global,
            reference: None,
        })
        .collect();
    let tuned = harness.train_clients(&jobs, config.rounds + 1, config.finetune_steps)?;
    // Updates come back in job order == client order.
    let states: Vec<rte_nn::StateDict> = tuned.into_iter().map(|u| u.state).collect();
    Ok((Deployed::PerClient(states), history))
}

pub(crate) fn run(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<MethodOutcome, FedError> {
    let (final_states, history) = deployed(clients, factory, config)?;
    let harness = Harness::new(clients, factory, config)?;
    let per_client = harness.eval_deployed(&final_states)?;
    Ok(MethodOutcome::new(
        Method::FedProxFinetune,
        per_client,
        history,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::{clients, factory};

    #[test]
    fn finetuning_runs_and_scores_all_clients() {
        let clients = clients(2);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.finetune_steps = 10;
        let outcome = run(&clients, &factory, &config).unwrap();
        assert_eq!(outcome.method, Method::FedProxFinetune);
        assert_eq!(outcome.per_client_auc.len(), 2);
    }

    #[test]
    fn zero_finetune_steps_equals_fedprox() {
        let clients = clients(2);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.finetune_steps = 0;
        let tuned = run(&clients, &factory, &config).unwrap();
        let prox = crate::methods::run_method(crate::Method::FedProx, &clients, &factory, &config)
            .unwrap();
        for (a, b) in tuned.per_client_auc.iter().zip(prox.per_client_auc.iter()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
