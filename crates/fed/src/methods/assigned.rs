//! Assigned clustering (§4.3): like IFCA but with the cluster of each
//! client fixed up front from prior knowledge of client similarity — in
//! the paper, the benchmark-suite grouping {1-3}, {4-6}, {7-8}, {9}.
//! Within a cluster this is plain FedProx.

use rte_nn::StateDict;

use crate::methods::{mean_loss, Deployed, Harness, MethodOutcome, RoundRecord, TrainJob};
use crate::params::aggregate;
use crate::{Client, FedConfig, FedError, Method, ModelFactory};

pub(crate) fn deployed(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<(Deployed, Vec<RoundRecord>), FedError> {
    config.validate_assignment(clients.len())?;
    let mut harness = Harness::new(clients, factory, config)?;
    let groups = &config.assigned_clusters;
    // All clusters share one initialization (unlike IFCA there is no
    // symmetry to break — membership is fixed).
    let init = harness.initial_state();
    let mut cluster_models: Vec<StateDict> = vec![init; groups.len()];
    // client -> cluster lookup.
    let mut cluster_of = vec![0usize; clients.len()];
    for (c, group) in groups.iter().enumerate() {
        for &k in group {
            cluster_of[k] = c;
        }
    }
    let mut history = Vec::new();

    for round in 1..=config.rounds {
        // Within-cluster FedProx: the round's participants train in
        // parallel, the per-cluster grouping below runs in client order.
        // A cluster whose members all dropped out keeps its model.
        let jobs: Vec<TrainJob<'_>> = harness
            .participants(round)
            .into_iter()
            .map(|k| TrainJob {
                client: k,
                start: &cluster_models[cluster_of[k]],
                reference: Some(&cluster_models[cluster_of[k]]),
            })
            .collect();
        let trained = harness.train_clients(&jobs, round, config.local_steps)?;
        let round_loss = mean_loss(&trained);
        let mut updates: Vec<Vec<(StateDict, f64)>> = vec![Vec::new(); groups.len()];
        for update in trained {
            let c = cluster_of[update.client];
            updates[c].push((update.state, clients[update.client].weight() as f64));
        }
        for (c, cluster_updates) in updates.iter().enumerate() {
            if cluster_updates.is_empty() {
                continue;
            }
            let refs: Vec<(&StateDict, f64)> =
                cluster_updates.iter().map(|(sd, w)| (sd, *w)).collect();
            cluster_models[c] = aggregate(&refs, config.aggregation)?;
        }
        if harness.should_record(round) {
            let per_client: Vec<&StateDict> =
                cluster_of.iter().map(|&c| &cluster_models[c]).collect();
            let reports = harness.eval_states(&per_client)?;
            history.push(RoundRecord::new(round, reports, round_loss));
        }
    }

    let per_client: Vec<StateDict> = cluster_of
        .iter()
        .map(|&c| cluster_models[c].clone())
        .collect();
    Ok((Deployed::PerClient(per_client), history))
}

pub(crate) fn run(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<MethodOutcome, FedError> {
    let (final_states, history) = deployed(clients, factory, config)?;
    let harness = Harness::new(clients, factory, config)?;
    let per_client = harness.eval_deployed(&final_states)?;
    Ok(MethodOutcome::new(
        Method::AssignedClustering,
        per_client,
        history,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::{clients, factory};

    #[test]
    fn respects_fixed_assignment() {
        let clients = clients(3);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.assigned_clusters = vec![vec![0, 2], vec![1]];
        let outcome = run(&clients, &factory, &config).unwrap();
        assert_eq!(outcome.per_client_auc.len(), 3);
    }

    #[test]
    fn invalid_assignment_is_rejected() {
        let clients = clients(2);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.assigned_clusters = vec![vec![0]]; // client 1 missing
        assert!(run(&clients, &factory, &config).is_err());
    }
}
