//! FedProx (§4.1): the paper's proposed method for the generalized model.
//!
//! Each round, every client trains from the deployed global parameters
//! with the proximal term `μ‖W^r − w_k‖²`, the developer aggregates
//! `W^{r+1} = Σ_k (n_k/n) w_k^r`, and the aggregate is redeployed.
//! `μ = 0` recovers FedAvg — the `fig1_convergence` bench uses exactly
//! that switch.

use rte_nn::StateDict;

use crate::methods::{mean_loss, Deployed, Harness, MethodOutcome, RoundRecord, TrainJob};
use crate::params::aggregate;
use crate::{Client, FedConfig, FedError, Method, ModelFactory};

/// Runs the FedProx round loop and returns the final global state dict
/// plus any recorded history. Shared by FedProx itself, FedProx +
/// fine-tuning, and the convergence figure.
///
/// # Errors
///
/// Returns [`FedError`] for invalid configurations or model failures.
pub fn fedprox_rounds(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<(StateDict, Vec<RoundRecord>), FedError> {
    let mut harness = Harness::new(clients, factory, config)?;
    let mut global = harness.initial_state();
    let mut history = Vec::new();
    for round in 1..=config.rounds {
        // Participants train concurrently (each from its own deployed copy
        // of the global parameters); the aggregation below runs on this
        // thread in fixed participant order.
        let jobs: Vec<TrainJob<'_>> = harness
            .participants(round)
            .into_iter()
            .map(|k| TrainJob {
                client: k,
                start: &global,
                reference: Some(&global),
            })
            .collect();
        let updates = harness.train_clients(&jobs, round, config.local_steps)?;
        let refs: Vec<(&StateDict, f64)> = updates
            .iter()
            .map(|u| (&u.state, clients[u.client].weight() as f64))
            .collect();
        global = aggregate(&refs, config.aggregation)?;
        if harness.should_record(round) {
            let reports = harness.eval_global(&global)?;
            history.push(RoundRecord::new(round, reports, mean_loss(&updates)));
        }
    }
    Ok((global, history))
}

pub(crate) fn deployed(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<(Deployed, Vec<RoundRecord>), FedError> {
    let (global, history) = fedprox_rounds(clients, factory, config)?;
    Ok((Deployed::Global(global), history))
}

pub(crate) fn run(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<MethodOutcome, FedError> {
    let (final_states, history) = deployed(clients, factory, config)?;
    let harness = Harness::new(clients, factory, config)?;
    let per_client = harness.eval_deployed(&final_states)?;
    Ok(MethodOutcome::new(Method::FedProx, per_client, history))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::{clients, factory};
    use crate::params::l2_distance_sq;

    #[test]
    fn aggregation_moves_the_global_model() {
        let clients = clients(2);
        let factory = factory();
        let config = FedConfig::tiny();
        let mut harness = Harness::new(&clients, &factory, &config).unwrap();
        let init = harness.initial_state();
        let (global, _) = fedprox_rounds(&clients, &factory, &config).unwrap();
        let moved = l2_distance_sq(&init, &global).unwrap();
        assert!(moved > 0.0, "global model must change");
    }

    #[test]
    fn mu_zero_is_fedavg_and_differs_from_fedprox() {
        let clients = clients(2);
        let factory = factory();
        let mut cfg_avg = FedConfig::tiny();
        cfg_avg.mu = 0.0;
        let mut cfg_prox = FedConfig::tiny();
        cfg_prox.mu = 0.5; // exaggerated to make the difference visible
        let (g_avg, _) = fedprox_rounds(&clients, &factory, &cfg_avg).unwrap();
        let (g_prox, _) = fedprox_rounds(&clients, &factory, &cfg_prox).unwrap();
        assert!(l2_distance_sq(&g_avg, &g_prox).unwrap() > 0.0);
    }

    #[test]
    fn federated_model_learns() {
        let clients = clients(3);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.rounds = 4;
        config.local_steps = 8;
        let outcome = run(&clients, &factory, &config).unwrap();
        assert!(
            outcome.average_auc > 0.55,
            "average AUC {}",
            outcome.average_auc
        );
    }
}

#[cfg(test)]
mod participation_tests {
    use super::*;
    use crate::methods::test_support::{clients, factory};
    use crate::methods::Harness;

    #[test]
    fn full_participation_selects_everyone() {
        let clients = clients(3);
        let factory = factory();
        let config = FedConfig::tiny();
        let harness = Harness::new(&clients, &factory, &config).unwrap();
        assert_eq!(harness.participants(1), vec![0, 1, 2]);
        assert_eq!(harness.participants(2), vec![0, 1, 2]);
    }

    #[test]
    fn partial_participation_samples_deterministically() {
        let clients = clients(3);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.participation = 0.34; // ceil(0.34 × 3) = 2 of 3
        let harness = Harness::new(&clients, &factory, &config).unwrap();
        let r1 = harness.participants(1);
        assert_eq!(r1.len(), 2);
        assert_eq!(r1, harness.participants(1), "same round, same sample");
        // Across many rounds every client must participate sometimes.
        let mut seen = [false; 3];
        for round in 1..=20 {
            for k in harness.participants(round) {
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn partial_participation_trains_end_to_end() {
        let clients = clients(3);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.participation = 0.5;
        let outcome = run(&clients, &factory, &config).unwrap();
        assert_eq!(outcome.per_client_auc.len(), 3);
        assert!(outcome.per_client_auc.iter().all(|a| a.is_finite()));
    }

    #[test]
    fn invalid_participation_rejected() {
        let mut config = FedConfig::tiny();
        config.participation = 0.0;
        assert!(config.validate_core().is_err());
        config.participation = 1.5;
        assert!(config.validate_core().is_err());
    }
}
