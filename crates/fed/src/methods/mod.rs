//! The eight training methods of the paper's Tables 3-5.
//!
//! Every method consumes the same ingredients — a client list, a
//! deterministic [`ModelFactory`] and a [`FedConfig`] — and produces a
//! [`MethodOutcome`] with one [`EvalReport`] per client (ROC AUC, average
//! precision, confusion at the 0.5 deployment threshold, score
//! histograms) plus an optional per-round history (used to regenerate the
//! Fig. 1/2 convergence series). Evaluation fans out per client through
//! [`crate::eval::Evaluator`], exactly like training fans out through
//! the harness' internal `train_clients` round loop.

mod alpha_sync;
mod assigned;
mod centralized;
mod fedprox;
mod finetune;
mod ifca;
mod lg;
mod local;

pub use fedprox::fedprox_rounds;

use rte_nn::{load_state_dict, state_dict, Layer, StateDict};
use rte_tensor::rng::Xoshiro256;

use crate::eval::{aucs, mean_auc, EvalReport, Evaluator};
use crate::{Client, FedConfig, FedError, LocalTrainer, Method, ModelFactory};

/// Evaluation batch size (evaluation is forward-only, so bigger batches
/// are safe and faster).
pub(crate) const EVAL_BATCH: usize = 16;

/// One recorded evaluation during training.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Communication round (1-based; 0 = before training).
    pub round: usize,
    /// Full evaluation report per client, in client order.
    pub per_client: Vec<EvalReport>,
    /// ROC AUC per client, in client order (the scalar view of
    /// `per_client`).
    pub per_client_auc: Vec<f64>,
    /// Mean of `per_client_auc`.
    pub average_auc: f64,
    /// Mean training loss reported by this round's participants (what
    /// each client's worker returned alongside its update).
    pub mean_train_loss: f64,
}

impl RoundRecord {
    /// Builds a record from per-client reports and the round's mean
    /// training loss, deriving the scalar AUC views.
    pub fn new(round: usize, per_client: Vec<EvalReport>, mean_train_loss: f64) -> Self {
        let per_client_auc = aucs(&per_client);
        let average_auc = mean_auc(&per_client);
        RoundRecord {
            round,
            per_client,
            per_client_auc,
            average_auc,
            mean_train_loss,
        }
    }
}

/// Final result of one training method.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodOutcome {
    /// The method that produced this outcome.
    pub method: Method,
    /// Full final evaluation report per client, in client order.
    pub per_client: Vec<EvalReport>,
    /// Final ROC AUC per client, in client order (one table cell each —
    /// the scalar view of `per_client`).
    pub per_client_auc: Vec<f64>,
    /// Mean over clients (the table's "Average" column).
    pub average_auc: f64,
    /// Per-round evaluations (non-empty when `FedConfig::eval_every > 0`
    /// and the method is round-based).
    pub history: Vec<RoundRecord>,
}

impl MethodOutcome {
    /// Builds an outcome from per-client reports, deriving the scalar
    /// AUC views.
    pub fn new(method: Method, per_client: Vec<EvalReport>, history: Vec<RoundRecord>) -> Self {
        let per_client_auc = aucs(&per_client);
        let average_auc = mean_auc(&per_client);
        MethodOutcome {
            method,
            per_client,
            per_client_auc,
            average_auc,
            history,
        }
    }
}

/// The model(s) a finished method hands to deployment: one shared state
/// dict (generalized methods) or one per client (personalized methods).
/// This is the seam the scenario harness evaluates tolerantly — the same
/// states [`run_method`] scores strictly.
pub(crate) enum Deployed {
    /// One shared model evaluated on every client.
    Global(StateDict),
    /// One model per client, in client order.
    PerClient(Vec<StateDict>),
}

/// Trains `method` to its final deployable state(s) without the final
/// evaluation pass. [`run_method`] adds a strict evaluation;
/// [`crate::scenario::run_scenario`] adds a tolerant per-cell one.
///
/// # Errors
///
/// Returns [`FedError::InvalidConfig`] for methods with no aggregation
/// step (local-only, centralized train without a federation round loop),
/// otherwise any training failure.
pub(crate) fn deployed_states(
    method: Method,
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<(Deployed, Vec<RoundRecord>), FedError> {
    match method {
        Method::FedProx => fedprox::deployed(clients, factory, config),
        Method::FedProxLg => lg::deployed(clients, factory, config),
        Method::Ifca => ifca::deployed(clients, factory, config),
        Method::FedProxFinetune => finetune::deployed(clients, factory, config),
        Method::AssignedClustering => assigned::deployed(clients, factory, config),
        Method::AlphaSync => alpha_sync::deployed(clients, factory, config),
        Method::LocalOnly | Method::Centralized => Err(FedError::InvalidConfig {
            reason: format!("{method} has no aggregation step to defend against hostile clients"),
        }),
    }
}

/// One client's training assignment within a round: where it starts and
/// what it is proximally pulled towards.
pub(crate) struct TrainJob<'s> {
    /// Client position in the harness' client list.
    pub client: usize,
    /// State dict the client's model is deployed from.
    pub start: &'s StateDict,
    /// FedProx proximal reference (`None` = plain local SGD).
    pub reference: Option<&'s StateDict>,
}

/// What one client sends back to the coordinator after local training.
pub(crate) struct ClientUpdate {
    /// Client position (mirrors [`TrainJob::client`]).
    pub client: usize,
    /// The locally trained parameters.
    pub state: StateDict,
    /// Mean training loss over the local steps (surfaced through
    /// [`RoundRecord::mean_train_loss`]).
    pub loss: f32,
}

/// Mean of the training losses a round's participants reported.
pub(crate) fn mean_loss(updates: &[ClientUpdate]) -> f64 {
    if updates.is_empty() {
        return 0.0;
    }
    updates.iter().map(|u| u.loss as f64).sum::<f64>() / updates.len() as f64
}

/// Shared machinery for the method implementations: a scratch model for
/// state-dict extraction (and centralized training), the local trainer,
/// the parallel [`Evaluator`], and derived RNG streams.
pub(crate) struct Harness<'a> {
    pub clients: &'a [Client],
    pub config: &'a FedConfig,
    pub trainer: LocalTrainer,
    pub scratch: Box<dyn Layer>,
    pub evaluator: Evaluator,
    factory: &'a ModelFactory,
    root_rng: Xoshiro256,
}

impl<'a> Harness<'a> {
    pub fn new(
        clients: &'a [Client],
        factory: &'a ModelFactory,
        config: &'a FedConfig,
    ) -> Result<Self, FedError> {
        if clients.is_empty() {
            return Err(FedError::InvalidConfig {
                reason: "no clients".into(),
            });
        }
        config.validate_core()?;
        if let Some(scenario) = &config.scenario {
            scenario.validate(clients.len())?;
        }
        let trainer =
            LocalTrainer::new(config.lr, config.weight_decay, config.mu, config.batch_size);
        Ok(Harness {
            clients,
            config,
            trainer,
            scratch: factory(config.seed),
            evaluator: Evaluator::new(config.parallelism, EVAL_BATCH),
            factory,
            root_rng: fleet_rng(config.seed),
        })
    }

    /// The initial state dict every client starts from.
    pub fn initial_state(&mut self) -> StateDict {
        state_dict(self.scratch.as_mut())
    }

    /// Deterministic RNG for (round, client) training batches.
    pub fn round_rng(&self, round: usize, client: usize) -> Xoshiro256 {
        round_client_rng(&self.root_rng, round, client)
    }

    /// The clients participating in `round` under
    /// [`FedConfig::participation`]: all of them at 1.0, otherwise a
    /// deterministic per-round sample of
    /// `ceil(participation · K)` clients (at least one). When a
    /// scenario with dropout is active, its availability trace filters
    /// the sample afterwards (the lowest-indexed sampled client is kept
    /// if the whole round would otherwise drop out).
    pub fn participants(&self, round: usize) -> Vec<usize> {
        let k = self.clients.len();
        let mut sample = if self.config.participation >= 1.0 {
            (0..k).collect()
        } else {
            let take = ((self.config.participation as f64 * k as f64).ceil() as usize).clamp(1, k);
            let mut rng = self.root_rng.derive(0x9A37).derive(round as u64);
            let mut sample = rng.sample_indices(k, take);
            sample.sort_unstable();
            sample
        };
        if let Some(scenario) = &self.config.scenario {
            if scenario.dropout > 0.0 {
                let fallback = sample[0];
                sample.retain(|&c| scenario.available(round, c));
                if sample.is_empty() {
                    sample.push(fallback);
                }
            }
        }
        sample
    }

    /// Evaluates `sds[k]` on client `k`'s test split for every `k`
    /// (personalized deployment), clients on worker threads.
    pub fn eval_states(&self, sds: &[&StateDict]) -> Result<Vec<EvalReport>, FedError> {
        self.evaluator
            .eval_states(self.factory, self.config.seed, self.clients, sds)
    }

    /// Evaluates one state dict per client (personalized deployment).
    pub fn eval_personalized(&self, sds: &[StateDict]) -> Result<Vec<EvalReport>, FedError> {
        let refs: Vec<&StateDict> = sds.iter().collect();
        self.eval_states(&refs)
    }

    /// Evaluates one shared state dict on every client (generalized
    /// deployment).
    pub fn eval_global(&self, sd: &StateDict) -> Result<Vec<EvalReport>, FedError> {
        self.evaluator
            .eval_global(self.factory, self.config.seed, self.clients, sd)
    }

    /// Strictly evaluates a method's final deployment (either shape).
    pub fn eval_deployed(&self, deployed: &Deployed) -> Result<Vec<EvalReport>, FedError> {
        match deployed {
            Deployed::Global(sd) => self.eval_global(sd),
            Deployed::PerClient(sds) => self.eval_personalized(sds),
        }
    }

    /// Tolerantly evaluates a method's final deployment: diverged
    /// clients come back as typed [`FedError::ClientDiverged`] cells in
    /// their slots instead of aborting the evaluation (the scenario
    /// harness' grid path).
    pub fn eval_deployed_cells(
        &self,
        deployed: &Deployed,
    ) -> Result<Vec<Result<EvalReport, FedError>>, FedError> {
        let states: Vec<&StateDict> = match deployed {
            Deployed::Global(sd) => vec![sd; self.clients.len()],
            Deployed::PerClient(sds) => sds.iter().collect(),
        };
        self.evaluator
            .eval_states_cells(self.factory, self.config.seed, self.clients, &states)
    }

    /// True when round `r` (1-based) should be recorded in the history.
    pub fn should_record(&self, round: usize) -> bool {
        self.config.eval_every > 0
            && (round % self.config.eval_every == 0 || round == self.config.rounds)
    }

    /// For every client, evaluates `argmin_c L_k(W_c)` over the cluster
    /// models on worker threads (IFCA's selection step — forward-only,
    /// read-only per client, and as embarrassingly parallel as the
    /// training half of the round). Ties break towards the lower cluster
    /// index, and each worker iterates clusters in order, so the result
    /// is identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns the first failing client's [`FedError`] in client order.
    pub fn pick_clusters(&self, cluster_models: &[StateDict]) -> Result<Vec<usize>, FedError> {
        let factory = self.factory;
        let clients = self.clients;
        let trainer = &self.trainer;
        let seed = self.config.seed;
        let ks: Vec<usize> = (0..clients.len()).collect();
        let results = rte_tensor::parallel::map_with(
            self.config.parallelism,
            &ks,
            || factory(seed),
            |model, _, &k| -> Result<usize, FedError> {
                let mut best = 0usize;
                let mut best_loss = f32::INFINITY;
                for (c, sd) in cluster_models.iter().enumerate() {
                    load_state_dict(model.as_mut(), sd)?;
                    let loss = trainer.eval_loss(model.as_mut(), &clients[k].train)?;
                    if loss < best_loss {
                        best_loss = loss;
                        best = c;
                    }
                }
                Ok(best)
            },
        );
        results.into_iter().collect()
    }

    /// Trains one round's participants on worker threads, up to
    /// [`FedConfig::parallelism`] at a time.
    ///
    /// Each worker builds its own model instance from the factory, then
    /// for every job it claims: deploys `job.start`, derives the
    /// per-`(round, client)` RNG stream, and runs local training — exactly
    /// the computation the serial loop performed, on private state. The
    /// returned updates are **in job order**, and aggregation stays with
    /// the caller on the coordinator thread, so outcomes are bit-identical
    /// for every thread count (`tests/determinism.rs` pins this down).
    ///
    /// When a scenario is active, Byzantine clients' updates are
    /// corrupted here — after honest local training, before the caller
    /// aggregates — on the coordinator thread in job order, from
    /// per-`(round, client)` streams independent of the training RNG.
    ///
    /// # Errors
    ///
    /// Returns the first failing job's [`FedError`] in job order.
    pub fn train_clients(
        &self,
        jobs: &[TrainJob<'_>],
        round: usize,
        steps: usize,
    ) -> Result<Vec<ClientUpdate>, FedError> {
        let factory = self.factory;
        let clients = self.clients;
        let trainer = &self.trainer;
        let root_rng = &self.root_rng;
        let seed = self.config.seed;
        let results = rte_tensor::parallel::map_with(
            self.config.parallelism,
            jobs,
            || factory(seed),
            |model, _, job| -> Result<ClientUpdate, FedError> {
                load_state_dict(model.as_mut(), job.start)?;
                let mut rng = round_client_rng(root_rng, round, job.client);
                let loss = trainer.train(
                    model.as_mut(),
                    &clients[job.client].train,
                    job.reference,
                    steps,
                    &mut rng,
                )?;
                Ok(ClientUpdate {
                    client: job.client,
                    state: state_dict(model.as_mut()),
                    loss,
                })
            },
        );
        let mut updates: Vec<ClientUpdate> = results.into_iter().collect::<Result<_, _>>()?;
        if let Some(scenario) = &self.config.scenario {
            for (job, update) in jobs.iter().zip(updates.iter_mut()) {
                if let Some(corrupted) =
                    scenario.corrupt_update(round, job.client, job.start, &update.state)?
                {
                    update.state = corrupted;
                }
            }
        }
        Ok(updates)
    }
}

/// The one place the per-`(round, client)` minibatch stream is derived:
/// the serial [`Harness::round_rng`] helper, the parallel round loop's
/// workers, and the remote [`crate::federation::ClientSession`] must all
/// draw from exactly this stream, or serial, threaded, and over-the-wire
/// schedules would silently train on different batches.
pub(crate) fn round_client_rng(root: &Xoshiro256, round: usize, client: usize) -> Xoshiro256 {
    root.derive(round as u64 + 1).derive(client as u64 + 1)
}

/// The fleet-level root RNG every coordinator and client derives its
/// per-round streams from. One derivation point (determinism rule 3):
/// [`Harness::new`] and the wire-side [`crate::federation`] peers both
/// call this, which is what makes a remote round bit-identical to the
/// in-process one.
pub(crate) fn fleet_rng(seed: u64) -> Xoshiro256 {
    Xoshiro256::seed_from(seed ^ 0x5EED_0F0C)
}

/// Runs one training method end to end.
///
/// # Errors
///
/// Returns [`FedError`] for invalid configurations or model failures.
pub fn run_method(
    method: Method,
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<MethodOutcome, FedError> {
    match method {
        Method::LocalOnly => local::run(clients, factory, config),
        Method::Centralized => centralized::run(clients, factory, config),
        Method::FedProx => fedprox::run(clients, factory, config),
        Method::FedProxLg => lg::run(clients, factory, config),
        Method::Ifca => ifca::run(clients, factory, config),
        Method::FedProxFinetune => finetune::run(clients, factory, config),
        Method::AssignedClustering => assigned::run(clients, factory, config),
        Method::AlphaSync => alpha_sync::run(clients, factory, config),
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::ClientSet;
    use rte_nn::models::{FlNet, FlNetConfig};
    use rte_tensor::Tensor;

    /// Builds a tiny synthetic client whose labels depend on channel 0,
    /// with a per-client distribution shift on the threshold (client-level
    /// heterogeneity in miniature).
    pub fn synthetic_client(id: usize, n_train: usize, n_test: usize, seed: u64) -> Client {
        let threshold = 0.45 + 0.1 * (id as f32 % 3.0) / 3.0;
        let make = |n: usize, salt: u64| -> ClientSet {
            let mut rng = Xoshiro256::seed_from(seed ^ salt);
            let mut x = Tensor::from_fn(&[n, 2, 8, 8], |_| rng.uniform());
            let mut y = Tensor::zeros(&[n, 1, 8, 8]);
            for ni in 0..n {
                for i in 0..64 {
                    let v = x.data()[ni * 128 + i];
                    y.data_mut()[ni * 64 + i] = if v > threshold { 1.0 } else { 0.0 };
                }
                for i in 0..64 {
                    x.data_mut()[ni * 128 + 64 + i] = rng.uniform();
                }
            }
            ClientSet::new(x, y).unwrap()
        };
        Client::new(id, make(n_train, 0xAAAA), make(n_test, 0xBBBB))
    }

    pub fn clients(n: usize) -> Vec<Client> {
        (0..n)
            .map(|k| synthetic_client(k + 1, 6, 3, 100 + k as u64))
            .collect()
    }

    pub fn factory() -> ModelFactory {
        Box::new(|seed| {
            let mut rng = Xoshiro256::seed_from(seed);
            Box::new(FlNet::new(
                FlNetConfig {
                    in_channels: 2,
                    hidden: 6,
                    kernel: 3,
                    depth: 2,
                },
                &mut rng,
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::{clients, factory};
    use super::*;

    #[test]
    fn all_methods_produce_per_client_aucs() {
        let clients = clients(2);
        let factory = factory();
        let config = FedConfig::tiny();
        for method in Method::ALL {
            let outcome = run_method(method, &clients, &factory, &config).unwrap();
            assert_eq!(outcome.per_client_auc.len(), 2, "{method}");
            assert!(
                outcome
                    .per_client_auc
                    .iter()
                    .all(|a| (0.0..=1.0).contains(a)),
                "{method}: {:?}",
                outcome.per_client_auc
            );
            let mean = outcome.per_client_auc.iter().sum::<f64>() / 2.0;
            assert!((outcome.average_auc - mean).abs() < 1e-12);
        }
    }

    #[test]
    fn methods_are_deterministic() {
        let clients = clients(2);
        let factory = factory();
        let config = FedConfig::tiny();
        let a = run_method(Method::FedProx, &clients, &factory, &config).unwrap();
        let b = run_method(Method::FedProx, &clients, &factory, &config).unwrap();
        assert_eq!(a.per_client_auc, b.per_client_auc);
    }

    #[test]
    fn history_recorded_when_requested() {
        let clients = clients(2);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.eval_every = 1;
        let outcome = run_method(Method::FedProx, &clients, &factory, &config).unwrap();
        assert_eq!(outcome.history.len(), config.rounds);
        for (i, rec) in outcome.history.iter().enumerate() {
            assert_eq!(rec.round, i + 1);
            assert_eq!(rec.per_client_auc.len(), 2);
        }
    }

    #[test]
    fn empty_clients_rejected() {
        let factory = factory();
        let config = FedConfig::tiny();
        assert!(run_method(Method::FedProx, &[], &factory, &config).is_err());
    }
}
