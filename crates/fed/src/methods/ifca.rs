//! Iterative Federated Clustering Algorithm (§4.3, after Ghosh et al.):
//! `C` cluster models, each client picks the cluster whose model has the
//! lowest loss on its training data, trains it, and the developer
//! aggregates per cluster. The clustering is re-derived every round.
//! Both halves of the round — selection and training — run clients on
//! worker threads.

use rte_nn::StateDict;

use crate::methods::{mean_loss, Deployed, Harness, MethodOutcome, RoundRecord, TrainJob};
use crate::params::aggregate;
use crate::{Client, FedConfig, FedError, Method, ModelFactory};

pub(crate) fn deployed(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<(Deployed, Vec<RoundRecord>), FedError> {
    config.validate_clusters(clients.len())?;
    let harness = Harness::new(clients, factory, config)?;
    // One model per cluster, each with its own initialization (IFCA needs
    // distinct starting points for the clustering to break symmetry).
    let mut cluster_models: Vec<StateDict> = (0..config.clusters)
        .map(|c| {
            let mut model = factory(config.seed.wrapping_add(1 + c as u64));
            rte_nn::state_dict(model.as_mut())
        })
        .collect();
    let mut history = Vec::new();

    for round in 1..=config.rounds {
        // 1. Cluster selection by training loss, clients in parallel.
        let choice = harness.pick_clusters(&cluster_models)?;
        // 2. Local training of the chosen cluster model, the round's
        // participants in parallel; per-cluster grouping happens
        // afterwards in client order so aggregation stays deterministic.
        // (Selection is forward-only, so it runs for everyone; dropout
        // only gates who trains and sends an update.)
        let jobs: Vec<TrainJob<'_>> = harness
            .participants(round)
            .into_iter()
            .map(|k| TrainJob {
                client: k,
                start: &cluster_models[choice[k]],
                reference: Some(&cluster_models[choice[k]]),
            })
            .collect();
        let trained = harness.train_clients(&jobs, round, config.local_steps)?;
        let round_loss = mean_loss(&trained);
        let mut updates: Vec<Vec<(StateDict, f64)>> = vec![Vec::new(); config.clusters];
        for update in trained {
            let c = choice[update.client];
            updates[c].push((update.state, clients[update.client].weight() as f64));
        }
        // 3. Per-cluster aggregation; empty clusters keep their model.
        for (c, cluster_updates) in updates.iter().enumerate() {
            if cluster_updates.is_empty() {
                continue;
            }
            let refs: Vec<(&StateDict, f64)> =
                cluster_updates.iter().map(|(sd, w)| (sd, *w)).collect();
            cluster_models[c] = aggregate(&refs, config.aggregation)?;
        }
        if harness.should_record(round) {
            let per_client: Vec<&StateDict> = choice.iter().map(|&c| &cluster_models[c]).collect();
            let reports = harness.eval_states(&per_client)?;
            history.push(RoundRecord::new(round, reports, round_loss));
        }
    }

    // Deploy: each client re-picks its best cluster.
    let choice = harness.pick_clusters(&cluster_models)?;
    let per_client: Vec<StateDict> = choice.iter().map(|&c| cluster_models[c].clone()).collect();
    Ok((Deployed::PerClient(per_client), history))
}

pub(crate) fn run(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<MethodOutcome, FedError> {
    let (final_states, history) = deployed(clients, factory, config)?;
    let harness = Harness::new(clients, factory, config)?;
    let per_client = harness.eval_deployed(&final_states)?;
    Ok(MethodOutcome::new(Method::Ifca, per_client, history))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::{clients, factory};

    #[test]
    fn runs_with_more_clusters_than_needed() {
        let clients = clients(3);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.clusters = 3;
        let outcome = run(&clients, &factory, &config).unwrap();
        assert_eq!(outcome.per_client_auc.len(), 3);
        assert_eq!(outcome.method, Method::Ifca);
    }

    #[test]
    fn single_cluster_degenerates_to_fedprox_like_training() {
        let clients = clients(2);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.clusters = 1;
        let outcome = run(&clients, &factory, &config).unwrap();
        assert!(outcome.per_client_auc.iter().all(|a| a.is_finite()));
    }
}
