//! Iterative Federated Clustering Algorithm (§4.3, after Ghosh et al.):
//! `C` cluster models, each client picks the cluster whose model has the
//! lowest loss on its training data, trains it, and the developer
//! aggregates per cluster. The clustering is re-derived every round.

use rte_nn::{load_state_dict, StateDict};

use crate::methods::{Harness, MethodOutcome};
use crate::params::weighted_average;
use crate::{Client, FedConfig, FedError, Method, ModelFactory};

pub(crate) fn run(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<MethodOutcome, FedError> {
    config.validate_clusters(clients.len())?;
    let mut harness = Harness::new(clients, factory, config)?;
    // One model per cluster, each with its own initialization (IFCA needs
    // distinct starting points for the clustering to break symmetry).
    let mut cluster_models: Vec<StateDict> = (0..config.clusters)
        .map(|c| {
            let mut model = factory(config.seed.wrapping_add(1 + c as u64));
            rte_nn::state_dict(model.as_mut())
        })
        .collect();
    let mut choice = vec![0usize; clients.len()];
    let mut history = Vec::new();

    for round in 1..=config.rounds {
        // 1. Cluster selection by training loss.
        for k in 0..clients.len() {
            choice[k] = pick_cluster(&mut harness, &cluster_models, k)?;
        }
        // 2. Local training of the chosen cluster model.
        let mut updates: Vec<Vec<(StateDict, f64)>> = vec![Vec::new(); config.clusters];
        for k in 0..clients.len() {
            let c = choice[k];
            let trained = harness.train_client_from(
                &cluster_models[c],
                Some(&cluster_models[c]),
                k,
                round,
                config.local_steps,
            )?;
            updates[c].push((trained, clients[k].weight() as f64));
        }
        // 3. Per-cluster aggregation; empty clusters keep their model.
        for (c, cluster_updates) in updates.iter().enumerate() {
            if cluster_updates.is_empty() {
                continue;
            }
            let refs: Vec<(&StateDict, f64)> =
                cluster_updates.iter().map(|(sd, w)| (sd, *w)).collect();
            cluster_models[c] = weighted_average(&refs)?;
        }
        if harness.should_record(round) {
            let per_client: Vec<StateDict> =
                choice.iter().map(|&c| cluster_models[c].clone()).collect();
            let aucs = harness.eval_personalized(&per_client)?;
            history.push(Harness::record(round, aucs));
        }
    }

    // Deploy: each client re-picks its best cluster, then evaluates.
    let mut per_client_auc = Vec::with_capacity(clients.len());
    for k in 0..clients.len() {
        let c = pick_cluster(&mut harness, &cluster_models, k)?;
        per_client_auc.push(harness.eval_state_on_client(&cluster_models[c], k)?);
    }
    Ok(MethodOutcome::new(Method::Ifca, per_client_auc, history))
}

/// Chooses `argmin_c L_k(W_c)` over the cluster models for client `k`.
fn pick_cluster(
    harness: &mut Harness<'_>,
    cluster_models: &[StateDict],
    k: usize,
) -> Result<usize, FedError> {
    let mut best = 0usize;
    let mut best_loss = f32::INFINITY;
    for (c, sd) in cluster_models.iter().enumerate() {
        load_state_dict(harness.scratch.as_mut(), sd)?;
        let loss = harness
            .trainer
            .eval_loss(harness.scratch.as_mut(), &harness.clients[k].train)?;
        if loss < best_loss {
            best_loss = loss;
            best = c;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::{clients, factory};

    #[test]
    fn runs_with_more_clusters_than_needed() {
        let clients = clients(3);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.clusters = 3;
        let outcome = run(&clients, &factory, &config).unwrap();
        assert_eq!(outcome.per_client_auc.len(), 3);
        assert_eq!(outcome.method, Method::Ifca);
    }

    #[test]
    fn single_cluster_degenerates_to_fedprox_like_training() {
        let clients = clients(2);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.clusters = 1;
        let outcome = run(&clients, &factory, &config).unwrap();
        assert!(outcome.per_client_auc.iter().all(|a| a.is_finite()));
    }
}
