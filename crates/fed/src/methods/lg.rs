//! FedProx-LG (§4.3, after Liang et al.): the model is split into a
//! *global* part (aggregated as usual) and a *local* part (the output
//! layer, kept private per client). Each client ends with the composite
//! `{G^R, l_k^R}`.

use rte_nn::StateDict;

use crate::methods::{mean_loss, Deployed, Harness, MethodOutcome, RoundRecord, TrainJob};
use crate::params::{aggregate, apply_updates, partition};
use crate::{Client, FedConfig, FedError, Method, ModelFactory};

/// The paper sets "the output layers of the three models to be the local
/// part" — all three model zoo members name theirs `output_conv`.
fn is_local(name: &str) -> bool {
    name.starts_with("output_conv")
}

pub(crate) fn deployed(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<(Deployed, Vec<RoundRecord>), FedError> {
    let mut harness = Harness::new(clients, factory, config)?;
    let init = harness.initial_state();
    let (init_local, init_global) = partition(&init, is_local);
    let mut global_part = init_global;
    let mut local_parts: Vec<StateDict> = vec![init_local; clients.len()];
    let mut history = Vec::new();

    for round in 1..=config.rounds {
        // Compose {G^r, l_k} per client as both the start point and the
        // proximal reference (matching Fig. 2a's objective), then train
        // the round's participants in parallel. Absent clients keep
        // their local part and contribute nothing to this round's
        // global aggregate.
        let composites = compose_all(&init, &global_part, &local_parts)?;
        let jobs: Vec<TrainJob<'_>> = harness
            .participants(round)
            .into_iter()
            .map(|k| TrainJob {
                client: k,
                start: &composites[k],
                reference: Some(&composites[k]),
            })
            .collect();
        let trained = harness.train_clients(&jobs, round, config.local_steps)?;
        let round_loss = mean_loss(&trained);
        let mut updates: Vec<(StateDict, f64)> = Vec::with_capacity(trained.len());
        for update in trained {
            let (local, global) = partition(&update.state, is_local);
            local_parts[update.client] = local;
            updates.push((global, clients[update.client].weight() as f64));
        }
        let refs: Vec<(&StateDict, f64)> = updates.iter().map(|(sd, w)| (sd, *w)).collect();
        global_part = aggregate(&refs, config.aggregation)?;
        if harness.should_record(round) {
            let composites = compose_all(&init, &global_part, &local_parts)?;
            let reports = harness.eval_personalized(&composites)?;
            history.push(RoundRecord::new(round, reports, round_loss));
        }
    }

    let composites = compose_all(&init, &global_part, &local_parts)?;
    Ok((Deployed::PerClient(composites), history))
}

pub(crate) fn run(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<MethodOutcome, FedError> {
    let (final_states, history) = deployed(clients, factory, config)?;
    let harness = Harness::new(clients, factory, config)?;
    let per_client = harness.eval_deployed(&final_states)?;
    Ok(MethodOutcome::new(Method::FedProxLg, per_client, history))
}

fn compose_all(
    template: &StateDict,
    global_part: &StateDict,
    local_parts: &[StateDict],
) -> Result<Vec<StateDict>, FedError> {
    local_parts
        .iter()
        .map(|local| {
            let mut composed = template.clone();
            apply_updates(&mut composed, global_part)?;
            apply_updates(&mut composed, local)?;
            Ok(composed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::{clients, factory};

    #[test]
    fn local_parts_diverge_across_clients() {
        let clients = clients(2);
        let factory = factory();
        let config = FedConfig::tiny();
        // Run and inspect through the public outcome: personalization means
        // the two clients see different models, which (almost surely) gives
        // different AUCs on identical test data distributions.
        let outcome = run(&clients, &factory, &config).unwrap();
        assert_eq!(outcome.per_client_auc.len(), 2);
        assert_eq!(outcome.method, Method::FedProxLg);
    }

    #[test]
    fn partition_predicate_targets_output_layer() {
        assert!(is_local("output_conv/weight"));
        assert!(is_local("output_conv/bias"));
        assert!(!is_local("input_conv/weight"));
        assert!(!is_local("head_conv/weight"));
    }
}
