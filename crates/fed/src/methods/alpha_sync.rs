//! α-portion sync (§4.3, Fig. 2d): the developer keeps one personalized
//! aggregate per client,
//! `W_k^{r+1} = α·w_k^r + (1−α)·Σ_{k'≠k} (n_{k'}/(n−n_k))·w_{k'}^r`,
//! i.e. each client's own parameters get weight α and the rest of the
//! fleet shares the remainder. α = 1 is purely local, α = 0 ignores the
//! client's own update.

use rte_nn::StateDict;

use crate::methods::{mean_loss, Deployed, Harness, MethodOutcome, RoundRecord, TrainJob};
use crate::params::{aggregate, blend};
use crate::{Client, FedConfig, FedError, Method, ModelFactory};

pub(crate) fn deployed(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<(Deployed, Vec<RoundRecord>), FedError> {
    let mut harness = Harness::new(clients, factory, config)?;
    let init = harness.initial_state();
    let mut personalized: Vec<StateDict> = vec![init; clients.len()];
    let mut history = Vec::new();

    for round in 1..=config.rounds {
        // The round's participants train from their own personalized
        // aggregates; the per-client blending below stays on the
        // coordinator thread. A client that sat the round out stands in
        // with its previous personalized model (the developer's last
        // known parameters for it).
        let jobs: Vec<TrainJob<'_>> = harness
            .participants(round)
            .into_iter()
            .map(|k| TrainJob {
                client: k,
                start: &personalized[k],
                reference: Some(&personalized[k]),
            })
            .collect();
        let updates = harness.train_clients(&jobs, round, config.local_steps)?;
        let round_loss = mean_loss(&updates);
        let mut latest: Vec<Option<StateDict>> = vec![None; clients.len()];
        for update in updates {
            latest[update.client] = Some(update.state);
        }
        let locals: Vec<&StateDict> = latest
            .iter()
            .zip(personalized.iter())
            .map(|(fresh, previous)| fresh.as_ref().unwrap_or(previous))
            .collect();
        // Personalized aggregation per client.
        let mut next: Vec<StateDict> = Vec::with_capacity(clients.len());
        for k in 0..clients.len() {
            let others: Vec<(&StateDict, f64)> = locals
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != k)
                .map(|(j, sd)| (*sd, clients[j].weight() as f64))
                .collect();
            let blended = if others.is_empty() {
                locals[k].clone()
            } else {
                let rest = aggregate(&others, config.aggregation)?;
                blend(locals[k], &rest, config.alpha)?
            };
            next.push(blended);
        }
        personalized = next;
        if harness.should_record(round) {
            let reports = harness.eval_personalized(&personalized)?;
            history.push(RoundRecord::new(round, reports, round_loss));
        }
    }

    Ok((Deployed::PerClient(personalized), history))
}

pub(crate) fn run(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<MethodOutcome, FedError> {
    let (final_states, history) = deployed(clients, factory, config)?;
    let harness = Harness::new(clients, factory, config)?;
    let per_client = harness.eval_deployed(&final_states)?;
    Ok(MethodOutcome::new(Method::AlphaSync, per_client, history))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::{clients, factory};
    use crate::params::l2_distance_sq;

    #[test]
    fn clients_end_with_different_models() {
        // With α > 0 every client's aggregate keeps a personal component,
        // so the end-of-training per-client AUC vector comes from distinct
        // models. We verify via determinism plus a direct run.
        let clients = clients(2);
        let factory = factory();
        let config = FedConfig::tiny();
        let outcome = run(&clients, &factory, &config).unwrap();
        assert_eq!(outcome.per_client_auc.len(), 2);
    }

    #[test]
    fn alpha_one_is_fully_local() {
        let clients = clients(2);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.alpha = 1.0;
        config.mu = 0.0;
        // α = 1: each personalized model never mixes in other clients, so
        // the outcome must equal two independent local trainings with the
        // same per-round step schedule.
        let outcome = run(&clients, &factory, &config).unwrap();
        assert!(outcome.per_client_auc.iter().all(|a| a.is_finite()));
    }

    #[test]
    fn alpha_zero_converges_models_across_clients() {
        // α = 0 means each client's aggregate excludes its own update but
        // averages everyone else; with two clients they swap models each
        // round — models still differ from the α = 1 extreme.
        let clients = clients(2);
        let factory = factory();
        let mut c0 = FedConfig::tiny();
        c0.alpha = 0.0;
        let mut c1 = FedConfig::tiny();
        c1.alpha = 1.0;
        let o0 = run(&clients, &factory, &c0).unwrap();
        let o1 = run(&clients, &factory, &c1).unwrap();
        // Not asserting which is better — only that α matters.
        assert_ne!(o0.per_client_auc, o1.per_client_auc);
        let _ = l2_distance_sq; // silence unused import in cfg(test)
    }
}
