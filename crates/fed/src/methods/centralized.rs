//! Centralized training: all clients' data pooled on one machine. The
//! paper treats its accuracy as the empirical upper limit a decentralized
//! method should aim for (no privacy, no heterogeneity penalty).

use crate::methods::{Harness, MethodOutcome};
use crate::{Client, ClientSet, FedConfig, FedError, Method, ModelFactory};

pub(crate) fn run(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
) -> Result<MethodOutcome, FedError> {
    let mut harness = Harness::new(clients, factory, config)?;
    harness.trainer.mu = 0.0; // centralized training has no proximal term
    let pooled_sets: Vec<&ClientSet> = clients.iter().map(|c| &c.train).collect();
    let pooled = ClientSet::concat(&pooled_sets)?;
    let init = harness.initial_state();
    let total_steps = config.rounds * config.local_steps;

    // Train directly on the pooled set using the scratch model.
    rte_nn::load_state_dict(harness.scratch.as_mut(), &init)?;
    let mut rng = harness.round_rng(0, usize::MAX - 1);
    harness.trainer.train(
        harness.scratch.as_mut(),
        &pooled,
        None,
        total_steps,
        &mut rng,
    )?;
    let trained = rte_nn::state_dict(harness.scratch.as_mut());

    let per_client = harness.eval_global(&trained)?;
    Ok(MethodOutcome::new(
        Method::Centralized,
        per_client,
        Vec::new(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::{clients, factory};

    #[test]
    fn centralized_beats_chance_on_all_clients() {
        let clients = clients(3);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.rounds = 4;
        config.local_steps = 10;
        let outcome = run(&clients, &factory, &config).unwrap();
        for (k, auc) in outcome.per_client_auc.iter().enumerate() {
            assert!(*auc > 0.55, "client {k}: AUC {auc}");
        }
    }
}
