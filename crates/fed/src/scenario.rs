//! Hostile-client scenario injection — the Table 6 robustness harness.
//!
//! The paper's federation assumes every client is honest. This module
//! drops that assumption: a [`ScenarioConfig`] wraps any aggregating
//! method with a per-client attack assignment plus a per-round
//! availability trace, and [`run_scenario`] produces one grid cell per
//! client — a healthy [`EvalReport`] or a typed
//! [`FedError::ClientDiverged`] — instead of aborting the run when an
//! attack succeeds.
//!
//! # Attack surface
//!
//! Attacks hook the federation at three distinct points:
//!
//! - **Data poisoning** ([`Attack::LabelNoise`], [`Attack::FeatureDrift`])
//!   rewrites a hostile client's *training* split once, before training
//!   starts ([`ScenarioConfig::poison_clients`]). Test splits stay clean:
//!   the grid measures what the attack does to honest clients, not to
//!   the attacker's own ground truth.
//! - **Byzantine updates** ([`Attack::SignFlip`], [`Attack::ScaledNoise`])
//!   corrupt what the hostile client *sends back* each round. The
//!   harness applies the corruption on the coordinator thread in job
//!   order, after the honest local training completed — exactly where a
//!   real attacker sits, between local training and aggregation.
//! - **Availability** (`dropout`) drops clients from rounds via an
//!   independent per-`(round, client)` Bernoulli trace, composed on top
//!   of [`FedConfig::participation`] sampling. At least one participant
//!   always survives.
//!
//! # Determinism (contract rule 6)
//!
//! Every scenario decision is a pure function of
//! `(scenario seed, round, client)`, drawn from RNG streams salted
//! *differently* from the training streams: poisoning, corruption and
//! availability never consume training randomness, so an honest client's
//! minibatch sequence under attack is bit-identical to its sequence in a
//! clean run. Byzantine corruption and dropout filtering run on the
//! coordinator thread in fixed job order — scenario outcomes are
//! bit-identical at every thread count and SIMD arm
//! (`tests/scenario_determinism.rs` pins a full grid).
//!
//! [`FedConfig::participation`]: crate::FedConfig

use rte_nn::StateDict;
use rte_tensor::rng::Xoshiro256;

use crate::config::Aggregation;
use crate::eval::EvalReport;
use crate::methods::{deployed_states, Harness};
use crate::{Client, ClientSet, FedConfig, FedError, Method, ModelFactory};

/// Salt for the data-poisoning streams (one per hostile client).
const DATA_SALT: u64 = 0x5C3A_0DA7;
/// Salt for the Byzantine-corruption streams (one per round × client).
const BYZANTINE_SALT: u64 = 0x5C3A_B42E;
/// Salt for the availability trace (one draw per round × client).
const DROPOUT_SALT: u64 = 0x5C3A_D809;

/// What one client does to the federation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Attack {
    /// An honest client.
    None,
    /// Each training label pixel flips independently with probability
    /// `rate` (applied once, before training).
    LabelNoise {
        /// Per-pixel flip probability in `[0, 1]`.
        rate: f32,
    },
    /// Additive Gaussian drift `x += σ·N(0,1)` on every training feature
    /// value (applied once, before training).
    FeatureDrift {
        /// Drift standard deviation (finite, `>= 0`).
        sigma: f32,
    },
    /// The client trains honestly, then sends
    /// `start − scale·(trained − start)`: its true update with the sign
    /// flipped and amplified — the classic model-poisoning attack.
    SignFlip {
        /// Amplification factor (finite, `>= 0`).
        scale: f32,
    },
    /// The client sends `trained + σ·N(0,1)` per parameter — a noise
    /// injection that a mean dilutes but never rejects.
    ScaledNoise {
        /// Noise standard deviation (finite, `>= 0`).
        sigma: f32,
    },
}

impl Attack {
    /// Short stable name used in grid headers and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            Attack::None => "clean",
            Attack::LabelNoise { .. } => "label-noise",
            Attack::FeatureDrift { .. } => "feature-drift",
            Attack::SignFlip { .. } => "sign-flip",
            Attack::ScaledNoise { .. } => "scaled-noise",
        }
    }

    /// True when the attack rewrites the client's training data before
    /// training starts.
    pub fn poisons_data(&self) -> bool {
        matches!(
            self,
            Attack::LabelNoise { .. } | Attack::FeatureDrift { .. }
        )
    }

    /// True when the attack corrupts the update the client sends back.
    pub fn is_byzantine(&self) -> bool {
        matches!(self, Attack::SignFlip { .. } | Attack::ScaledNoise { .. })
    }

    fn validate(&self) -> Result<(), FedError> {
        let bad = |reason: String| Err(FedError::InvalidConfig { reason });
        match *self {
            Attack::None => Ok(()),
            Attack::LabelNoise { rate } => {
                if !(0.0..=1.0).contains(&rate) {
                    return bad(format!("label-noise rate {rate} outside [0, 1]"));
                }
                Ok(())
            }
            Attack::FeatureDrift { sigma } => {
                if !sigma.is_finite() || sigma < 0.0 {
                    return bad(format!("feature-drift sigma {sigma} not finite and >= 0"));
                }
                Ok(())
            }
            Attack::SignFlip { scale } => {
                if !scale.is_finite() || scale < 0.0 {
                    return bad(format!("sign-flip scale {scale} not finite and >= 0"));
                }
                Ok(())
            }
            Attack::ScaledNoise { sigma } => {
                if !sigma.is_finite() || sigma < 0.0 {
                    return bad(format!("scaled-noise sigma {sigma} not finite and >= 0"));
                }
                Ok(())
            }
        }
    }
}

/// A seeded adversarial scenario: one [`Attack`] per client plus a
/// round-level dropout probability.
///
/// Build with [`ScenarioConfig::honest`] and layer hostility on top:
///
/// ```
/// use rte_fed::{Attack, ScenarioConfig};
///
/// let scenario = ScenarioConfig::honest(7, 9)
///     .hostile_tail(2, Attack::SignFlip { scale: 4.0 })
///     .with_dropout(0.1);
/// assert_eq!(scenario.attacks.len(), 9);
/// assert!(scenario.validate(9).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Seed of the scenario streams (independent of the training seed).
    pub seed: u64,
    /// One attack per client, in client order.
    pub attacks: Vec<Attack>,
    /// Per-round per-client dropout probability in `[0, 1)`.
    pub dropout: f32,
}

impl ScenarioConfig {
    /// An all-honest scenario over `n_clients` clients with no dropout.
    pub fn honest(seed: u64, n_clients: usize) -> Self {
        ScenarioConfig {
            seed,
            attacks: vec![Attack::None; n_clients],
            dropout: 0.0,
        }
    }

    /// Assigns `attack` to one client (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of bounds.
    pub fn with_attack(mut self, client: usize, attack: Attack) -> Self {
        self.attacks[client] = attack;
        self
    }

    /// Assigns `attack` to the last `count` clients — the convention the
    /// `table6_robustness` bench uses for its adversary pool.
    pub fn hostile_tail(mut self, count: usize, attack: Attack) -> Self {
        let n = self.attacks.len();
        for slot in self.attacks.iter_mut().skip(n.saturating_sub(count)) {
            *slot = attack;
        }
        self
    }

    /// Sets the per-round per-client dropout probability.
    pub fn with_dropout(mut self, dropout: f32) -> Self {
        self.dropout = dropout;
        self
    }

    /// Number of hostile clients in the assignment.
    pub fn n_hostile(&self) -> usize {
        self.attacks.iter().filter(|a| **a != Attack::None).count()
    }

    /// Checks the scenario against a federation of `n_clients` clients.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] when the attack list length
    /// disagrees with `n_clients`, the dropout probability is outside
    /// `[0, 1)`, or any attack parameter is degenerate.
    pub fn validate(&self, n_clients: usize) -> Result<(), FedError> {
        if self.attacks.len() != n_clients {
            return Err(FedError::InvalidConfig {
                reason: format!(
                    "{} attack assignments for {} clients",
                    self.attacks.len(),
                    n_clients
                ),
            });
        }
        if !self.dropout.is_finite() || !(0.0..1.0).contains(&self.dropout) {
            return Err(FedError::InvalidConfig {
                reason: format!("dropout {} outside [0, 1)", self.dropout),
            });
        }
        for attack in &self.attacks {
            attack.validate()?;
        }
        Ok(())
    }

    /// Whether `client` shows up for `round` — a pure function of
    /// `(seed, round, client)`, drawn from the availability stream.
    pub fn available(&self, round: usize, client: usize) -> bool {
        if self.dropout <= 0.0 {
            return true;
        }
        let mut rng = Xoshiro256::seed_from(self.seed ^ DROPOUT_SALT)
            .derive(round as u64 + 1)
            .derive(client as u64 + 1);
        !rng.bernoulli(self.dropout as f64)
    }

    /// Applies the data-poisoning attacks, returning a new client list.
    ///
    /// Hostile training splits are materialized in memory, rewritten
    /// under that client's poisoning stream, and rewrapped; honest
    /// clients (and every test split) are passed through untouched.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] when the scenario does not
    /// validate against `clients`, and propagates storage errors from
    /// materializing streamed splits.
    pub fn poison_clients(&self, clients: &[Client]) -> Result<Vec<Client>, FedError> {
        self.validate(clients.len())?;
        let mut out = Vec::with_capacity(clients.len());
        for (k, client) in clients.iter().enumerate() {
            let attack = self.attacks[k];
            if !attack.poisons_data() {
                out.push(client.clone());
                continue;
            }
            let n = client.train.len();
            let (mut x, mut y) = client.train.try_minibatch_range(0..n)?;
            let mut rng = Xoshiro256::seed_from(self.seed ^ DATA_SALT).derive(k as u64 + 1);
            match attack {
                Attack::LabelNoise { rate } => {
                    for v in y.data_mut() {
                        if rng.bernoulli(rate as f64) {
                            *v = 1.0 - *v;
                        }
                    }
                }
                Attack::FeatureDrift { sigma } => {
                    for v in x.data_mut() {
                        *v += sigma * rng.normal();
                    }
                }
                _ => {}
            }
            out.push(Client::new(
                client.id,
                ClientSet::new(x, y)?,
                client.test.clone(),
            ));
        }
        Ok(out)
    }

    /// The Byzantine corruption client `client` applies to its trained
    /// update in `round`: `None` for honest senders, `Some(corrupted)`
    /// for [`Attack::SignFlip`] / [`Attack::ScaledNoise`]. Runs on the
    /// coordinator thread, in job order.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::AggregationMismatch`] when `start` and
    /// `trained` disagree structurally (cannot happen for updates the
    /// harness produced itself).
    pub(crate) fn corrupt_update(
        &self,
        round: usize,
        client: usize,
        start: &StateDict,
        trained: &StateDict,
    ) -> Result<Option<StateDict>, FedError> {
        let attack = self.attacks[client];
        if !attack.is_byzantine() {
            return Ok(None);
        }
        if start.len() != trained.len()
            || start
                .iter()
                .zip(trained.iter())
                .any(|((an, at), (bn, bt))| an != bn || at.shape() != bt.shape())
        {
            return Err(FedError::AggregationMismatch {
                reason: format!("client {client} start/trained state dicts disagree"),
            });
        }
        let mut out = StateDict::with_capacity(trained.len());
        match attack {
            Attack::SignFlip { scale } => {
                for ((name, s), (_, t)) in start.iter().zip(trained.iter()) {
                    let mut tensor = t.clone();
                    for (v, &sv) in tensor.data_mut().iter_mut().zip(s.data().iter()) {
                        *v = sv - scale * (*v - sv);
                    }
                    out.push((name.clone(), tensor));
                }
            }
            Attack::ScaledNoise { sigma } => {
                let mut rng = Xoshiro256::seed_from(self.seed ^ BYZANTINE_SALT)
                    .derive(round as u64 + 1)
                    .derive(client as u64 + 1);
                for (name, t) in trained.iter() {
                    let mut tensor = t.clone();
                    for v in tensor.data_mut() {
                        *v += sigma * rng.normal();
                    }
                    out.push((name.clone(), tensor));
                }
            }
            _ => {}
        }
        Ok(Some(out))
    }
}

/// One method × defense cell row of the robustness grid: per-client
/// outcomes under a fixed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The method that ran.
    pub method: Method,
    /// The aggregation rule that defended it.
    pub aggregation: Aggregation,
    /// One cell per client: a healthy report, or
    /// [`FedError::ClientDiverged`] when the deployed model's scores
    /// were rejected by the metrics layer.
    pub cells: Vec<Result<EvalReport, FedError>>,
}

impl ScenarioOutcome {
    /// AUC per client, `None` for diverged cells.
    pub fn cell_aucs(&self) -> Vec<Option<f64>> {
        self.cells
            .iter()
            .map(|c| c.as_ref().ok().map(|r| r.auc))
            .collect()
    }

    /// Indices of the diverged clients.
    pub fn diverged(&self) -> Vec<usize> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_err())
            .map(|(k, _)| k)
            .collect()
    }

    /// Mean AUC over the healthy cells; `None` when every client
    /// diverged.
    pub fn healthy_average_auc(&self) -> Option<f64> {
        let aucs: Vec<f64> = self
            .cells
            .iter()
            .filter_map(|c| c.as_ref().ok().map(|r| r.auc))
            .collect();
        if aucs.is_empty() {
            None
        } else {
            Some(aucs.iter().sum::<f64>() / aucs.len() as f64)
        }
    }
}

/// Runs one aggregating method under an adversarial scenario and scores
/// the final deployment tolerantly: a client whose model diverged under
/// attack becomes a typed cell, not an aborted run.
///
/// Mid-training history evaluation is disabled for the run
/// (`eval_every = 0`): the grid scores only the final deployment, so a
/// mid-round divergence never kills the round loop.
///
/// # Errors
///
/// Returns [`FedError::InvalidConfig`] for a scenario that does not
/// validate against `clients` or a method with no aggregation step to
/// defend (local-only, centralized), and propagates infrastructure
/// failures (model, tensor, streaming errors). Divergence under attack
/// is **not** an error — it lands in [`ScenarioOutcome::cells`].
pub fn run_scenario(
    method: Method,
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
    scenario: &ScenarioConfig,
) -> Result<ScenarioOutcome, FedError> {
    scenario.validate(clients.len())?;
    let poisoned = scenario.poison_clients(clients)?;
    let mut cfg = config.clone();
    cfg.scenario = Some(scenario.clone());
    cfg.eval_every = 0;
    let (deployed, _history) = deployed_states(method, &poisoned, factory, &cfg)?;
    let harness = Harness::new(&poisoned, factory, &cfg)?;
    let cells = harness.eval_deployed_cells(&deployed)?;
    for cell in &cells {
        if let Err(e) = cell {
            if !matches!(e, FedError::ClientDiverged { .. }) {
                return Err(e.clone());
            }
        }
    }
    Ok(ScenarioOutcome {
        method,
        aggregation: cfg.aggregation,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::run_method;
    use crate::methods::test_support::{clients, factory};

    fn state(values: &[f32]) -> StateDict {
        vec![(
            "w".to_string(),
            rte_tensor::Tensor::from_vec(values.to_vec(), &[values.len()]).unwrap(),
        )]
    }

    #[test]
    fn validate_rejects_degenerate_scenarios() {
        let s = ScenarioConfig::honest(1, 3);
        assert!(s.validate(3).is_ok());
        assert!(s.validate(4).is_err(), "length mismatch");
        assert!(s.clone().with_dropout(1.0).validate(3).is_err());
        assert!(s.clone().with_dropout(-0.1).validate(3).is_err());
        assert!(s
            .clone()
            .with_attack(0, Attack::LabelNoise { rate: 1.5 })
            .validate(3)
            .is_err());
        assert!(s
            .clone()
            .with_attack(1, Attack::SignFlip { scale: f32::NAN })
            .validate(3)
            .is_err());
        assert!(s
            .with_attack(2, Attack::FeatureDrift { sigma: -1.0 })
            .validate(3)
            .is_err());
    }

    #[test]
    fn hostile_tail_marks_the_last_clients() {
        let s = ScenarioConfig::honest(0, 4).hostile_tail(2, Attack::SignFlip { scale: 2.0 });
        assert_eq!(s.attacks[0], Attack::None);
        assert_eq!(s.attacks[1], Attack::None);
        assert_eq!(s.attacks[2], Attack::SignFlip { scale: 2.0 });
        assert_eq!(s.n_hostile(), 2);
    }

    #[test]
    fn poisoning_is_deterministic_and_train_only() {
        let clients = clients(3);
        let scenario = ScenarioConfig::honest(9, 3)
            .with_attack(1, Attack::LabelNoise { rate: 0.5 })
            .with_attack(2, Attack::FeatureDrift { sigma: 0.3 });
        let a = scenario.poison_clients(&clients).unwrap();
        let b = scenario.poison_clients(&clients).unwrap();
        assert_eq!(a, b, "same scenario, same bytes");
        // Honest client untouched; every test split untouched.
        assert_eq!(a[0], clients[0]);
        for k in 0..3 {
            assert_eq!(a[k].test, clients[k].test, "client {k} test split");
            assert_eq!(a[k].id, clients[k].id);
        }
        // Hostile training splits actually changed.
        assert_ne!(a[1].train, clients[1].train, "label noise must flip");
        assert_ne!(a[2].train, clients[2].train, "drift must move features");
        // Label noise flips labels only; drift moves features only.
        let n1 = clients[1].train.len();
        let (x_orig, _) = clients[1].train.try_minibatch_range(0..n1).unwrap();
        let (x_noisy, _) = a[1].train.try_minibatch_range(0..n1).unwrap();
        assert_eq!(x_orig, x_noisy, "label noise leaves features alone");
        let n2 = clients[2].train.len();
        let (_, y_orig) = clients[2].train.try_minibatch_range(0..n2).unwrap();
        let (_, y_drift) = a[2].train.try_minibatch_range(0..n2).unwrap();
        assert_eq!(y_orig, y_drift, "drift leaves labels alone");
    }

    #[test]
    fn label_noise_flip_fraction_tracks_rate() {
        let clients = clients(1);
        let rate = 0.25f32;
        let scenario = ScenarioConfig::honest(4, 1).with_attack(0, Attack::LabelNoise { rate });
        let poisoned = scenario.poison_clients(&clients).unwrap();
        let n = clients[0].train.len();
        let (_, y0) = clients[0].train.try_minibatch_range(0..n).unwrap();
        let (_, y1) = poisoned[0].train.try_minibatch_range(0..n).unwrap();
        let flipped = y0
            .data()
            .iter()
            .zip(y1.data().iter())
            .filter(|(a, b)| a != b)
            .count();
        let fraction = flipped as f64 / y0.data().len() as f64;
        assert!(
            (fraction - rate as f64).abs() < 0.15,
            "flip fraction {fraction} vs rate {rate}"
        );
    }

    #[test]
    fn sign_flip_mirrors_the_update_exactly() {
        let scenario = ScenarioConfig::honest(0, 2).with_attack(1, Attack::SignFlip { scale: 3.0 });
        let start = state(&[1.0, 2.0]);
        let trained = state(&[2.0, 1.5]);
        // Honest client: untouched.
        assert_eq!(
            scenario.corrupt_update(1, 0, &start, &trained).unwrap(),
            None
        );
        // Hostile client: start − 3·(trained − start).
        let corrupted = scenario
            .corrupt_update(1, 1, &start, &trained)
            .unwrap()
            .unwrap();
        assert_eq!(corrupted[0].1.data(), &[-2.0, 3.5]);
    }

    #[test]
    fn scaled_noise_is_per_round_deterministic() {
        let scenario =
            ScenarioConfig::honest(7, 1).with_attack(0, Attack::ScaledNoise { sigma: 1.0 });
        let start = state(&[0.0, 0.0, 0.0]);
        let trained = state(&[1.0, 1.0, 1.0]);
        let a = scenario.corrupt_update(2, 0, &start, &trained).unwrap();
        let b = scenario.corrupt_update(2, 0, &start, &trained).unwrap();
        assert_eq!(a, b, "same (round, client) stream");
        let c = scenario.corrupt_update(3, 0, &start, &trained).unwrap();
        assert_ne!(a, c, "different round, different noise");
        assert_ne!(a.unwrap()[0].1.data(), trained[0].1.data());
    }

    #[test]
    fn corrupt_update_rejects_mismatched_dicts() {
        let scenario = ScenarioConfig::honest(0, 1).with_attack(0, Attack::SignFlip { scale: 1.0 });
        let err = scenario
            .corrupt_update(1, 0, &state(&[1.0]), &state(&[1.0, 2.0]))
            .unwrap_err();
        assert!(matches!(err, FedError::AggregationMismatch { .. }));
    }

    #[test]
    fn availability_is_deterministic_and_total_without_dropout() {
        let s = ScenarioConfig::honest(3, 4);
        assert!((0..4).all(|k| s.available(1, k)), "no dropout: all present");
        let s = s.with_dropout(0.5);
        let trace: Vec<bool> = (1..=40).map(|r| s.available(r, 2)).collect();
        let again: Vec<bool> = (1..=40).map(|r| s.available(r, 2)).collect();
        assert_eq!(trace, again);
        assert!(trace.iter().any(|&a| a), "client must sometimes show up");
        assert!(trace.iter().any(|&a| !a), "p=0.5 must sometimes drop");
    }

    #[test]
    fn honest_scenario_reproduces_the_plain_run() {
        let clients = clients(3);
        let factory = factory();
        let config = FedConfig::tiny();
        let scenario = ScenarioConfig::honest(1, 3);
        let outcome =
            run_scenario(Method::FedProx, &clients, &factory, &config, &scenario).unwrap();
        let plain = run_method(Method::FedProx, &clients, &factory, &config).unwrap();
        assert_eq!(outcome.diverged(), Vec::<usize>::new());
        for (cell, report) in outcome.cells.iter().zip(plain.per_client.iter()) {
            assert_eq!(cell.as_ref().unwrap(), report);
        }
        assert_eq!(
            outcome.healthy_average_auc().unwrap(),
            plain.average_auc,
            "honest scenario is bitwise-neutral"
        );
    }

    #[test]
    fn scenario_rejects_non_aggregating_methods() {
        let clients = clients(2);
        let factory = factory();
        let config = FedConfig::tiny();
        let scenario = ScenarioConfig::honest(1, 2);
        for method in [Method::LocalOnly, Method::Centralized] {
            let err = run_scenario(method, &clients, &factory, &config, &scenario).unwrap_err();
            assert!(matches!(err, FedError::InvalidConfig { .. }), "{method}");
        }
    }

    #[test]
    fn dropout_keeps_training_alive() {
        let clients = clients(3);
        let factory = factory();
        let config = FedConfig::tiny();
        let scenario = ScenarioConfig::honest(5, 3).with_dropout(0.6);
        let outcome =
            run_scenario(Method::FedProx, &clients, &factory, &config, &scenario).unwrap();
        assert_eq!(outcome.cells.len(), 3);
        assert!(outcome.cells.iter().all(|c| c.is_ok()));
    }
}
